//! Typed hyperparameter domains and the unit-hypercube encoding.
//!
//! FLOW² and the other optimizers work on `[0, 1]^d`; [`SearchSpace`]
//! translates between that space and natural hyperparameter values,
//! applying log scaling where a domain spans orders of magnitude (tree
//! counts, leaf counts, regularization strengths — cf. Table 5).

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The domain of one hyperparameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// A real-valued parameter in `[lo, hi]`; `log` selects log-uniform
    /// scaling (requires `lo > 0`).
    Float {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
        /// Log-uniform scaling.
        log: bool,
    },
    /// An integer parameter in `[lo, hi]`; `log` selects log-uniform
    /// scaling (requires `lo > 0`).
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Log-uniform scaling.
        log: bool,
    },
    /// A categorical parameter with `n` unordered choices, stored as the
    /// choice index.
    Categorical {
        /// Number of choices.
        n: usize,
    },
}

impl Domain {
    /// Linear float domain.
    pub fn float(lo: f64, hi: f64) -> Domain {
        Domain::Float { lo, hi, log: false }
    }

    /// Log-uniform float domain (`lo` must be positive).
    pub fn log_float(lo: f64, hi: f64) -> Domain {
        Domain::Float { lo, hi, log: true }
    }

    /// Linear integer domain.
    pub fn int(lo: i64, hi: i64) -> Domain {
        Domain::Int { lo, hi, log: false }
    }

    /// Log-uniform integer domain (`lo` must be positive).
    pub fn log_int(lo: i64, hi: i64) -> Domain {
        Domain::Int { lo, hi, log: true }
    }

    /// Categorical domain with `n` choices.
    pub fn categorical(n: usize) -> Domain {
        Domain::Categorical { n }
    }

    fn validate(&self) -> Result<(), SpaceError> {
        match *self {
            Domain::Float { lo, hi, log } => {
                if !lo.is_finite() || !hi.is_finite() || lo >= hi {
                    return Err(SpaceError::BadDomain(format!("float [{lo}, {hi}]")));
                }
                if log && lo <= 0.0 {
                    return Err(SpaceError::BadDomain(format!(
                        "log float needs lo > 0, got {lo}"
                    )));
                }
            }
            Domain::Int { lo, hi, log } => {
                if lo >= hi {
                    return Err(SpaceError::BadDomain(format!("int [{lo}, {hi}]")));
                }
                if log && lo <= 0 {
                    return Err(SpaceError::BadDomain(format!(
                        "log int needs lo > 0, got {lo}"
                    )));
                }
            }
            Domain::Categorical { n } => {
                if n < 2 {
                    return Err(SpaceError::BadDomain(format!("categorical with {n} < 2")));
                }
            }
        }
        Ok(())
    }

    /// Maps a natural value into `[0, 1]`.
    pub fn encode(&self, v: f64) -> f64 {
        let u = match *self {
            Domain::Float { lo, hi, log } => {
                if log {
                    (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
                } else {
                    (v - lo) / (hi - lo)
                }
            }
            Domain::Int { lo, hi, log } => {
                let (lo, hi) = (lo as f64, hi as f64);
                if log {
                    (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
                } else {
                    (v - lo) / (hi - lo)
                }
            }
            Domain::Categorical { n } => (v + 0.5) / n as f64,
        };
        u.clamp(0.0, 1.0)
    }

    /// Maps a unit-cube coordinate back to a natural value (rounding for
    /// integer domains, index-snapping for categoricals).
    pub fn decode(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match *self {
            Domain::Float { lo, hi, log } => {
                if log {
                    (lo.ln() + u * (hi.ln() - lo.ln())).exp().clamp(lo, hi)
                } else {
                    lo + u * (hi - lo)
                }
            }
            Domain::Int { lo, hi, log } => {
                let (lof, hif) = (lo as f64, hi as f64);
                let raw = if log {
                    (lof.ln() + u * (hif.ln() - lof.ln())).exp()
                } else {
                    lof + u * (hif - lof)
                };
                raw.round().clamp(lof, hif)
            }
            Domain::Categorical { n } => (u * n as f64).floor().min(n as f64 - 1.0).max(0.0),
        }
    }
}

/// A named hyperparameter with its domain and a low-cost initial value
/// (the bold entries of Table 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    /// Parameter name.
    pub name: String,
    /// Value domain.
    pub domain: Domain,
    /// Initial value in natural units.
    pub init: f64,
}

impl ParamDef {
    /// Creates a parameter definition.
    pub fn new(name: impl Into<String>, domain: Domain, init: f64) -> ParamDef {
        ParamDef {
            name: name.into(),
            domain,
            init,
        }
    }
}

/// Error from constructing or using a [`SearchSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The space has no parameters.
    Empty,
    /// A domain is malformed (bounds inverted, log of non-positive, …).
    BadDomain(String),
    /// Two parameters share a name.
    DuplicateName(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::Empty => write!(f, "search space has no parameters"),
            SpaceError::BadDomain(d) => write!(f, "malformed domain: {d}"),
            SpaceError::DuplicateName(n) => write!(f, "duplicate parameter name: {n}"),
        }
    }
}

impl Error for SpaceError {}

/// An ordered collection of hyperparameter definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<ParamDef>,
}

/// Natural-unit hyperparameter values, ordered as the space's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    values: Vec<f64>,
}

impl Config {
    /// The raw values in parameter order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Looks up a value by parameter name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a parameter of `space` or the config length
    /// does not match the space.
    pub fn get(&self, space: &SearchSpace, name: &str) -> f64 {
        let idx = space
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"));
        self.values[idx]
    }

    /// Renders the config as `name=value` pairs for logs and reports.
    pub fn render(&self, space: &SearchSpace) -> String {
        space
            .params()
            .iter()
            .zip(&self.values)
            .map(|(p, v)| {
                if matches!(p.domain, Domain::Int { .. } | Domain::Categorical { .. }) {
                    format!("{}={}", p.name, *v as i64)
                } else {
                    format!("{}={:.4}", p.name, v)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl From<Vec<f64>> for Config {
    fn from(values: Vec<f64>) -> Self {
        Config { values }
    }
}

impl SearchSpace {
    /// Creates a search space.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if empty, a domain is malformed, or names
    /// repeat.
    pub fn new(params: Vec<ParamDef>) -> Result<SearchSpace, SpaceError> {
        if params.is_empty() {
            return Err(SpaceError::Empty);
        }
        for p in &params {
            p.domain.validate()?;
        }
        for (i, p) in params.iter().enumerate() {
            if params[..i].iter().any(|q| q.name == p.name) {
                return Err(SpaceError::DuplicateName(p.name.clone()));
            }
        }
        Ok(SearchSpace { params })
    }

    /// The parameter definitions.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// The low-cost initial configuration (Table 5 bold values).
    pub fn init_config(&self) -> Config {
        Config {
            values: self.params.iter().map(|p| p.init).collect(),
        }
    }

    /// Encodes a natural-unit config into the unit hypercube.
    ///
    /// # Panics
    ///
    /// Panics if the config length differs from the space dimension.
    pub fn encode(&self, config: &Config) -> Vec<f64> {
        assert_eq!(config.values.len(), self.dim(), "config/space mismatch");
        self.params
            .iter()
            .zip(&config.values)
            .map(|(p, &v)| p.domain.encode(v))
            .collect()
    }

    /// Decodes a unit-hypercube point into a natural-unit config.
    ///
    /// # Panics
    ///
    /// Panics if the point length differs from the space dimension.
    pub fn decode(&self, point: &[f64]) -> Config {
        assert_eq!(point.len(), self.dim(), "point/space mismatch");
        Config {
            values: self
                .params
                .iter()
                .zip(point)
                .map(|(p, &u)| p.domain.decode(u))
                .collect(),
        }
    }

    /// A uniformly random unit-cube point.
    pub fn random_point(&self, rng: &mut impl rand::Rng) -> Vec<f64> {
        (0..self.dim()).map(|_| rng.gen::<f64>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamDef::new("trees", Domain::log_int(4, 32768), 4.0),
            ParamDef::new("lr", Domain::log_float(0.01, 1.0), 0.1),
            ParamDef::new("sub", Domain::float(0.6, 1.0), 1.0),
            ParamDef::new("crit", Domain::categorical(2), 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trip_floats() {
        let s = space();
        for v in [0.6, 0.73, 0.9999, 1.0] {
            let u = s.params()[2].domain.encode(v);
            let back = s.params()[2].domain.decode(u);
            assert!((back - v).abs() < 1e-12, "{v} -> {u} -> {back}");
        }
    }

    #[test]
    fn log_int_round_trips() {
        let d = Domain::log_int(4, 32768);
        for v in [4.0, 7.0, 100.0, 5000.0, 32768.0] {
            let back = d.decode(d.encode(v));
            assert_eq!(back, v, "log int {v}");
        }
    }

    #[test]
    fn categorical_snaps_to_indices() {
        let d = Domain::categorical(3);
        assert_eq!(d.decode(0.0), 0.0);
        assert_eq!(d.decode(0.34), 1.0);
        assert_eq!(d.decode(0.99), 2.0);
        assert_eq!(d.decode(1.0), 2.0);
        for idx in 0..3 {
            assert_eq!(d.decode(d.encode(idx as f64)), idx as f64);
        }
    }

    #[test]
    fn decode_clamps_out_of_range() {
        let d = Domain::float(2.0, 3.0);
        assert_eq!(d.decode(-0.5), 2.0);
        assert_eq!(d.decode(1.5), 3.0);
    }

    #[test]
    fn init_config_matches_definitions() {
        let s = space();
        let c = s.init_config();
        assert_eq!(c.get(&s, "trees"), 4.0);
        assert_eq!(c.get(&s, "lr"), 0.1);
    }

    #[test]
    fn validation_rejects_malformed() {
        assert!(SearchSpace::new(vec![]).is_err());
        assert!(SearchSpace::new(vec![ParamDef::new("x", Domain::float(1.0, 1.0), 1.0)]).is_err());
        assert!(
            SearchSpace::new(vec![ParamDef::new("x", Domain::log_float(0.0, 1.0), 0.5)]).is_err()
        );
        assert!(SearchSpace::new(vec![ParamDef::new("x", Domain::categorical(1), 0.0)]).is_err());
        assert!(SearchSpace::new(vec![
            ParamDef::new("x", Domain::float(0.0, 1.0), 0.5),
            ParamDef::new("x", Domain::float(0.0, 1.0), 0.5),
        ])
        .is_err());
    }

    #[test]
    fn log_scaling_spreads_small_values() {
        // In a log domain, the unit-space midpoint is the geometric mean.
        let d = Domain::log_float(0.01, 1.0);
        let mid = d.decode(0.5);
        assert!((mid - 0.1).abs() < 1e-9, "geometric mean 0.1, got {mid}");
    }

    #[test]
    fn random_point_in_unit_cube() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let p = s.random_point(&mut rng);
            assert_eq!(p.len(), 4);
            assert!(p.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn render_formats_ints_and_floats() {
        let s = space();
        let c = s.init_config();
        let r = c.render(&s);
        assert!(r.contains("trees=4"));
        assert!(r.contains("lr=0.1000"));
        assert!(r.contains("crit=0"));
    }
}
