//! A tree-structured Parzen estimator (TPE) surrogate, the model component
//! of the BOHB baseline (HpBandSter in the paper's comparison).
//!
//! Observations are split into a *good* set (lowest `gamma` fraction by
//! error) and a *bad* set; each coordinate gets a one-dimensional Gaussian
//! KDE per set (categorical coordinates get smoothed histograms).
//! Candidates are sampled from the good model and ranked by the density
//! ratio `l(x)/g(x)`, the BOHB acquisition.

use crate::domain::{Domain, SearchSpace};
use crate::sanitize_err;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// TPE optimizer with an ask/tell interface.
#[derive(Debug, Clone)]
pub struct Tpe {
    space: SearchSpace,
    rng: StdRng,
    /// `(unit point, error)` observations.
    observations: Vec<(Vec<f64>, f64)>,
    gamma: f64,
    n_candidates: usize,
    min_observations: usize,
    outstanding: Option<Vec<f64>>,
    best_point: Option<Vec<f64>>,
    best_err: f64,
}

impl Tpe {
    /// Creates a TPE optimizer with BOHB-like defaults
    /// (`gamma = 0.15`, 24 candidates, model after `dim + 2` points).
    pub fn new(space: SearchSpace, seed: u64) -> Tpe {
        let min_observations = space.dim() + 2;
        Tpe {
            space,
            rng: StdRng::seed_from_u64(seed),
            observations: Vec::new(),
            gamma: 0.15,
            n_candidates: 24,
            min_observations,
            outstanding: None,
            best_point: None,
            best_err: f64::INFINITY,
        }
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Number of recorded observations.
    pub fn n_observations(&self) -> usize {
        self.observations.len()
    }

    /// Incumbent point, if any.
    pub fn best_point(&self) -> Option<&[f64]> {
        self.best_point.as_deref()
    }

    /// Incumbent error.
    pub fn best_err(&self) -> f64 {
        self.best_err
    }

    /// Proposes the next unit-cube point: random while observations are
    /// scarce, the TPE acquisition afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the previous proposal has not been told.
    pub fn ask(&mut self) -> Vec<f64> {
        assert!(self.outstanding.is_none(), "un-told outstanding proposal");
        let p = if self.observations.len() < self.min_observations {
            self.space.random_point(&mut self.rng)
        } else {
            self.acquire()
        };
        self.outstanding = Some(p.clone());
        p
    }

    /// Reports the error of the last proposal.
    ///
    /// # Panics
    ///
    /// Panics if there is no outstanding proposal.
    pub fn tell(&mut self, err: f64) {
        let p = self.outstanding.take().expect("no outstanding proposal");
        self.record(p, err);
    }

    /// Records an externally evaluated observation (used by BOHB to feed
    /// full-fidelity results back into the model). A `NaN` error is
    /// sanitized to `INFINITY`: the good/bad KDE split sorts observations
    /// by error, and a `NaN` (incomparable) would scramble that order.
    pub fn record(&mut self, point: Vec<f64>, err: f64) {
        let err = sanitize_err(err);
        if err < self.best_err {
            self.best_err = err;
            self.best_point = Some(point.clone());
        }
        self.observations.push((point, err));
    }

    fn acquire(&mut self) -> Vec<f64> {
        let mut order: Vec<usize> = (0..self.observations.len()).collect();
        order.sort_by(|&a, &b| {
            self.observations[a]
                .1
                .partial_cmp(&self.observations[b].1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n_good = ((self.observations.len() as f64 * self.gamma).ceil() as usize)
            .clamp(2, self.observations.len().saturating_sub(1).max(2));
        let good: Vec<Vec<f64>> = order[..n_good]
            .iter()
            .map(|&i| self.observations[i].0.clone())
            .collect();
        let bad: Vec<Vec<f64>> = order[n_good..]
            .iter()
            .map(|&i| self.observations[i].0.clone())
            .collect();
        let d = self.space.dim();

        let mut best_cand: Option<(Vec<f64>, f64)> = None;
        for _ in 0..self.n_candidates {
            // Sample each coordinate from the good model.
            let mut cand = vec![0.0; d];
            for (j, c) in cand.iter_mut().enumerate() {
                *c = self.sample_coord(&good, j);
            }
            let score = self.log_density(&good, &cand) - self.log_density(&bad, &cand);
            if best_cand.as_ref().is_none_or(|(_, s)| score > *s) {
                best_cand = Some((cand, score));
            }
        }
        best_cand.expect("candidates generated").0
    }

    /// Samples coordinate `j` from the KDE over `points`.
    fn sample_coord(&mut self, points: &[Vec<f64>], j: usize) -> f64 {
        match self.space.params()[j].domain {
            Domain::Categorical { n } => {
                // Smoothed histogram over decoded category indices.
                let mut weights = vec![1.0; n];
                for p in points {
                    let idx = (p[j] * n as f64).floor().min(n as f64 - 1.0) as usize;
                    weights[idx] += 1.0;
                }
                let total: f64 = weights.iter().sum();
                let mut r = self.rng.gen::<f64>() * total;
                for (idx, w) in weights.iter().enumerate() {
                    if r < *w {
                        return (idx as f64 + 0.5) / n as f64;
                    }
                    r -= w;
                }
                (n as f64 - 0.5) / n as f64
            }
            _ => {
                let center = points[self.rng.gen_range(0..points.len())][j];
                let bw = bandwidth(points, j);
                let z: f64 = StandardNormal.sample(&mut self.rng);
                (center + z * bw).clamp(0.0, 1.0)
            }
        }
    }

    fn log_density(&self, points: &[Vec<f64>], x: &[f64]) -> f64 {
        let mut total = 0.0;
        for (j, param) in self.space.params().iter().enumerate() {
            let lj = match param.domain {
                Domain::Categorical { n } => {
                    let mut weights = vec![1.0; n];
                    for p in points {
                        let idx = (p[j] * n as f64).floor().min(n as f64 - 1.0) as usize;
                        weights[idx] += 1.0;
                    }
                    let total_w: f64 = weights.iter().sum();
                    let idx = (x[j] * n as f64).floor().min(n as f64 - 1.0) as usize;
                    (weights[idx] / total_w).ln()
                }
                _ => {
                    let bw = bandwidth(points, j);
                    let mut density = 0.0;
                    for p in points {
                        let z = (x[j] - p[j]) / bw;
                        density += (-0.5 * z * z).exp();
                    }
                    (density / (points.len() as f64 * bw) + 1e-300).ln()
                }
            };
            total += lj;
        }
        total
    }
}

/// Scott's-rule bandwidth over one coordinate, floored for stability.
fn bandwidth(points: &[Vec<f64>], j: usize) -> f64 {
    let n = points.len() as f64;
    let mean = points.iter().map(|p| p[j]).sum::<f64>() / n;
    let var = points
        .iter()
        .map(|p| (p[j] - mean) * (p[j] - mean))
        .sum::<f64>()
        / n;
    (1.06 * var.sqrt() * n.powf(-0.2)).max(0.03)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ParamDef;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamDef::new("x", Domain::float(0.0, 1.0), 0.5),
            ParamDef::new("c", Domain::categorical(3), 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn warms_up_with_random_samples() {
        let mut tpe = Tpe::new(space(), 0);
        for _ in 0..tpe.min_observations {
            let p = tpe.ask();
            assert!(p.iter().all(|&u| (0.0..=1.0).contains(&u)));
            tpe.tell(1.0);
        }
        assert_eq!(tpe.n_observations(), tpe.min_observations);
    }

    #[test]
    fn concentrates_near_the_optimum() {
        let s = space();
        let mut tpe = Tpe::new(s.clone(), 1);
        // Optimum: x = 0.8, category 2.
        for _ in 0..120 {
            let p = tpe.ask();
            let c = s.decode(&p);
            let err = (c.get(&s, "x") - 0.8).abs() + f64::from(c.get(&s, "c") as i64 != 2) * 0.5;
            tpe.tell(err);
        }
        let best = s.decode(tpe.best_point().unwrap());
        assert!(
            (best.get(&s, "x") - 0.8).abs() < 0.1,
            "best x = {}",
            best.get(&s, "x")
        );
        assert_eq!(best.get(&s, "c") as i64, 2);
        // The model should now propose near the optimum most of the time.
        let mut near = 0;
        for _ in 0..20 {
            let p = tpe.ask();
            let c = s.decode(&p);
            if (c.get(&s, "x") - 0.8).abs() < 0.25 {
                near += 1;
            }
            tpe.tell(1.0);
        }
        assert!(near >= 12, "only {near}/20 proposals near optimum");
    }

    #[test]
    fn record_feeds_external_results() {
        let s = space();
        let mut tpe = Tpe::new(s.clone(), 2);
        tpe.record(vec![0.5, 0.5], 0.25);
        assert_eq!(tpe.n_observations(), 1);
        assert_eq!(tpe.best_err(), 0.25);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = space();
        let run = |seed| {
            let mut tpe = Tpe::new(s.clone(), seed);
            (0..30)
                .map(|i| {
                    let p = tpe.ask();
                    tpe.tell(i as f64 * 0.01);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn nan_observations_are_sanitized() {
        let s = space();
        let mut tpe = Tpe::new(s.clone(), 1);
        // Enough observations to reach the KDE acquisition path, with
        // NaNs interleaved: they must land in the "bad" tail as
        // INFINITY, not scramble the good/bad sort.
        for i in 0..30 {
            let p = tpe.ask();
            let err = if i % 3 == 0 {
                f64::NAN
            } else {
                (i as f64) * 0.01
            };
            let _ = p;
            tpe.tell(err);
        }
        assert!(!tpe.best_err().is_nan());
        assert!(tpe.best_err().is_finite());
        // Acquisition still proposes in-cube points after NaN intake.
        let p = tpe.ask();
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        tpe.tell(0.5);
    }
}
