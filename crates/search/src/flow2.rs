//! FLOW² — the randomized direct-search hyperparameter optimizer of Wu et
//! al. (2020), used by FLAML's hyperparameter-and-sample-size proposer.
//!
//! Per iteration the optimizer probes `x + δ·u` for a uniformly random
//! direction `u` on the unit sphere; if the error does not improve it
//! probes the opposite direction `x − δ·u`. The step size starts at
//! `0.1·√d` in the unit cube (the released FLAML implementation's scaling
//! of the paper's `√d`) and shrinks by an adaptive reduction ratio — the
//! ratio of total iterations to the iteration that found the current best,
//! both counted since the last restart — whenever the number of
//! consecutive no-improvement iterations exceeds `2^min(d,9)−1`. When the
//! step size reaches its lower bound the thread is *converged* and the
//! caller restarts it from a random point (the paper performs adaptation
//! and restarts only once the full sample size is reached).

use crate::domain::SearchSpace;
use crate::sanitize_err;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, StandardNormal};

/// Sequential ask/tell FLOW² optimizer over one search space.
#[derive(Debug, Clone)]
pub struct Flow2 {
    space: SearchSpace,
    rng: StdRng,
    best_point: Vec<f64>,
    best_err: f64,
    step: f64,
    step_init: f64,
    step_lb: f64,
    no_improve: u64,
    no_improve_threshold: u64,
    /// Direction of the outstanding forward probe, replayed backwards if
    /// the forward probe fails.
    pending_backward: Option<Vec<f64>>,
    outstanding: Option<Vec<f64>>,
    iters_since_restart: u64,
    best_iter_since_restart: u64,
    adaptation: bool,
    n_restarts: u64,
    evaluated_init: bool,
}

impl Flow2 {
    /// Creates an optimizer starting from the space's low-cost initial
    /// configuration.
    pub fn new(space: SearchSpace, seed: u64) -> Flow2 {
        let d = space.dim();
        let init = space.encode(&space.init_config());
        let step_init = 0.1 * (d as f64).sqrt();
        // The smallest move that can change an integer/categorical
        // coordinate bounds the useful resolution.
        let step_lb = (0.1 / d as f64).max(1e-4);
        Flow2 {
            space,
            rng: StdRng::seed_from_u64(seed),
            best_point: init,
            best_err: f64::INFINITY,
            step: step_init,
            step_init,
            step_lb,
            no_improve: 0,
            no_improve_threshold: 1 << (d.min(9) as u64).saturating_sub(1).max(1),
            pending_backward: None,
            outstanding: None,
            iters_since_restart: 0,
            best_iter_since_restart: 0,
            adaptation: false,
            n_restarts: 0,
            evaluated_init: false,
        }
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Enables or disables step-size adaptation and convergence detection.
    /// FLAML enables them only once the full sample size is reached.
    pub fn set_adaptation(&mut self, on: bool) {
        self.adaptation = on;
    }

    /// Whether the current thread converged (step size hit its bound).
    /// The caller decides when to [`Flow2::restart`].
    pub fn converged(&self) -> bool {
        self.step <= self.step_lb
    }

    /// Number of restarts performed so far.
    pub fn n_restarts(&self) -> u64 {
        self.n_restarts
    }

    /// The incumbent unit-cube point.
    pub fn best_point(&self) -> Vec<f64> {
        self.best_point.clone()
    }

    /// The incumbent error (`INFINITY` before the first [`Flow2::tell`]).
    pub fn best_err(&self) -> f64 {
        self.best_err
    }

    /// Current step size (unit-cube scale).
    pub fn step_size(&self) -> f64 {
        self.step
    }

    /// Rebases the incumbent error without moving the incumbent point.
    ///
    /// FLAML calls this when the sample size grows: the incumbent config
    /// is re-scored on the larger sample and future comparisons happen
    /// against that score. A no-op before the first evaluation. A `NaN`
    /// is sanitized to `INFINITY` (the failure sentinel), like in
    /// [`Flow2::tell`].
    pub fn set_best_err(&mut self, err: f64) {
        if self.evaluated_init {
            self.best_err = sanitize_err(err);
        }
    }

    /// Replaces the starting point of a fresh (never-evaluated) thread,
    /// e.g. with a prior run's best configuration (warm start). The
    /// seeded point is evaluated first, exactly as the default low-cost
    /// init would have been; coordinates are clamped to the unit cube.
    ///
    /// # Panics
    ///
    /// Panics if the thread has already evaluated a point or has an
    /// outstanding proposal, or if the point's dimension is wrong —
    /// seeding mid-search would corrupt the incumbent bookkeeping.
    pub fn seed_point(&mut self, point: &[f64]) {
        assert!(
            !self.evaluated_init && self.outstanding.is_none(),
            "seed_point() on a thread that already started searching"
        );
        assert_eq!(point.len(), self.space.dim(), "seed point dimension");
        self.best_point = point.iter().map(|&u| u.clamp(0.0, 1.0)).collect();
    }

    /// Proposes the next unit-cube point to evaluate.
    ///
    /// # Panics
    ///
    /// Panics if the previous proposal has not been [`Flow2::tell`]-ed.
    pub fn ask(&mut self) -> Vec<f64> {
        assert!(
            self.outstanding.is_none(),
            "ask() called with an un-told outstanding proposal"
        );
        let point = if !self.evaluated_init {
            self.best_point.clone()
        } else if let Some(dir) = &self.pending_backward {
            let dir = dir.clone();
            self.move_along(&dir, -1.0)
        } else {
            let dir = self.random_direction();
            let p = self.move_along(&dir, 1.0);
            self.pending_backward = Some(dir);
            p
        };
        self.outstanding = Some(point.clone());
        point
    }

    /// Reports the error of the last [`Flow2::ask`] proposal. A `NaN`
    /// error is sanitized to `INFINITY` (the failure sentinel) so it can
    /// never become the incumbent: an incumbent `NaN` would make every
    /// later `err < best_err` comparison false and freeze the search.
    ///
    /// # Panics
    ///
    /// Panics if there is no outstanding proposal.
    pub fn tell(&mut self, err: f64) {
        let err = sanitize_err(err);
        let point = self
            .outstanding
            .take()
            .expect("tell() called without an outstanding proposal");
        if !self.evaluated_init {
            self.evaluated_init = true;
            self.best_err = err;
            self.iters_since_restart += 1;
            self.pending_backward = None;
            return;
        }
        self.iters_since_restart += 1;
        let was_backward = self.pending_backward.is_some() && {
            // `ask` clears pending_backward only on the *next* forward
            // proposal, so distinguish by checking whether the outstanding
            // point is the backward probe of the pending direction.
            let dir = self.pending_backward.as_ref().expect("pending");
            let backward = self.move_along(dir, -1.0);
            points_close(&point, &backward)
        };
        if err < self.best_err {
            self.best_err = err;
            self.best_point = point;
            self.best_iter_since_restart = self.iters_since_restart;
            self.no_improve = 0;
            self.pending_backward = None;
            return;
        }
        if was_backward {
            // Both directions failed: one full no-improvement iteration.
            self.pending_backward = None;
            self.no_improve += 1;
            if self.adaptation && self.no_improve > self.no_improve_threshold {
                let ratio = (self.iters_since_restart as f64
                    / self.best_iter_since_restart.max(1) as f64)
                    .max(1.1);
                self.step /= ratio;
                self.no_improve = 0;
            }
        }
        // A failed forward probe keeps pending_backward set, so the next
        // ask() tries the opposite direction.
    }

    /// Restarts the thread from a uniformly random point with the initial
    /// step size. The caller typically also resets its sample size.
    pub fn restart(&mut self) {
        let p = self.space.random_point(&mut self.rng);
        self.best_point = p;
        self.best_err = f64::INFINITY;
        self.step = self.step_init;
        self.no_improve = 0;
        self.pending_backward = None;
        self.outstanding = None;
        self.iters_since_restart = 0;
        self.best_iter_since_restart = 0;
        self.n_restarts += 1;
        self.evaluated_init = false;
    }

    fn random_direction(&mut self) -> Vec<f64> {
        let d = self.space.dim();
        loop {
            let v: Vec<f64> = (0..d)
                .map(|_| {
                    <StandardNormal as Distribution<f64>>::sample(&StandardNormal, &mut self.rng)
                })
                .collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                return v.into_iter().map(|x| x / norm).collect();
            }
        }
    }

    fn move_along(&self, dir: &[f64], sign: f64) -> Vec<f64> {
        self.best_point
            .iter()
            .zip(dir)
            .map(|(&x, &u)| (x + sign * self.step * u).clamp(0.0, 1.0))
            .collect()
    }
}

fn points_close(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, ParamDef};

    fn square_space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamDef::new("x", Domain::float(-5.0, 5.0), -4.0),
            ParamDef::new("y", Domain::float(-5.0, 5.0), -4.0),
        ])
        .unwrap()
    }

    fn sphere_loss(space: &SearchSpace, point: &[f64]) -> f64 {
        let c = space.decode(point);
        let x = c.get(space, "x");
        let y = c.get(space, "y");
        (x - 1.0).powi(2) + (y - 2.0).powi(2)
    }

    #[test]
    fn first_proposal_is_the_init_config() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 0);
        let p = opt.ask();
        let c = space.decode(&p);
        assert_eq!(c.get(&space, "x"), -4.0);
        assert_eq!(c.get(&space, "y"), -4.0);
    }

    #[test]
    fn seeded_point_is_evaluated_first() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 0);
        let seed = vec![0.25, 0.75];
        opt.seed_point(&seed);
        assert_eq!(opt.ask(), seed);
        opt.tell(0.5);
        assert_eq!(opt.best_point(), seed);
        assert_eq!(opt.best_err(), 0.5);
    }

    #[test]
    #[should_panic(expected = "already started searching")]
    fn seeding_after_first_evaluation_panics() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 0);
        let p = opt.ask();
        opt.tell(sphere_loss(&space, &p));
        opt.seed_point(&[0.5, 0.5]);
    }

    #[test]
    fn optimizes_a_convex_function() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 3);
        for _ in 0..300 {
            let p = opt.ask();
            let err = sphere_loss(&space, &p);
            opt.tell(err);
        }
        assert!(
            opt.best_err() < 0.5,
            "best error {} after 300 evals",
            opt.best_err()
        );
    }

    #[test]
    fn error_is_monotone_nonincreasing() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 5);
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            let p = opt.ask();
            opt.tell(sphere_loss(&space, &p));
            assert!(opt.best_err() <= last + 1e-12);
            last = opt.best_err();
        }
    }

    #[test]
    fn backward_probe_follows_failed_forward() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 1);
        // Evaluate init.
        let p0 = opt.ask();
        opt.tell(sphere_loss(&space, &p0));
        let base = opt.best_point();
        let forward = opt.ask();
        opt.tell(f64::INFINITY); // force failure
        let backward = opt.ask();
        for i in 0..2 {
            let df = forward[i] - base[i];
            let db = backward[i] - base[i];
            // Backward is the reflection of forward (modulo clamping).
            assert!(
                (df + db).abs() < 1e-9
                    || forward[i] == 0.0
                    || forward[i] == 1.0
                    || backward[i] == 0.0
                    || backward[i] == 1.0,
                "dim {i}: forward {df}, backward {db}"
            );
        }
        opt.tell(f64::INFINITY);
    }

    #[test]
    fn step_shrinks_only_with_adaptation_enabled() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 2);
        let s0 = opt.step_size();
        // Never improves: constant loss.
        let p = opt.ask();
        opt.tell(0.0);
        let _ = p;
        for _ in 0..200 {
            let _ = opt.ask();
            opt.tell(1.0);
        }
        assert_eq!(opt.step_size(), s0, "no adaptation while disabled");
        opt.set_adaptation(true);
        for _ in 0..200 {
            let _ = opt.ask();
            opt.tell(1.0);
        }
        assert!(opt.step_size() < s0, "step must shrink after stagnation");
    }

    #[test]
    fn converges_and_restarts() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 4);
        opt.set_adaptation(true);
        let p = opt.ask();
        opt.tell(sphere_loss(&space, &p));
        let mut iters = 0;
        while !opt.converged() && iters < 20_000 {
            let _ = opt.ask();
            opt.tell(1.0);
            iters += 1;
        }
        assert!(opt.converged(), "should converge under stagnation");
        let best_before = opt.best_point();
        opt.restart();
        assert_eq!(opt.n_restarts(), 1);
        assert!(!opt.converged());
        assert!(opt.best_err().is_infinite());
        assert_ne!(opt.best_point(), best_before);
    }

    #[test]
    fn proposals_stay_in_unit_cube() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 6);
        for i in 0..200 {
            let p = opt.ask();
            assert!(
                p.iter().all(|&u| (0.0..=1.0).contains(&u)),
                "iter {i}: {p:?}"
            );
            opt.tell(sphere_loss(&space, &p));
        }
    }

    #[test]
    #[should_panic(expected = "un-told outstanding")]
    fn double_ask_panics() {
        let mut opt = Flow2::new(square_space(), 0);
        let _ = opt.ask();
        let _ = opt.ask();
    }

    #[test]
    #[should_panic(expected = "without an outstanding")]
    fn tell_without_ask_panics() {
        let mut opt = Flow2::new(square_space(), 0);
        opt.tell(1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let space = square_space();
        let run = |seed| {
            let mut opt = Flow2::new(space.clone(), seed);
            let mut pts = Vec::new();
            for _ in 0..20 {
                let p = opt.ask();
                pts.push(p.clone());
                opt.tell(sphere_loss(&space, &p));
            }
            pts
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn nan_loss_never_becomes_incumbent() {
        let space = square_space();
        let mut opt = Flow2::new(space.clone(), 0);
        // NaN on the init evaluation: sanitized to the failure sentinel.
        let _ = opt.ask();
        opt.tell(f64::NAN);
        assert!(
            opt.best_err().is_infinite() && !opt.best_err().is_nan(),
            "init NaN sanitized to INFINITY, got {}",
            opt.best_err()
        );
        // A later finite loss must still be able to win.
        let _ = opt.ask();
        opt.tell(0.5);
        assert_eq!(opt.best_err(), 0.5);
        // NaN after a finite incumbent: ignored, incumbent stands.
        let _ = opt.ask();
        opt.tell(f64::NAN);
        assert_eq!(opt.best_err(), 0.5);
        // set_best_err with NaN (a failed sample-up re-score) sanitizes.
        opt.set_best_err(f64::NAN);
        assert!(opt.best_err().is_infinite() && !opt.best_err().is_nan());
    }
}
