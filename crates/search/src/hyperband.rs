//! Hyperband — the bandit-based fidelity scheduler of Li et al. (2017).
//!
//! Fidelity is expressed as a fraction `r` of the full budget (for the
//! BOHB AutoML baseline, the fraction of the training sample used).
//! Brackets run from the most exploratory (`s = s_max`, many configs at
//! fidelity `eta^-s`) to the most conservative (`s = 0`, few configs at
//! full fidelity), promoting the top `1/eta` of each rung, and cycle
//! indefinitely — exactly the allocation HpBandSter pairs with its TPE
//! model in the paper's comparison.

use std::collections::VecDeque;

/// Where the configuration of a [`Job`] comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// The caller must supply a fresh configuration (from TPE, random…).
    Fresh,
    /// A configuration promoted from the previous rung, to be re-evaluated
    /// at the job's (higher) fidelity.
    Promoted(Vec<f64>),
}

/// One unit of work issued by the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Monotonically increasing job identifier.
    pub id: u64,
    /// Configuration source.
    pub source: JobSource,
    /// Fidelity fraction in `(0, 1]`.
    pub fidelity: f64,
    /// Bracket index `s` this job belongs to (for diagnostics).
    pub bracket: usize,
    /// Rung index within the bracket.
    pub rung: usize,
}

struct Rung {
    fidelity: f64,
    queue: VecDeque<JobSource>,
    results: Vec<(Vec<f64>, f64)>,
    size: usize,
}

/// Synchronous Hyperband scheduler with a `next_job` / `report` interface.
///
/// The caller must report each job before requesting the next one (the
/// paper's setting is sequential: one trial at a time on one core).
pub struct Hyperband {
    eta: usize,
    s_max: usize,
    current_s: usize,
    rung_idx: usize,
    rung: Rung,
    next_id: u64,
    outstanding: Option<u64>,
}

impl std::fmt::Debug for Hyperband {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyperband")
            .field("eta", &self.eta)
            .field("s_max", &self.s_max)
            .field("bracket", &self.current_s)
            .field("rung", &self.rung_idx)
            .finish()
    }
}

impl Hyperband {
    /// Creates a scheduler.
    ///
    /// `r_min` is the smallest fidelity fraction (e.g. `initial sample /
    /// full sample`); `eta` is the halving rate (3 in BOHB).
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2` or `r_min` is not in `(0, 1]`.
    pub fn new(eta: usize, r_min: f64) -> Hyperband {
        assert!(eta >= 2, "eta must be at least 2");
        assert!(r_min > 0.0 && r_min <= 1.0, "r_min must be in (0, 1]");
        let s_max = if r_min >= 1.0 {
            0
        } else {
            ((1.0 / r_min).ln() / (eta as f64).ln()).floor() as usize
        };
        let mut hb = Hyperband {
            eta,
            s_max,
            current_s: s_max,
            rung_idx: 0,
            rung: Rung {
                fidelity: 1.0,
                queue: VecDeque::new(),
                results: Vec::new(),
                size: 0,
            },
            next_id: 0,
            outstanding: None,
        };
        hb.start_bracket(s_max);
        hb
    }

    /// Maximum bracket index (`s_max`).
    pub fn s_max(&self) -> usize {
        self.s_max
    }

    /// The bracket currently running.
    pub fn current_bracket(&self) -> usize {
        self.current_s
    }

    fn bracket_width(&self, s: usize) -> usize {
        // n = ceil((s_max + 1) / (s + 1)) * eta^s
        let base = (self.s_max + 1).div_ceil(s + 1);
        base * self.eta.pow(s as u32)
    }

    fn start_bracket(&mut self, s: usize) {
        let n = self.bracket_width(s);
        let fidelity = (self.eta as f64).powi(-(s as i32));
        self.current_s = s;
        self.rung_idx = 0;
        self.rung = Rung {
            fidelity,
            queue: (0..n).map(|_| JobSource::Fresh).collect(),
            results: Vec::new(),
            size: n,
        };
    }

    fn advance(&mut self) {
        // Current rung fully reported: promote or start the next bracket.
        let s = self.current_s;
        if self.rung_idx >= s {
            // Last rung of the bracket → next bracket (cycle).
            let next_s = if s == 0 { self.s_max } else { s - 1 };
            self.start_bracket(next_s);
            return;
        }
        let keep = (self.rung.size / self.eta).max(1);
        let mut results = std::mem::take(&mut self.rung.results);
        results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        results.truncate(keep);
        let fidelity = (self.rung.fidelity * self.eta as f64).min(1.0);
        self.rung_idx += 1;
        self.rung = Rung {
            fidelity,
            queue: results
                .into_iter()
                .map(|(cfg, _)| JobSource::Promoted(cfg))
                .collect(),
            results: Vec::new(),
            size: keep,
        };
    }

    /// Issues the next job.
    ///
    /// # Panics
    ///
    /// Panics if the previous job has not been reported.
    pub fn next_job(&mut self) -> Job {
        assert!(
            self.outstanding.is_none(),
            "previous job not reported before next_job()"
        );
        while self.rung.queue.is_empty() {
            self.advance();
        }
        let source = self.rung.queue.pop_front().expect("non-empty queue");
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding = Some(id);
        Job {
            id,
            source,
            fidelity: self.rung.fidelity,
            bracket: self.current_s,
            rung: self.rung_idx,
        }
    }

    /// Reports the outcome of `job`: the configuration that was evaluated
    /// (echoed back for `Fresh` jobs) and its error.
    ///
    /// # Panics
    ///
    /// Panics if `job` is not the outstanding job.
    pub fn report(&mut self, job: &Job, config: Vec<f64>, err: f64) {
        assert_eq!(
            self.outstanding.take(),
            Some(job.id),
            "reporting a job that is not outstanding"
        );
        self.rung.results.push((config, err));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_max_matches_formula() {
        let hb = Hyperband::new(3, 1.0 / 27.0);
        assert_eq!(hb.s_max(), 3);
        let hb = Hyperband::new(3, 0.05); // 1/0.05 = 20 => log3(20) = 2.7 => 2
        assert_eq!(hb.s_max(), 2);
        let hb = Hyperband::new(2, 1.0);
        assert_eq!(hb.s_max(), 0);
    }

    #[test]
    fn first_bracket_is_most_exploratory() {
        let mut hb = Hyperband::new(3, 1.0 / 9.0);
        assert_eq!(hb.s_max(), 2);
        let job = hb.next_job();
        assert_eq!(job.bracket, 2);
        assert_eq!(job.rung, 0);
        assert!((job.fidelity - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(job.source, JobSource::Fresh);
        hb.report(&job, vec![0.5], 1.0);
    }

    #[test]
    fn promotes_the_best_third() {
        let mut hb = Hyperband::new(3, 1.0 / 3.0);
        // s_max = 1: bracket 1 has n = ceil(2/2)*3 = 3 configs at 1/3.
        let mut first_rung = Vec::new();
        for i in 0..3 {
            let job = hb.next_job();
            assert_eq!(job.rung, 0);
            let cfg = vec![i as f64 / 10.0];
            // Report errors so config index 1 is the best.
            hb.report(&job, cfg.clone(), [5.0, 0.0, 9.0][i]);
            first_rung.push(cfg);
        }
        // Next rung: 1 promoted config (the best) at full fidelity.
        let job = hb.next_job();
        assert_eq!(job.rung, 1);
        assert!((job.fidelity - 1.0).abs() < 1e-12);
        assert_eq!(job.source, JobSource::Promoted(first_rung[1].clone()));
        hb.report(&job, first_rung[1].clone(), 0.0);
        // Bracket 1 done → bracket 0: fresh configs at full fidelity.
        let job = hb.next_job();
        assert_eq!(job.bracket, 0);
        assert_eq!(job.source, JobSource::Fresh);
        assert!((job.fidelity - 1.0).abs() < 1e-12);
        hb.report(&job, vec![0.0], 0.0);
    }

    #[test]
    fn brackets_cycle_forever() {
        let mut hb = Hyperband::new(2, 0.5);
        // s_max = 1. Run enough jobs to wrap through brackets 1, 0, 1 …
        let mut seen_brackets = Vec::new();
        for i in 0..40 {
            let job = hb.next_job();
            seen_brackets.push(job.bracket);
            hb.report(&job, vec![i as f64], i as f64);
        }
        assert!(seen_brackets.contains(&0));
        assert!(seen_brackets.contains(&1));
        // After a 0-bracket the scheduler must return to s_max.
        let mut wrapped = false;
        for w in seen_brackets.windows(2) {
            if w[0] == 0 && w[1] == 1 {
                wrapped = true;
            }
        }
        assert!(wrapped, "brackets must cycle: {seen_brackets:?}");
    }

    #[test]
    #[should_panic(expected = "not reported")]
    fn double_next_job_panics() {
        let mut hb = Hyperband::new(3, 0.5);
        let _ = hb.next_job();
        let _ = hb.next_job();
    }

    #[test]
    fn fidelity_never_exceeds_one() {
        let mut hb = Hyperband::new(3, 0.4);
        for i in 0..50 {
            let job = hb.next_job();
            assert!(job.fidelity <= 1.0 + 1e-12);
            assert!(job.fidelity > 0.0);
            hb.report(&job, vec![i as f64], (i % 7) as f64);
        }
    }
}
