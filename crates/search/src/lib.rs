//! Hyperparameter-search machinery for the FLAML reproduction.
//!
//! * [`SearchSpace`] / [`Domain`] — typed hyperparameter domains (linear or
//!   log-scaled floats and integers, categoricals) with a reversible
//!   encoding into the unit hypercube, where all optimizers operate.
//! * [`Flow2`] — the randomized direct-search method of Wu et al. (2020)
//!   that FLAML's Step 2 uses: start from a low-cost initial point, probe a
//!   random direction and its opposite, adapt the step size, restart when
//!   converged.
//! * [`Tpe`] — a tree-structured-Parzen-estimator surrogate (good/bad
//!   kernel density models) used by the BOHB baseline.
//! * [`Hyperband`] — the bandit-based fidelity scheduler of Li et al.
//!   (2017); combined with [`Tpe`] it reproduces HpBandSter/BOHB, the
//!   baseline sharing FLAML's search space in the paper.
//! * [`RandomSearch`] — uniform sampling, used by baseline AutoML systems
//!   and the tuned-random-forest score calibration.
//!
//! # Example
//!
//! ```
//! use flaml_search::{Domain, Flow2, ParamDef, SearchSpace};
//!
//! let space = SearchSpace::new(vec![
//!     ParamDef::new("x", Domain::float(-5.0, 5.0), 0.0),
//!     ParamDef::new("y", Domain::float(-5.0, 5.0), 0.0),
//! ]).unwrap();
//! let mut opt = Flow2::new(space.clone(), 7);
//! for _ in 0..100 {
//!     let point = opt.ask();
//!     let cfg = space.decode(&point);
//!     let (x, y) = (cfg.get(&space, "x"), cfg.get(&space, "y"));
//!     let err = (x - 1.0).powi(2) + (y + 2.0).powi(2);
//!     opt.tell(err);
//! }
//! let best = space.decode(&opt.best_point());
//! assert!((best.get(&space, "x") - 1.0).abs() < 1.5);
//! ```

#![warn(missing_docs)]

mod domain;
mod flow2;
mod hyperband;
mod random;
mod tpe;

/// Maps a `NaN` loss to `INFINITY`, the legitimate failure sentinel.
///
/// Every optimizer in this crate applies it on observation intake
/// (`tell` / `record`): a `NaN` would otherwise poison incumbent
/// comparisons (`err < best` is false both ways) or corrupt the TPE
/// good/bad split, whereas an infinite loss is simply a trial that can
/// never win.
pub fn sanitize_err(err: f64) -> f64 {
    if err.is_nan() {
        f64::INFINITY
    } else {
        err
    }
}

pub use domain::{Config, Domain, ParamDef, SearchSpace, SpaceError};
pub use flow2::Flow2;
pub use hyperband::{Hyperband, Job, JobSource};
pub use random::RandomSearch;
pub use tpe::Tpe;
