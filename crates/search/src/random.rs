//! Uniform random search over a [`SearchSpace`].

use crate::domain::SearchSpace;
use crate::sanitize_err;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random sampler with incumbent tracking, used by the
/// random-search AutoML baseline and the tuned-random-forest calibration.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: SearchSpace,
    rng: StdRng,
    best_point: Option<Vec<f64>>,
    best_err: f64,
    outstanding: Option<Vec<f64>>,
}

impl RandomSearch {
    /// Creates a sampler.
    pub fn new(space: SearchSpace, seed: u64) -> RandomSearch {
        RandomSearch {
            space,
            rng: StdRng::seed_from_u64(seed),
            best_point: None,
            best_err: f64::INFINITY,
            outstanding: None,
        }
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Proposes the next point: the initial configuration first (cheap
    /// anchor, like FLAML), then uniform samples.
    ///
    /// # Panics
    ///
    /// Panics if the previous proposal has not been told.
    pub fn ask(&mut self) -> Vec<f64> {
        assert!(self.outstanding.is_none(), "un-told outstanding proposal");
        let p = if self.best_point.is_none() && self.best_err.is_infinite() {
            self.space.encode(&self.space.init_config())
        } else {
            self.space.random_point(&mut self.rng)
        };
        self.outstanding = Some(p.clone());
        p
    }

    /// Reports the error of the last proposal. A `NaN` error is
    /// sanitized to `INFINITY` (the failure sentinel) so it can never
    /// become the incumbent.
    ///
    /// # Panics
    ///
    /// Panics if there is no outstanding proposal.
    pub fn tell(&mut self, err: f64) {
        let err = sanitize_err(err);
        let p = self.outstanding.take().expect("no outstanding proposal");
        if err < self.best_err {
            self.best_err = err;
            self.best_point = Some(p);
        } else if self.best_point.is_none() {
            // Remember that the init config was evaluated even if its
            // error is infinite, so ask() moves on to random samples.
            self.best_err = err;
            self.best_point = Some(p);
        }
    }

    /// Incumbent point, if any trial completed.
    pub fn best_point(&self) -> Option<&[f64]> {
        self.best_point.as_deref()
    }

    /// Incumbent error.
    pub fn best_err(&self) -> f64 {
        self.best_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, ParamDef};

    fn space() -> SearchSpace {
        SearchSpace::new(vec![ParamDef::new("x", Domain::float(0.0, 10.0), 5.0)]).unwrap()
    }

    #[test]
    fn first_ask_is_init() {
        let s = space();
        let mut rs = RandomSearch::new(s.clone(), 0);
        let p = rs.ask();
        assert_eq!(s.decode(&p).get(&s, "x"), 5.0);
    }

    #[test]
    fn tracks_incumbent() {
        let s = space();
        let mut rs = RandomSearch::new(s.clone(), 0);
        for _ in 0..50 {
            let p = rs.ask();
            let x = s.decode(&p).get(&s, "x");
            rs.tell((x - 7.0).abs());
        }
        let best = s.decode(rs.best_point().unwrap()).get(&s, "x");
        assert!((best - 7.0).abs() < 1.0, "best x = {best}");
        assert!(rs.best_err() < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = space();
        let run = |seed| {
            let mut rs = RandomSearch::new(s.clone(), seed);
            (0..10)
                .map(|_| {
                    let p = rs.ask();
                    rs.tell(1.0);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn nan_loss_never_becomes_incumbent() {
        let s = space();
        let mut rs = RandomSearch::new(s.clone(), 0);
        let _ = rs.ask();
        rs.tell(f64::NAN);
        assert!(!rs.best_err().is_nan(), "NaN sanitized on intake");
        let _ = rs.ask();
        rs.tell(0.3);
        assert_eq!(rs.best_err(), 0.3);
        let _ = rs.ask();
        rs.tell(f64::NAN);
        assert_eq!(rs.best_err(), 0.3, "incumbent survives NaN");
    }
}
