//! Property-based tests of the search machinery: domain encodings,
//! FLOW² invariants, TPE and Hyperband behaviour under arbitrary inputs.

use flaml_search::{Domain, Flow2, Hyperband, ParamDef, RandomSearch, SearchSpace, Tpe};
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = Domain> {
    prop_oneof![
        (-1e3f64..1e3, 0.001f64..1e3).prop_map(|(lo, w)| Domain::float(lo, lo + w)),
        (1e-6f64..1e3, 1.1f64..1e4).prop_map(|(lo, f)| Domain::log_float(lo, lo * f)),
        (-1000i64..1000, 1i64..1000).prop_map(|(lo, w)| Domain::int(lo, lo + w)),
        (1i64..1000, 2i64..100).prop_map(|(lo, f)| Domain::log_int(lo, lo * f)),
        (2usize..12).prop_map(Domain::categorical),
    ]
}

proptest! {
    #[test]
    fn decode_always_lands_in_domain(domain in arb_domain(), u in -0.5f64..1.5) {
        let v = domain.decode(u);
        match domain {
            Domain::Float { lo, hi, .. } => prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9),
            Domain::Int { lo, hi, .. } => {
                prop_assert!(v.fract() == 0.0);
                prop_assert!(v >= lo as f64 && v <= hi as f64);
            }
            Domain::Categorical { n } => {
                prop_assert!(v.fract() == 0.0);
                prop_assert!(v >= 0.0 && v < n as f64);
            }
        }
    }

    #[test]
    fn encode_decode_is_idempotent(domain in arb_domain(), u in 0.0f64..1.0) {
        // decode -> encode -> decode must be a fixed point.
        let v1 = domain.decode(u);
        let v2 = domain.decode(domain.encode(v1));
        match domain {
            Domain::Float { .. } => prop_assert!((v1 - v2).abs() <= 1e-6 * (1.0 + v1.abs())),
            _ => prop_assert_eq!(v1, v2),
        }
    }

    #[test]
    fn flow2_never_leaves_unit_cube(seed in 0u64..500, iters in 1usize..60) {
        let space = SearchSpace::new(vec![
            ParamDef::new("a", Domain::float(0.0, 1.0), 0.2),
            ParamDef::new("b", Domain::log_float(0.01, 10.0), 0.1),
            ParamDef::new("c", Domain::int(1, 100), 1.0),
        ]).unwrap();
        let mut opt = Flow2::new(space, seed);
        for i in 0..iters {
            let p = opt.ask();
            prop_assert!(p.iter().all(|&u| (0.0..=1.0).contains(&u)), "iter {}: {:?}", i, p);
            opt.tell((i as f64 * 0.37).sin().abs());
        }
    }

    #[test]
    fn flow2_best_err_is_running_min(seed in 0u64..200, errs in proptest::collection::vec(0.0f64..10.0, 2..50)) {
        let space = SearchSpace::new(vec![ParamDef::new("x", Domain::float(0.0, 1.0), 0.5)]).unwrap();
        let mut opt = Flow2::new(space, seed);
        let mut min_seen = f64::INFINITY;
        for &e in &errs {
            let _ = opt.ask();
            opt.tell(e);
            min_seen = min_seen.min(e);
            prop_assert_eq!(opt.best_err(), min_seen);
        }
    }

    #[test]
    fn random_search_incumbent_matches_min(seed in 0u64..200, errs in proptest::collection::vec(0.0f64..10.0, 1..40)) {
        let space = SearchSpace::new(vec![ParamDef::new("x", Domain::float(0.0, 1.0), 0.5)]).unwrap();
        let mut rs = RandomSearch::new(space, seed);
        for &e in &errs {
            let _ = rs.ask();
            rs.tell(e);
        }
        let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(rs.best_err(), min);
    }

    #[test]
    fn tpe_proposals_stay_in_cube(seed in 0u64..100, n in 5usize..40) {
        let space = SearchSpace::new(vec![
            ParamDef::new("x", Domain::float(0.0, 1.0), 0.5),
            ParamDef::new("c", Domain::categorical(4), 0.0),
        ]).unwrap();
        let mut tpe = Tpe::new(space, seed);
        for i in 0..n {
            let p = tpe.ask();
            prop_assert!(p.iter().all(|&u| (0.0..=1.0).contains(&u)));
            tpe.tell((i % 7) as f64 * 0.1);
        }
    }

    #[test]
    fn hyperband_fidelities_are_geometric(eta in 2usize..5, r_min in 0.01f64..0.9) {
        let mut hb = Hyperband::new(eta, r_min);
        for i in 0..60u64 {
            let job = hb.next_job();
            prop_assert!(job.fidelity > 0.0 && job.fidelity <= 1.0 + 1e-12);
            // Fidelity must be eta^-k for some integer k (within fp error).
            let k = (-(job.fidelity.ln()) / (eta as f64).ln()).round();
            let expected = (eta as f64).powf(-k);
            prop_assert!((job.fidelity - expected).abs() < 1e-9,
                "fidelity {} not a power of 1/{}", job.fidelity, eta);
            hb.report(&job, vec![i as f64], (i % 11) as f64);
        }
    }
}
