//! The append side of the journal: fsync-on-commit JSONL writing.

use crate::record::{JournalHeader, TrialLine};
use flaml_exec::{EventSink, TrialEvent};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

/// Appends journal records with fsync-on-commit.
///
/// Every [`JournalWriter::append`] writes one JSONL line and then flushes
/// and syncs the file before returning, so a record the caller has seen
/// committed survives a process kill or power loss. I/O errors after
/// creation are reported once via [`JournalWriter::take_error`] and
/// otherwise swallowed: persistence must never crash a search mid-run.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    /// First I/O error encountered while appending, if any.
    error: Option<io::Error>,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and durably writes its
    /// header record. Parent directories are created as needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or syncing the file.
    pub fn create(path: impl AsRef<Path>, header: &JournalHeader) -> io::Result<JournalWriter> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = File::create(path)?;
        let mut writer = JournalWriter { file, error: None };
        let json = serde_json::to_string(header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writer.write_line(&json)?;
        Ok(writer)
    }

    /// Opens an existing journal at `path` for appending (the resume
    /// path: replayed trials are already on disk, continued trials are
    /// appended after them). The header is not rewritten.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the file.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file, error: None })
    }

    /// Reopens a journal for a resumed run: truncates the file to its
    /// committed prefix (discarding any torn tail, so new records can
    /// never glue onto torn bytes) and appends after it. Pass the
    /// `committed_bytes` reported by [`crate::Journal::read`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening, truncating, or syncing.
    pub fn resume(path: impl AsRef<Path>, committed_bytes: u64) -> io::Result<JournalWriter> {
        let path = path.as_ref();
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(committed_bytes)?;
        file.sync_data()?;
        drop(file);
        JournalWriter::append_to(path)
    }

    fn write_line(&mut self, json: &str) -> io::Result<()> {
        self.file.write_all(json.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        // fsync-on-commit: the record is durable before the search
        // proceeds past the trial it describes.
        self.file.sync_data()
    }

    /// Appends one committed trial record durably. A failed append is
    /// recorded (see [`JournalWriter::take_error`]) but does not panic.
    pub fn append(&mut self, line: &TrialLine) {
        if self.error.is_some() {
            return;
        }
        let json = match serde_json::to_string(line) {
            Ok(j) => j,
            Err(e) => {
                self.error = Some(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                return;
            }
        };
        if let Err(e) = self.write_line(&json) {
            self.error = Some(e);
        }
    }

    /// Consumes one trial event, appending a record if it is a committed
    /// terminal event (carries an error and full trial metadata).
    pub fn on_event(&mut self, event: &TrialEvent) {
        if let Some(line) = TrialLine::from_event(event) {
            self.append(&line);
        }
    }

    /// The first append error encountered, if any (taking it resets the
    /// writer's error state).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and fsyncs any buffered bytes now, without appending a
    /// record. Dropping the writer does the same, so a server shutting
    /// down mid-search never loses the last committed record.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()
    }

    /// Wraps the writer in a synchronous [`EventSink`]: every committed
    /// terminal event emitted into the sink is appended (and fsynced)
    /// before the emitting thread proceeds. Fan this together with live
    /// telemetry sinks via [`EventSink::fanout`].
    pub fn into_sink(self) -> EventSink {
        let writer = Mutex::new(self);
        EventSink::callback(move |event| {
            if let Ok(mut w) = writer.lock() {
                w.on_event(event);
            }
        })
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort durability on shutdown: errors are unreportable
        // here and every committed append already fsynced itself.
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::Journal;
    use crate::record::{DatasetInfo, SCHEMA_VERSION};

    fn header() -> JournalHeader {
        JournalHeader {
            schema_version: SCHEMA_VERSION,
            seed: 7,
            time_budget: 1.0,
            max_trials: Some(10),
            sample_size_init: 100,
            sampling: true,
            learner_selection: "eci".into(),
            resample: "auto".into(),
            metric: "".into(),
            estimators: vec!["lightgbm".into(), "lr".into()],
            time_source: "virtual".into(),
            dataset: DatasetInfo {
                name: "t".into(),
                task: "binary".into(),
                rows: 100,
                features: 2,
                fingerprint: 0xfeed,
            },
        }
    }

    fn line(iter: usize) -> TrialLine {
        TrialLine {
            iter,
            learner: "lightgbm".into(),
            config: "x=1".into(),
            config_values: vec![1.0],
            sample_size: 100,
            loss: 0.5 / iter as f64,
            status: "ok".into(),
            mode: "search".into(),
            attempts: 0,
            attempt_costs: vec![0.1],
            cost: 0.1,
            total_time: 0.1 * iter as f64,
            wall_secs: 0.0,
            prepared_hits: 0,
            prepared_misses: 0,
            bytes_copied_saved: 0,
            seed: 7,
            improved: true,
            best_loss: 0.5 / iter as f64,
        }
    }

    #[test]
    fn create_append_read_round_trip() {
        let dir = std::env::temp_dir().join("flaml-journal-writer-test");
        let path = dir.join("run.jsonl");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&line(1));
        w.append(&line(2));
        assert!(w.take_error().is_none());
        drop(w);

        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&line(3));
        drop(w);

        let j = Journal::read(&path).unwrap();
        assert_eq!(j.header, header());
        assert_eq!(j.trials.len(), 3);
        assert_eq!(j.trials[2], line(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_sink_appends_committed_terminals_only() {
        use flaml_exec::{TrialEventKind, TrialMeta};
        let dir = std::env::temp_dir().join("flaml-journal-sink-test");
        let path = dir.join("run.jsonl");
        let sink = JournalWriter::create(&path, &header()).unwrap().into_sink();

        sink.emit(TrialEvent::new(TrialEventKind::Started));
        let mut ev = TrialEvent::new(TrialEventKind::Finished);
        ev.job_id = 1;
        ev.learner = "lr".into();
        ev.error = Some(0.25);
        ev.cost = Some(0.1);
        ev.meta = Some(TrialMeta {
            mode: "search".into(),
            status: "ok".into(),
            attempt_costs: vec![0.1],
            best_error: 0.25,
            improved: true,
            config_values: vec![0.5],
            ..TrialMeta::default()
        });
        sink.emit(ev.clone());
        // A discarded speculative trial: terminal kind but no error/meta.
        let mut discarded = TrialEvent::new(TrialEventKind::Finished);
        discarded.message = Some("speculative trial discarded".into());
        sink.emit(discarded);
        drop(sink);

        let j = Journal::read(&path).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert_eq!(j.trials[0].learner, "lr");
        assert_eq!(j.trials[0].loss, 0.25);
        std::fs::remove_dir_all(&dir).ok();
    }
}
