//! The append side of the journal: fsync-on-commit JSONL writing.

use crate::record::{JournalHeader, TrialLine};
use flaml_exec::{EventSink, TrialEvent};
use flaml_store::{disk, Storage, StorageError, StorageFile};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Appends journal records with fsync-on-commit.
///
/// Every [`JournalWriter::append`] writes one JSONL line and then syncs
/// the file before returning, so a record the caller has seen committed
/// survives a process kill or power loss. I/O errors after creation are
/// reported once via [`JournalWriter::take_error`] and otherwise
/// swallowed: persistence must never crash a search mid-run. A failed
/// append additionally truncates the file back to its committed prefix,
/// so torn bytes from the failure can never glue onto a later record.
///
/// All I/O goes through a [`Storage`] handle — [`flaml_store::DiskStorage`]
/// by default, or a chaos wrapper in fault-injection tests (the `_with`
/// constructors).
#[derive(Debug)]
pub struct JournalWriter {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    /// Bytes known durably committed (header + fsynced records).
    committed_len: u64,
    /// First storage error encountered while appending, if any.
    error: Option<StorageError>,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and durably writes its
    /// header record. Parent directories are created as needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or syncing the file.
    pub fn create(path: impl AsRef<Path>, header: &JournalHeader) -> io::Result<JournalWriter> {
        JournalWriter::create_with(disk().as_ref(), path.as_ref(), header).map_err(io::Error::from)
    }

    /// [`JournalWriter::create`] against an explicit [`Storage`].
    ///
    /// # Errors
    ///
    /// Returns the typed storage failure from creating or syncing.
    pub fn create_with(
        storage: &dyn Storage,
        path: &Path,
        header: &JournalHeader,
    ) -> Result<JournalWriter, StorageError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                storage.create_dir_all(dir)?;
            }
        }
        let file = storage.create(path)?;
        let mut writer = JournalWriter {
            file,
            path: path.to_path_buf(),
            committed_len: 0,
            error: None,
        };
        let json = serde_json::to_string(header).map_err(|e| StorageError::Io {
            op: "serialize-header",
            path: path.to_path_buf(),
            source: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        })?;
        writer.write_line(&json)?;
        Ok(writer)
    }

    /// Opens an existing journal at `path` for appending (the resume
    /// path: replayed trials are already on disk, continued trials are
    /// appended after them). The header is not rewritten.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the file.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<JournalWriter> {
        JournalWriter::append_to_with(disk().as_ref(), path.as_ref()).map_err(io::Error::from)
    }

    /// [`JournalWriter::append_to`] against an explicit [`Storage`].
    ///
    /// # Errors
    ///
    /// Returns the typed storage failure from opening or sizing the file.
    pub fn append_to_with(
        storage: &dyn Storage,
        path: &Path,
    ) -> Result<JournalWriter, StorageError> {
        let committed_len = storage.file_len(path)?;
        let file = storage.append(path)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            committed_len,
            error: None,
        })
    }

    /// Reopens a journal for a resumed run: truncates the file to its
    /// committed prefix (discarding any torn tail, so new records can
    /// never glue onto torn bytes) and appends after it. Pass the
    /// `committed_bytes` reported by [`crate::Journal::read`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening, truncating, or syncing.
    pub fn resume(path: impl AsRef<Path>, committed_bytes: u64) -> io::Result<JournalWriter> {
        JournalWriter::resume_with(disk().as_ref(), path.as_ref(), committed_bytes)
            .map_err(io::Error::from)
    }

    /// [`JournalWriter::resume`] against an explicit [`Storage`].
    ///
    /// # Errors
    ///
    /// Returns the typed storage failure from opening, truncating, or
    /// syncing.
    pub fn resume_with(
        storage: &dyn Storage,
        path: &Path,
        committed_bytes: u64,
    ) -> Result<JournalWriter, StorageError> {
        storage.truncate_file(path, committed_bytes)?;
        JournalWriter::append_to_with(storage, path)
    }

    fn write_line(&mut self, json: &str) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(json.len() + 1);
        buf.extend_from_slice(json.as_bytes());
        buf.push(b'\n');
        let commit = (|| {
            self.file.write_all(&buf)?;
            // fsync-on-commit: the record is durable before the search
            // proceeds past the trial it describes.
            self.file.sync_data()
        })();
        match commit {
            Ok(()) => {
                self.committed_len += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Drop any torn bytes of the failed record so the file
                // stays exactly its committed prefix; if even that
                // fails, the reader's torn-tail tolerance still covers
                // recovery.
                let _ = self.file.truncate(self.committed_len);
                Err(e)
            }
        }
    }

    /// Appends one committed trial record durably. A failed append is
    /// recorded (see [`JournalWriter::take_error`]) but does not panic.
    pub fn append(&mut self, line: &TrialLine) {
        if self.error.is_some() {
            return;
        }
        let json = match serde_json::to_string(line) {
            Ok(j) => j,
            Err(e) => {
                self.error = Some(StorageError::Io {
                    op: "serialize-record",
                    path: self.path.clone(),
                    source: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
                });
                return;
            }
        };
        if let Err(e) = self.write_line(&json) {
            self.error = Some(e);
        }
    }

    /// Consumes one trial event, appending a record if it is a committed
    /// terminal event (carries an error and full trial metadata).
    pub fn on_event(&mut self, event: &TrialEvent) {
        if let Some(line) = TrialLine::from_event(event) {
            self.append(&line);
        }
    }

    /// The first append error encountered, if any (taking it resets the
    /// writer's error state).
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    /// Bytes known durably committed so far.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Fsyncs any buffered bytes now, without appending a record.
    /// Dropping the writer does the same, so a server shutting down
    /// mid-search never loses the last committed record.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()
    }

    /// Wraps the writer in a synchronous [`EventSink`]: every committed
    /// terminal event emitted into the sink is appended (and fsynced)
    /// before the emitting thread proceeds. Fan this together with live
    /// telemetry sinks via [`EventSink::fanout`]. Use
    /// [`JournalWriter::into_shared`] instead when the caller needs to
    /// observe append errors after the run.
    pub fn into_sink(self) -> EventSink {
        self.into_shared().sink()
    }

    /// Wraps the writer in a [`SharedJournalWriter`], which hands out
    /// sinks *and* keeps a handle for checking [`take_error`] once the
    /// run is over.
    ///
    /// [`take_error`]: SharedJournalWriter::take_error
    pub fn into_shared(self) -> SharedJournalWriter {
        SharedJournalWriter(Arc::new(Mutex::new(self)))
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort durability on shutdown: errors are unreportable
        // here and every committed append already fsynced itself.
        let _ = self.sync();
    }
}

/// A clonable handle to a [`JournalWriter`] that separates *writing*
/// (the [`EventSink`] from [`SharedJournalWriter::sink`], handed to the
/// search) from *error observation* ([`SharedJournalWriter::take_error`],
/// checked by the owner after the run). This is how a search turns a
/// mid-run `ENOSPC` into a typed terminal failure instead of silently
/// dropping records.
#[derive(Debug, Clone)]
pub struct SharedJournalWriter(Arc<Mutex<JournalWriter>>);

impl SharedJournalWriter {
    /// A synchronous sink appending committed terminal events to the
    /// shared writer.
    pub fn sink(&self) -> EventSink {
        let writer = Arc::clone(&self.0);
        EventSink::callback(move |event| {
            if let Ok(mut w) = writer.lock() {
                w.on_event(event);
            }
        })
    }

    /// The first append error encountered, if any (taking it resets the
    /// writer's error state).
    pub fn take_error(&self) -> Option<StorageError> {
        self.0.lock().ok().and_then(|mut w| w.take_error())
    }

    /// Bytes known durably committed so far.
    pub fn committed_len(&self) -> u64 {
        self.0.lock().map(|w| w.committed_len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::Journal;
    use crate::record::{DatasetInfo, SCHEMA_VERSION};

    fn header() -> JournalHeader {
        JournalHeader {
            schema_version: SCHEMA_VERSION,
            seed: 7,
            time_budget: 1.0,
            max_trials: Some(10),
            sample_size_init: 100,
            sampling: true,
            learner_selection: "eci".into(),
            resample: "auto".into(),
            metric: "".into(),
            estimators: vec!["lightgbm".into(), "lr".into()],
            time_source: "virtual".into(),
            dataset: DatasetInfo {
                name: "t".into(),
                task: "binary".into(),
                rows: 100,
                features: 2,
                fingerprint: 0xfeed,
            },
        }
    }

    fn line(iter: usize) -> TrialLine {
        TrialLine {
            iter,
            learner: "lightgbm".into(),
            config: "x=1".into(),
            config_values: vec![1.0],
            sample_size: 100,
            loss: 0.5 / iter as f64,
            status: "ok".into(),
            mode: "search".into(),
            attempts: 0,
            attempt_costs: vec![0.1],
            cost: 0.1,
            total_time: 0.1 * iter as f64,
            wall_secs: 0.0,
            prepared_hits: 0,
            prepared_misses: 0,
            prepared_evictions: 0,
            bytes_copied_saved: 0,
            tree_cache_hits: 0,
            tree_cache_misses: 0,
            trees_saved: 0,
            seed: 7,
            improved: true,
            best_loss: 0.5 / iter as f64,
        }
    }

    #[test]
    fn create_append_read_round_trip() {
        let dir = std::env::temp_dir().join("flaml-journal-writer-test");
        let path = dir.join("run.jsonl");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&line(1));
        w.append(&line(2));
        assert!(w.take_error().is_none());
        drop(w);

        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&line(3));
        drop(w);

        let j = Journal::read(&path).unwrap();
        assert_eq!(j.header, header());
        assert_eq!(j.trials.len(), 3);
        assert_eq!(j.trials[2], line(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_sink_appends_committed_terminals_only() {
        use flaml_exec::{TrialEvent, TrialEventKind, TrialMeta};
        let dir = std::env::temp_dir().join("flaml-journal-sink-test");
        let path = dir.join("run.jsonl");
        let sink = JournalWriter::create(&path, &header()).unwrap().into_sink();

        sink.emit(TrialEvent::new(TrialEventKind::Started));
        let mut ev = TrialEvent::new(TrialEventKind::Finished);
        ev.job_id = 1;
        ev.learner = "lr".into();
        ev.error = Some(0.25);
        ev.cost = Some(0.1);
        ev.meta = Some(TrialMeta {
            mode: "search".into(),
            status: "ok".into(),
            attempt_costs: vec![0.1],
            best_error: 0.25,
            improved: true,
            config_values: vec![0.5],
            ..TrialMeta::default()
        });
        sink.emit(ev.clone());
        // A discarded speculative trial: terminal kind but no error/meta.
        let mut discarded = TrialEvent::new(TrialEventKind::Finished);
        discarded.message = Some("speculative trial discarded".into());
        sink.emit(discarded);
        drop(sink);

        let j = Journal::read(&path).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert_eq!(j.trials[0].learner, "lr");
        assert_eq!(j.trials[0].loss, 0.25);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_append_truncates_to_committed_prefix_and_latches() {
        use flaml_store::{ChaosStorage, DiskStorage, IoFaultPlan};
        let dir = std::env::temp_dir().join("flaml-journal-chaos-append");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");

        // Count the ops of one clean append so the chaos run can fault
        // exactly the second record's write.
        let clean = ChaosStorage::new(flaml_store::disk(), IoFaultPlan::new(0));
        let mut w = JournalWriter::create_with(&clean, &path, &header()).unwrap();
        let after_create = clean.ops_issued();
        w.append(&line(1));
        let per_append = clean.ops_issued() - after_create;
        drop(w);

        // Short-write every op: header creation would fail, so create
        // cleanly first, then reopen under chaos for the append.
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&line(1));
        drop(w);
        let committed = Journal::read(&path).unwrap().committed_bytes;

        let chaotic = ChaosStorage::new(flaml_store::disk(), IoFaultPlan::new(3).short_writes(1.0));
        let mut w = JournalWriter::append_to_with(&chaotic, &path).unwrap();
        w.append(&line(2));
        let err = w.take_error().expect("the torn append is reported");
        assert!(matches!(err, StorageError::TornWrite { .. }), "{err}");
        drop(w);
        assert!(per_append >= 1);

        // The file is exactly its committed prefix — no torn bytes —
        // and reads back as the one committed record.
        assert_eq!(DiskStorage.file_len(&path).unwrap(), committed);
        let j = Journal::read(&path).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert_eq!(j.committed_bytes, committed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_writer_reports_errors_after_the_run() {
        use flaml_store::{ChaosStorage, IoFaultPlan};
        let dir = std::env::temp_dir().join("flaml-journal-shared-err");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&line(1));
        drop(w);

        let chaotic = ChaosStorage::new(flaml_store::disk(), IoFaultPlan::new(1).enospc(1.0));
        let shared =
            JournalWriter::append_to_with(&chaotic, &path).expect_err("open hits injected ENOSPC");
        assert!(shared.is_no_space());

        // With faults off the shared handle reports no error.
        let shared = JournalWriter::append_to(&path).unwrap().into_shared();
        let sink = shared.sink();
        drop(sink);
        assert!(shared.take_error().is_none());
        assert!(shared.committed_len() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
