//! Per-tenant journal discovery: scan a journal root for resumable
//! runs.
//!
//! A multi-tenant service lays journals out as
//! `root/<tenant>/<run>.jsonl`; standalone tools write `root/<run>.jsonl`
//! directly. [`discover`] walks one level of either layout, reads each
//! journal's committed prefix, and returns every run that could be
//! resumed — skipping files that are not journals (bad header, wrong
//! schema, unreadable) rather than failing the whole scan, because a
//! recovery pass must come up even when one tenant's directory is
//! damaged.

use crate::reader::Journal;
use crate::record::JournalHeader;
use std::io;
use std::path::{Path, PathBuf};

/// One journal found under a discovery root.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredJournal {
    /// Absolute (as given) path of the journal file.
    pub path: PathBuf,
    /// Owning tenant — the immediate subdirectory name — or `None` for
    /// a journal sitting directly in the root.
    pub tenant: Option<String>,
    /// The run name: the journal file's stem (`root/t/abc.jsonl` → `abc`).
    pub run: String,
    /// The journal's header record.
    pub header: JournalHeader,
    /// Committed trials currently on disk.
    pub trials: usize,
    /// Byte length of the committed prefix (pass to
    /// [`crate::JournalWriter::resume`]).
    pub committed_bytes: u64,
}

/// Scans `root` (one directory level deep) for resumable journals.
/// Returns them sorted by `(tenant, run)` so recovery order is
/// deterministic. A missing root is an empty scan, not an error.
///
/// # Errors
///
/// Returns an I/O error only if listing a directory fails; individual
/// files that cannot be read or parsed as journals are skipped.
pub fn discover(root: impl AsRef<Path>) -> io::Result<Vec<DiscoveredJournal>> {
    discover_with(flaml_store::disk().as_ref(), root.as_ref()).map_err(io::Error::from)
}

/// [`discover`] against an explicit [`flaml_store::Storage`] — the
/// fault-injection entry point.
///
/// # Errors
///
/// Returns a typed storage failure only if listing a directory fails;
/// individual files that cannot be read or parsed as journals are
/// skipped.
pub fn discover_with(
    storage: &dyn flaml_store::Storage,
    root: &Path,
) -> Result<Vec<DiscoveredJournal>, flaml_store::StorageError> {
    let mut found = Vec::new();
    for path in storage.scan(root)? {
        if storage.is_dir(&path) {
            let tenant = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            for sub in storage.scan(&path)? {
                probe(storage, &sub, Some(&tenant), &mut found);
            }
        } else {
            probe(storage, &path, None, &mut found);
        }
    }
    found.sort_by(|a, b| (&a.tenant, &a.run).cmp(&(&b.tenant, &b.run)));
    Ok(found)
}

fn probe(
    storage: &dyn flaml_store::Storage,
    path: &Path,
    tenant: Option<&str>,
    found: &mut Vec<DiscoveredJournal>,
) {
    if storage.is_dir(path) || path.extension().is_none_or(|e| e != "jsonl") {
        return;
    }
    let Ok(journal) = Journal::read_with(storage, path) else {
        return; // not a journal (bad header / schema / unreadable)
    };
    let run = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    found.push(DiscoveredJournal {
        path: path.to_path_buf(),
        tenant: tenant.map(str::to_string),
        run,
        header: journal.header,
        trials: journal.trials.len(),
        committed_bytes: journal.committed_bytes,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DatasetInfo, SCHEMA_VERSION};
    use crate::writer::JournalWriter;

    fn header(seed: u64) -> JournalHeader {
        JournalHeader {
            schema_version: SCHEMA_VERSION,
            seed,
            time_budget: 1.0,
            max_trials: None,
            sample_size_init: 10,
            sampling: false,
            learner_selection: "eci".into(),
            resample: "auto".into(),
            metric: "".into(),
            estimators: vec!["lr".into()],
            time_source: "virtual".into(),
            dataset: DatasetInfo {
                name: "d".into(),
                task: "binary".into(),
                rows: 10,
                features: 2,
                fingerprint: seed,
            },
        }
    }

    #[test]
    fn discovers_tenant_and_root_journals_sorted() {
        let root = std::env::temp_dir().join("flaml-journal-discover-test");
        std::fs::remove_dir_all(&root).ok();
        JournalWriter::create(root.join("b-tenant").join("run2.jsonl"), &header(2)).unwrap();
        JournalWriter::create(root.join("a-tenant").join("run1.jsonl"), &header(1)).unwrap();
        JournalWriter::create(root.join("loose.jsonl"), &header(3)).unwrap();
        // Distractors: wrong extension, garbage content, empty tenant dir.
        std::fs::write(root.join("a-tenant").join("note.txt"), "hi").unwrap();
        std::fs::write(root.join("b-tenant").join("broken.jsonl"), "not json\n").unwrap();
        std::fs::create_dir_all(root.join("idle-tenant")).unwrap();

        let runs = discover(&root).unwrap();
        let summary: Vec<(Option<&str>, &str, u64)> = runs
            .iter()
            .map(|d| (d.tenant.as_deref(), d.run.as_str(), d.header.seed))
            .collect();
        assert_eq!(
            summary,
            vec![
                (None, "loose", 3),
                (Some("a-tenant"), "run1", 1),
                (Some("b-tenant"), "run2", 2),
            ]
        );
        assert!(runs.iter().all(|d| d.trials == 0));
        assert!(runs.iter().all(|d| d.committed_bytes > 0));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_root_is_empty() {
        let root = std::env::temp_dir().join("flaml-journal-discover-missing");
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(discover(&root).unwrap(), Vec::new());
    }
}
