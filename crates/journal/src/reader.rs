//! The read side of the journal: torn-tail-tolerant parsing plus the
//! queries resume and warm-start need.

use crate::record::{JournalHeader, TrialLine, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

/// Why a journal could not be opened.
///
/// Note what is *not* here: a torn or corrupt trial record. Trial-line
/// damage is expected after a crash and handled by truncation
/// ([`Journal::read`] returns the maximal committed prefix). Only damage
/// that makes the whole file meaningless — unreadable, no parseable
/// header, or a header from a different schema — is an error.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The file has no parseable header line.
    BadHeader(String),
    /// The header's schema version is not the one this reader speaks.
    SchemaVersion {
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::BadHeader(msg) => write!(f, "journal has no valid header: {msg}"),
            JournalError::SchemaVersion { found, supported } => write!(
                f,
                "journal schema version {found} is not supported (reader speaks {supported})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// A journal read back from disk: the header plus every committed trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// The run-configuration header (first line of the file).
    pub header: JournalHeader,
    /// Committed trials, in commit order.
    pub trials: Vec<TrialLine>,
    /// Length in bytes of the committed prefix (header + committed
    /// trials, trailing newlines included). A resuming writer truncates
    /// the file to this length first, so a torn tail can never glue
    /// itself onto the next appended record.
    pub committed_bytes: u64,
}

impl Journal {
    /// Reads a journal, tolerating a torn tail.
    ///
    /// A trial record counts as committed only if its line is
    /// newline-terminated **and** parses as a [`TrialLine`]. At the first
    /// line failing either test the reader stops and returns the maximal
    /// committed prefix — a crash mid-write therefore loses at most the
    /// record that was being written, never the journal.
    ///
    /// # Errors
    ///
    /// Only an unreadable file, a missing/corrupt header line, or an
    /// unsupported schema version error out.
    pub fn read(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        Journal::read_with(flaml_store::disk().as_ref(), path.as_ref())
    }

    /// [`Journal::read`] against an explicit [`flaml_store::Storage`] —
    /// the fault-injection entry point.
    ///
    /// # Errors
    ///
    /// As [`Journal::read`]; storage failures surface as
    /// [`JournalError::Io`].
    pub fn read_with(
        storage: &dyn flaml_store::Storage,
        path: &Path,
    ) -> Result<Journal, JournalError> {
        let bytes = storage.read(path).map_err(io::Error::from)?;
        // Lossy decoding: a torn multi-byte UTF-8 sequence in the tail
        // must truncate the tail, not fail the read. The replacement
        // character breaks JSON parsing for the affected line only.
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = CommittedLines::new(&text);

        let header_line = lines
            .next()
            .ok_or_else(|| JournalError::BadHeader("empty or truncated first line".into()))?;
        let header: JournalHeader = serde_json::from_str(header_line)
            .map_err(|e| JournalError::BadHeader(e.to_string()))?;
        if header.schema_version != SCHEMA_VERSION {
            return Err(JournalError::SchemaVersion {
                found: header.schema_version,
                supported: SCHEMA_VERSION,
            });
        }
        // Committed lines precede any damage, so they are valid UTF-8
        // and their lossy-decoded lengths equal their on-disk lengths.
        let mut committed_bytes = header_line.len() as u64 + 1;

        let mut trials = Vec::new();
        for line in lines {
            match serde_json::from_str::<TrialLine>(line) {
                Ok(t) => {
                    trials.push(t);
                    committed_bytes += line.len() as u64 + 1;
                }
                // First corrupt record: everything after it is suspect.
                Err(_) => break,
            }
        }
        Ok(Journal {
            header,
            trials,
            committed_bytes,
        })
    }

    /// The committed trial with the lowest loss, if any finite-loss trial
    /// was committed. Ties go to the earliest trial, matching the live
    /// run's strict-improvement rule.
    pub fn best_trial(&self) -> Option<&TrialLine> {
        self.trials.iter().filter(|t| t.loss.is_finite()).fold(
            None,
            |best: Option<&TrialLine>, t| match best {
                Some(b) if b.loss <= t.loss => Some(b),
                _ => Some(t),
            },
        )
    }

    /// The best committed configuration per learner: for each learner
    /// with at least one finite-loss trial, its `(config_values, loss)`
    /// at that learner's lowest loss (earliest on ties). Ordered by
    /// learner name. This is the warm-start seed set: each learner's
    /// FLOW² search starts from its own prior best, and the losses prime
    /// the ECI selector.
    pub fn best_configs(&self) -> Vec<(String, Vec<f64>, f64)> {
        let mut best: BTreeMap<&str, &TrialLine> = BTreeMap::new();
        for t in self.trials.iter().filter(|t| t.loss.is_finite()) {
            match best.get(t.learner.as_str()) {
                Some(b) if b.loss <= t.loss => {}
                _ => {
                    best.insert(&t.learner, t);
                }
            }
        }
        best.into_iter()
            .map(|(name, t)| (name.to_string(), t.config_values.clone(), t.loss))
            .collect()
    }

    /// The journal re-serialized with every record's process-lifetime
    /// fields zeroed: the *deterministic* bytes of a run. `wall_secs`
    /// records physical time; `prepared_hits` / `prepared_misses` /
    /// `prepared_evictions` record the warmth of the in-process
    /// prepared-data cache; `tree_cache_hits` / `tree_cache_misses` /
    /// `trees_saved` record the warmth of the in-process tree cache. All
    /// of these depend on how the process ran (a resumed run restarts
    /// with cold caches), not on the search trajectory, so two journals
    /// of the same virtual-clock search — live, sliced, or
    /// killed-and-resumed — compare equal here. (`TrialLine`'s JSON
    /// round-trip is a fixed point, so every other field still compares
    /// byte-for-byte.)
    pub fn canonical_bytes(&self) -> String {
        let mut out =
            serde_json::to_string(&self.header).expect("header serialization is infallible");
        out.push('\n');
        for trial in &self.trials {
            let mut trial = trial.clone();
            trial.wall_secs = 0.0;
            trial.prepared_hits = 0;
            trial.prepared_misses = 0;
            trial.prepared_evictions = 0;
            trial.tree_cache_hits = 0;
            trial.tree_cache_misses = 0;
            trial.trees_saved = 0;
            out.push_str(
                &serde_json::to_string(&trial).expect("record serialization is infallible"),
            );
            out.push('\n');
        }
        out
    }

    /// Total budget cost charged across every committed attempt — the
    /// budget a resumed run has already spent.
    pub fn spent_budget(&self) -> f64 {
        self.trials
            .iter()
            .flat_map(|t| t.attempt_costs.iter())
            .sum()
    }
}

/// Iterator over the newline-terminated lines of a journal. A final line
/// without a trailing `\n` is a torn write and is never yielded.
struct CommittedLines<'a> {
    rest: &'a str,
}

impl<'a> CommittedLines<'a> {
    fn new(text: &'a str) -> CommittedLines<'a> {
        CommittedLines { rest: text }
    }
}

impl<'a> Iterator for CommittedLines<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let nl = self.rest.find('\n')?;
        let line = &self.rest[..nl];
        self.rest = &self.rest[nl + 1..];
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DatasetInfo;
    use crate::writer::JournalWriter;

    fn header() -> JournalHeader {
        JournalHeader {
            schema_version: SCHEMA_VERSION,
            seed: 1,
            time_budget: 2.0,
            max_trials: None,
            sample_size_init: 50,
            sampling: false,
            learner_selection: "eci".into(),
            resample: "cv".into(),
            metric: "log_loss".into(),
            estimators: vec!["rf".into()],
            time_source: "virtual".into(),
            dataset: DatasetInfo {
                name: "d".into(),
                task: "binary".into(),
                rows: 10,
                features: 1,
                fingerprint: 1,
            },
        }
    }

    fn line(iter: usize, learner: &str, loss: f64) -> TrialLine {
        TrialLine {
            iter,
            learner: learner.into(),
            config: String::new(),
            config_values: vec![iter as f64],
            sample_size: 50,
            loss,
            status: "ok".into(),
            mode: "search".into(),
            attempts: 0,
            attempt_costs: vec![0.25, 0.5],
            cost: 0.75,
            total_time: 0.75 * iter as f64,
            wall_secs: 0.0,
            prepared_hits: 0,
            prepared_misses: 0,
            prepared_evictions: 0,
            bytes_copied_saved: 0,
            tree_cache_hits: 0,
            tree_cache_misses: 0,
            trees_saved: 0,
            seed: 1,
            improved: false,
            best_loss: loss,
        }
    }

    fn write_journal(name: &str, trials: &[TrialLine]) -> std::path::PathBuf {
        let path = std::env::temp_dir()
            .join("flaml-journal-reader-test")
            .join(name);
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        for t in trials {
            w.append(t);
        }
        path
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let path = write_journal("torn.jsonl", &[line(1, "rf", 0.5), line(2, "rf", 0.4)]);
        let full = std::fs::read(&path).unwrap();
        // Chop off the trailing newline and some bytes: record 2 is torn.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let j = Journal::read(&path).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert_eq!(j.trials[0], line(1, "rf", 0.5));

        // Resuming truncates the torn tail, and appended records land
        // cleanly after the committed prefix.
        let mut w = JournalWriter::resume(&path, j.committed_bytes).unwrap();
        w.append(&line(2, "rf", 0.35));
        drop(w);
        let j = Journal::read(&path).unwrap();
        assert_eq!(j.trials.len(), 2);
        assert_eq!(j.trials[1].loss, 0.35);
    }

    #[test]
    fn corrupt_middle_line_truncates_there() {
        let path = write_journal("mid.jsonl", &[line(1, "rf", 0.5)]);
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                use std::io::Write;
                f.write_all(b"{\"iter\": garbage\n")
            })
            .unwrap();
        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&line(3, "rf", 0.3));
        drop(w);
        let j = Journal::read(&path).unwrap();
        assert_eq!(j.trials.len(), 1, "records after corruption are suspect");
    }

    #[test]
    fn missing_header_is_an_error() {
        let dir = std::env::temp_dir().join("flaml-journal-reader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            Journal::read(&path),
            Err(JournalError::BadHeader(_))
        ));
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            Journal::read(&path),
            Err(JournalError::BadHeader(_))
        ));
    }

    #[test]
    fn wrong_schema_version_is_an_error() {
        let path = write_journal("v999.jsonl", &[]);
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":999",
            1,
        );
        assert_ne!(text, bumped, "header rewrite must hit the version field");
        std::fs::write(&path, bumped).unwrap();
        assert!(matches!(
            Journal::read(&path),
            Err(JournalError::SchemaVersion { found: 999, .. })
        ));
    }

    #[test]
    fn best_trial_ignores_failure_sentinels_and_breaks_ties_early() {
        let trials = vec![
            line(1, "rf", f64::INFINITY),
            line(2, "rf", 0.4),
            line(3, "lr", 0.4),
        ];
        let path = write_journal("best.jsonl", &trials);
        let j = Journal::read(&path).unwrap();
        assert_eq!(j.best_trial().unwrap().iter, 2, "earliest of the tie");
    }

    #[test]
    fn best_configs_picks_per_learner_minimum() {
        let trials = vec![
            line(1, "rf", 0.5),
            line(2, "lr", f64::INFINITY),
            line(3, "rf", 0.3),
            line(4, "lr", 0.6),
        ];
        let path = write_journal("configs.jsonl", &trials);
        let j = Journal::read(&path).unwrap();
        let best = j.best_configs();
        assert_eq!(
            best,
            vec![
                ("lr".to_string(), vec![4.0], 0.6),
                ("rf".to_string(), vec![3.0], 0.3),
            ]
        );
    }

    #[test]
    fn spent_budget_sums_every_attempt() {
        let path = write_journal("spent.jsonl", &[line(1, "rf", 0.5), line(2, "rf", 0.4)]);
        let j = Journal::read(&path).unwrap();
        assert!((j.spent_budget() - 1.5).abs() < 1e-12);
    }
}
