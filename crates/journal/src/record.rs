//! The journal's on-disk record schema (version 1).
//!
//! Every record is one line of compact JSON. Floats round-trip exactly:
//! the writer uses shortest-round-trip formatting and renders the
//! non-finite failure sentinels as `Infinity` / `-Infinity` / `NaN`
//! tokens, which the reader parses back bit-for-bit — a journaled loss of
//! `+inf` (a failed trial) survives the round trip.
//!
//! # Schema evolution
//!
//! [`SCHEMA_VERSION`] is bumped whenever a field changes meaning or a
//! required field is added. Readers accept only their own major version:
//! replay feeds journaled outcomes back into live search state, so a
//! misinterpreted field would silently corrupt a resumed run — refusing
//! an unknown version is the safe behaviour. Purely additive optional
//! fields (serde defaults) do not bump the version.

use flaml_exec::TrialEvent;
use serde::{Deserialize, Serialize};

/// Journal schema version written into every header.
pub const SCHEMA_VERSION: u32 = 1;

/// Identity of the dataset a journal was recorded against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Task kind (`"binary"` / `"multiclass"` / `"regression"`).
    pub task: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of feature columns.
    pub features: usize,
    /// Content fingerprint (FNV-1a over the dataset's values); resume
    /// refuses a journal whose fingerprint does not match the data it is
    /// asked to continue on.
    pub fingerprint: u64,
}

/// The first record of every journal: run configuration + dataset
/// fingerprint. Resume verifies these against the continuing run's
/// settings before replaying a single trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Schema version of every record in this file.
    pub schema_version: u32,
    /// Random seed of the run.
    pub seed: u64,
    /// Time budget in (wall or virtual) seconds.
    pub time_budget: f64,
    /// Trial cap, if any.
    pub max_trials: Option<usize>,
    /// Initial sample size for data subsampling.
    pub sample_size_init: usize,
    /// Whether data subsampling was enabled.
    pub sampling: bool,
    /// Learner-selection strategy (`"eci"` / `"round-robin"`).
    pub learner_selection: String,
    /// Resampling choice (`"auto"` / `"cv"` / `"holdout"`).
    pub resample: String,
    /// Metric optimized (empty = the task default).
    pub metric: String,
    /// Estimator roster, in order.
    pub estimators: Vec<String>,
    /// `"wall"` or `"virtual"` budget accounting.
    pub time_source: String,
    /// The dataset the run searched on.
    pub dataset: DatasetInfo,
}

/// One committed trial, as journaled (one JSONL line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialLine {
    /// 1-based trial index.
    pub iter: usize,
    /// Learner evaluated.
    pub learner: String,
    /// Configuration rendered as `name=value` pairs (human-readable;
    /// lossy).
    pub config: String,
    /// Natural-unit configuration values in parameter order (lossless).
    pub config_values: Vec<f64>,
    /// Sample size used.
    pub sample_size: usize,
    /// Final validation loss (may be `Infinity`, the failure sentinel).
    pub loss: f64,
    /// Final-attempt status name.
    pub status: String,
    /// Trial mode (`"search"` / `"sample-up"`).
    pub mode: String,
    /// Retry attempts consumed (0 = first attempt was final).
    pub attempts: usize,
    /// Budget cost charged per attempt, in charge order. Replay advances
    /// the budget clock by these one at a time, reproducing the live
    /// run's floating-point accumulation bit-for-bit.
    pub attempt_costs: Vec<f64>,
    /// Total budget cost of the trial (sum of `attempt_costs`, as summed
    /// by the live run).
    pub cost: f64,
    /// Budget elapsed when the trial committed (wall or virtual seconds).
    pub total_time: f64,
    /// Measured wall seconds, regardless of the budget clock.
    #[serde(default)]
    pub wall_secs: f64,
    /// Prepared-data cache hits during this trial's preparation.
    #[serde(default)]
    pub prepared_hits: usize,
    /// Prepared-data cache misses during this trial's preparation.
    #[serde(default)]
    pub prepared_misses: usize,
    /// Prepared-data cache entries evicted under the byte budget during
    /// this trial's preparation.
    #[serde(default)]
    pub prepared_evictions: usize,
    /// Bytes of dataset copies the zero-copy data plane avoided
    /// materializing for this trial.
    #[serde(default)]
    pub bytes_copied_saved: usize,
    /// Folds of this trial that continued boosting from a cached tree
    /// prefix.
    #[serde(default)]
    pub tree_cache_hits: usize,
    /// Cache-eligible folds of this trial that started from round zero.
    #[serde(default)]
    pub tree_cache_misses: usize,
    /// Trees served from cached prefixes instead of being refit, summed
    /// over folds.
    #[serde(default)]
    pub trees_saved: usize,
    /// The trial's base evaluation seed.
    pub seed: u64,
    /// Whether the trial improved the run's global best error.
    pub improved: bool,
    /// Global best error after this trial.
    pub best_loss: f64,
}

impl TrialLine {
    /// Builds a journal line from a committed terminal [`TrialEvent`] —
    /// one that carries both an observed error and full
    /// [`flaml_exec::TrialMeta`]. Returns `None` for any other event
    /// (started, retried, quarantine traffic, discarded speculation).
    pub fn from_event(event: &TrialEvent) -> Option<TrialLine> {
        let error = event.error?;
        let meta = event.meta.as_ref()?;
        Some(TrialLine {
            iter: event.job_id as usize,
            learner: event.learner.clone(),
            config: event.config.clone(),
            config_values: meta.config_values.clone(),
            sample_size: event.sample_size,
            loss: error,
            status: meta.status.clone(),
            mode: meta.mode.clone(),
            attempts: meta.attempts,
            attempt_costs: meta.attempt_costs.clone(),
            cost: event.cost.unwrap_or(0.0),
            total_time: meta.total_time,
            wall_secs: event.wall_secs.unwrap_or(0.0),
            prepared_hits: event.prepared_hits,
            prepared_misses: event.prepared_misses,
            prepared_evictions: event.prepared_evictions,
            bytes_copied_saved: event.bytes_copied_saved,
            tree_cache_hits: event.tree_cache_hits,
            tree_cache_misses: event.tree_cache_misses,
            trees_saved: event.trees_saved,
            seed: meta.seed,
            improved: meta.improved,
            best_loss: meta.best_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> TrialLine {
        TrialLine {
            iter: 3,
            learner: "lightgbm".into(),
            config: "trees=4, lr=0.1000".into(),
            config_values: vec![4.0, 0.1],
            sample_size: 500,
            loss: 0.125,
            status: "ok".into(),
            mode: "search".into(),
            attempts: 0,
            attempt_costs: vec![0.05],
            cost: 0.05,
            total_time: 0.2,
            wall_secs: 0.01,
            prepared_hits: 2,
            prepared_misses: 1,
            prepared_evictions: 0,
            bytes_copied_saved: 4096,
            tree_cache_hits: 1,
            tree_cache_misses: 0,
            trees_saved: 12,
            seed: 7,
            improved: true,
            best_loss: 0.125,
        }
    }

    #[test]
    fn trial_line_round_trips_through_json() {
        let l = line();
        let json = serde_json::to_string(&l).unwrap();
        let back: TrialLine = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn failure_sentinel_loss_round_trips() {
        let mut l = line();
        l.loss = f64::INFINITY;
        l.best_loss = f64::INFINITY;
        l.status = "panicked".into();
        let json = serde_json::to_string(&l).unwrap();
        assert!(json.contains("Infinity"));
        let back: TrialLine = serde_json::from_str(&json).unwrap();
        assert!(back.loss.is_infinite() && back.loss > 0.0);
        assert_eq!(l, back);
    }

    #[test]
    fn from_event_requires_error_and_meta() {
        use flaml_exec::{TrialEventKind, TrialMeta};
        let mut ev = TrialEvent::new(TrialEventKind::Finished);
        assert!(TrialLine::from_event(&ev).is_none(), "no error, no meta");
        ev.error = Some(0.5);
        assert!(TrialLine::from_event(&ev).is_none(), "no meta");
        ev.job_id = 9;
        ev.learner = "rf".into();
        ev.cost = Some(0.25);
        ev.prepared_hits = 3;
        ev.prepared_misses = 1;
        ev.prepared_evictions = 2;
        ev.bytes_copied_saved = 2048;
        ev.tree_cache_hits = 4;
        ev.tree_cache_misses = 1;
        ev.trees_saved = 96;
        ev.meta = Some(TrialMeta {
            mode: "search".into(),
            status: "ok".into(),
            attempts: 1,
            attempt_costs: vec![0.1, 0.15],
            total_time: 1.5,
            seed: 42,
            config_values: vec![1.0],
            improved: false,
            best_error: 0.4,
        });
        let l = TrialLine::from_event(&ev).expect("committed terminal event");
        assert_eq!(l.iter, 9);
        assert_eq!(l.learner, "rf");
        assert_eq!(l.attempts, 1);
        assert_eq!(l.attempt_costs, vec![0.1, 0.15]);
        assert_eq!(l.best_loss, 0.4);
        assert_eq!(l.prepared_hits, 3);
        assert_eq!(l.prepared_misses, 1);
        assert_eq!(l.prepared_evictions, 2);
        assert_eq!(l.bytes_copied_saved, 2048);
        assert_eq!(l.tree_cache_hits, 4);
        assert_eq!(l.tree_cache_misses, 1);
        assert_eq!(l.trees_saved, 96);
    }
}
