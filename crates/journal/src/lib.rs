//! Crash-safe trial journal: an append-only write-ahead log of AutoML
//! trials, plus the machinery to read it back for resume, replay and
//! warm-starting (the Rust counterpart of the Python FLAML's
//! `log_file_name` / `retrain_from_log` persistence).
//!
//! # Format
//!
//! A journal is a JSONL file: the first line is a [`JournalHeader`]
//! (schema version, run configuration fingerprint, dataset fingerprint),
//! every following line is one committed [`TrialLine`]. Records are
//! appended by a [`JournalWriter`] with **fsync-on-commit**: a record is
//! durable before the search proceeds past the trial it describes, so a
//! crash can lose at most the record being written when the process died.
//!
//! # Crash safety
//!
//! The reader ([`Journal::read`]) is *torn-tail tolerant*: a record
//! counts as committed only if it is newline-terminated and parses; at
//! the first corrupt or truncated line the reader stops and returns the
//! maximal committed prefix, never an error. A journal interrupted at any
//! byte therefore loses at most the one trial whose write was torn.
//!
//! # Consuming trial events
//!
//! The writer subscribes to a run as a [`flaml_exec::EventSink`]
//! consumer: [`JournalWriter::into_sink`] wraps it in a synchronous
//! callback sink that appends one record per committed terminal event
//! (the events carrying [`flaml_exec::TrialMeta`]). Fan the sink together
//! with any live telemetry sink via [`flaml_exec::EventSink::fanout`].

#![warn(missing_docs)]

mod discover;
mod reader;
mod record;
mod writer;

pub use discover::{discover, discover_with, DiscoveredJournal};
pub use reader::{Journal, JournalError};
pub use record::{DatasetInfo, JournalHeader, TrialLine, SCHEMA_VERSION};
pub use writer::{JournalWriter, SharedJournalWriter};
