//! Crash-safety and losslessness guarantees, tested exhaustively:
//!
//! - the torn-tail sweep truncates a journal at *every* byte offset of
//!   its last record and asserts the reader always recovers exactly the
//!   committed prefix (and that a resumed writer appends cleanly after
//!   any such crash point);
//! - the round-trip property drives pseudo-random [`TrialLine`]s —
//!   covering every status name, the `+inf` failure sentinel, non-finite
//!   and extreme floats, and `u64` seeds above 2^53 — through the
//!   vendored serde_json and back, requiring bit-exact recovery.

use flaml_journal::{
    DatasetInfo, Journal, JournalHeader, JournalWriter, TrialLine, SCHEMA_VERSION,
};

fn header() -> JournalHeader {
    JournalHeader {
        schema_version: SCHEMA_VERSION,
        seed: u64::MAX - 3,
        time_budget: 60.0,
        max_trials: Some(40),
        sample_size_init: 10_000,
        sampling: true,
        learner_selection: "eci".into(),
        resample: "auto".into(),
        metric: "roc_auc".into(),
        estimators: vec!["lightgbm".into(), "rf".into()],
        time_source: "virtual".into(),
        // Low bits set on purpose: a reader that carries the fingerprint
        // through an f64 would round them away.
        dataset: DatasetInfo {
            name: "adult-like".into(),
            task: "binary".into(),
            rows: 48_842,
            features: 14,
            fingerprint: 0x8000_0000_0000_0003,
        },
    }
}

/// A deterministic 64-bit generator (splitmix64) so the property sweep
/// needs no external randomness and reproduces exactly on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const STATUS_NAMES: [&str; 5] = ["ok", "failed", "timed-out", "panicked", "non-finite-loss"];

/// Losses exercising every shape a journal can carry: the `+inf` failure
/// sentinel, huge/tiny magnitudes, subnormals, negative zero, and NaN.
const EDGE_LOSSES: [f64; 9] = [
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::NAN,
    f64::MAX,
    f64::MIN_POSITIVE,
    5e-324, // smallest subnormal
    -0.0,
    0.1,
    1e300,
];

fn random_line(rng: &mut Rng, i: usize) -> TrialLine {
    let loss = if i < EDGE_LOSSES.len() {
        EDGE_LOSSES[i]
    } else {
        rng.f64_unit()
    };
    let attempts = (rng.next() % 3) as usize;
    let attempt_costs: Vec<f64> = (0..=attempts).map(|_| rng.f64_unit() * 10.0).collect();
    TrialLine {
        iter: i + 1,
        learner: ["lightgbm", "rf", "lr"][(rng.next() % 3) as usize].into(),
        config: "tree_num=4, leaf_num=4".into(),
        config_values: (0..(rng.next() % 6))
            .map(|_| rng.f64_unit() * 1e6)
            .collect(),
        sample_size: (rng.next() % 100_000) as usize,
        loss,
        status: STATUS_NAMES[i % STATUS_NAMES.len()].into(),
        mode: if rng.next().is_multiple_of(2) {
            "search"
        } else {
            "sample-up"
        }
        .into(),
        attempts,
        cost: attempt_costs.iter().sum(),
        attempt_costs,
        total_time: rng.f64_unit() * 1e4,
        wall_secs: rng.f64_unit(),
        prepared_hits: (rng.next() % 16) as usize,
        prepared_misses: (rng.next() % 16) as usize,
        prepared_evictions: (rng.next() % 8) as usize,
        bytes_copied_saved: (rng.next() % 1_000_000) as usize,
        tree_cache_hits: (rng.next() % 16) as usize,
        tree_cache_misses: (rng.next() % 16) as usize,
        trees_saved: (rng.next() % 10_000) as usize,
        // Seeds above 2^53 catch any f64 carrier in the JSON layer.
        seed: rng.next() | (1 << 63),
        improved: rng.next().is_multiple_of(2),
        best_loss: loss,
    }
}

/// Bit patterns of one line's float fields plus its exact seed.
type LineBits = (u64, u64, Vec<u64>, Vec<u64>, u64, u64, u64);

fn bits(lines: &[TrialLine]) -> Vec<LineBits> {
    lines
        .iter()
        .map(|l| {
            (
                l.loss.to_bits(),
                l.cost.to_bits(),
                l.config_values.iter().map(|v| v.to_bits()).collect(),
                l.attempt_costs.iter().map(|v| v.to_bits()).collect(),
                l.total_time.to_bits(),
                l.wall_secs.to_bits(),
                l.seed,
            )
        })
        .collect()
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("flaml-journal-crash-safety");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}.jsonl", std::process::id()))
}

#[test]
fn torn_tail_sweep_recovers_committed_prefix_at_every_byte() {
    let mut rng = Rng(11);
    let lines: Vec<TrialLine> = (0..3).map(|i| random_line(&mut rng, i)).collect();
    let path = scratch("sweep");
    let mut w = JournalWriter::create(&path, &header()).unwrap();
    for l in &lines {
        w.append(l);
    }
    drop(w);
    let full = std::fs::read(&path).unwrap();
    let intact = Journal::read(&path).unwrap();
    assert_eq!(intact.trials.len(), 3);
    assert_eq!(intact.committed_bytes, full.len() as u64);

    // The committed prefix before the last record: everything up to and
    // including the second trial's newline.
    let prefix = {
        let text = std::str::from_utf8(&full).unwrap();
        let mut seen = 0usize;
        let mut offset = 0usize;
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                seen += 1;
                if seen == 3 {
                    // header + 2 trials
                    offset = i + 1;
                    break;
                }
            }
        }
        offset
    };
    assert!(prefix > 0 && prefix < full.len());

    // Kill the write at every byte of the last record (from "nothing of
    // it written" through "all but the final newline"): the reader must
    // recover exactly the two committed trials every time, and a resumed
    // writer must append cleanly after the truncation.
    for cut in prefix..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let j = Journal::read(&path)
            .unwrap_or_else(|e| panic!("cut at byte {cut} must still read: {e}"));
        assert_eq!(j.trials.len(), 2, "cut at byte {cut}");
        assert_eq!(j.committed_bytes, prefix as u64, "cut at byte {cut}");
        assert_eq!(bits(&j.trials), bits(&lines[..2]), "cut at byte {cut}");

        let mut w = JournalWriter::resume(&path, j.committed_bytes).unwrap();
        w.append(&lines[2]);
        drop(w);
        let healed = Journal::read(&path).unwrap();
        assert_eq!(bits(&healed.trials), bits(&lines), "heal after cut {cut}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trial_lines_round_trip_bit_exactly() {
    let mut rng = Rng(7);
    for i in 0..200 {
        let line = random_line(&mut rng, i);
        let json = serde_json::to_string(&line).unwrap();
        let back: TrialLine = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("case {i} must parse back ({json}): {e}"));
        assert_eq!(
            bits(std::slice::from_ref(&line)),
            bits(std::slice::from_ref(&back)),
            "case {i}: {json}"
        );
        let (b, l) = (&back, &line);
        assert!(
            b.iter == l.iter
                && b.learner == l.learner
                && b.config == l.config
                && b.sample_size == l.sample_size
                && b.status == l.status
                && b.mode == l.mode
                && b.attempts == l.attempts
                && b.improved == l.improved
                && b.best_loss.to_bits() == l.best_loss.to_bits(),
            "case {i}: non-float fields must survive ({json})"
        );
        // Serialization must be a fixed point: render -> parse -> render
        // yields the same bytes (NaN losses compare equal this way too).
        assert_eq!(json, serde_json::to_string(&back).unwrap(), "case {i}");
    }
}

#[test]
fn header_round_trips_and_survives_disk() {
    let h = header();
    let json = serde_json::to_string(&h).unwrap();
    let back: JournalHeader = serde_json::from_str(&json).unwrap();
    assert_eq!(h, back);
    assert_eq!(
        back.dataset.fingerprint, 0x8000_0000_0000_0003,
        "u64 fingerprints above 2^53 must not pass through an f64"
    );
    assert_eq!(back.seed, u64::MAX - 3);

    let path = scratch("header");
    drop(JournalWriter::create(&path, &h).unwrap());
    let j = Journal::read(&path).unwrap();
    assert_eq!(j.header, h);
    assert!(j.trials.is_empty());
    let _ = std::fs::remove_file(&path);
}
