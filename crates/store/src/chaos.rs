//! Seeded disk-fault injection: [`ChaosStorage`] wraps any [`Storage`]
//! and injects short writes, failed fsyncs, `ENOSPC`, and crash-points
//! as pure functions of `(seed, op-index)` — the storage-layer twin of
//! the exec layer's `FaultPlan`.
//!
//! Every *mutating* operation the wrapper forwards (create, append,
//! each `write_all`, each `sync_data`, truncate, rename, remove, mkdir,
//! dir fsync) consumes exactly one op index, in issue order. Whether an
//! op is faulted depends only on the plan and that index — never on
//! wall time or scheduling — so a failing chaos run is replayed exactly
//! by re-running with the same seed, and a crashpoint sweep can
//! enumerate op indices from a clean run and crash at each one in turn.
//! Read-side ops (read/scan/stat/exists) are never faulted and consume
//! no index, except after a simulated crash, when *everything* fails:
//! a dead process performs no further I/O of any kind.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::StorageError;
use crate::{Storage, StorageFile};

/// A fault the plan injects into one storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// A `write_all` persists only a deterministic prefix of its buffer,
    /// then fails. Non-write ops roll this as "no fault".
    ShortWrite,
    /// An `fsync`/`fdatasync` reports failure (durability of earlier
    /// bytes is now unknown). Non-sync ops roll this as "no fault".
    SyncFail,
    /// The op fails with `ENOSPC`.
    NoSpace,
    /// The process "dies" at this op: a write persists a torn prefix
    /// first, and every subsequent op on the same storage fails.
    Crash,
}

/// A seeded, deterministic disk-fault plan.
///
/// Build with [`IoFaultPlan::new`] plus the rate setters,
/// [`IoFaultPlan::uniform`] / [`IoFaultPlan::parse`] for the
/// `--io-chaos seed:rate` form, or [`IoFaultPlan::crash_at`] to place a
/// single crash-point for a crashpoint sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultPlan {
    seed: u64,
    short_write_rate: f64,
    sync_fail_rate: f64,
    enospc_rate: f64,
    crash_at: Option<u64>,
}

/// SplitMix64 finalizer — same mix as the exec layer's `FaultPlan`, so
/// both chaos planes share one well-tested hashing idiom.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl IoFaultPlan {
    /// A plan with the given seed, all rates zero, and no crash-point.
    pub fn new(seed: u64) -> IoFaultPlan {
        IoFaultPlan {
            seed,
            short_write_rate: 0.0,
            sync_fail_rate: 0.0,
            enospc_rate: 0.0,
            crash_at: None,
        }
    }

    /// A plan injecting faults at `rate` total probability per op, split
    /// evenly across short writes, failed fsyncs, and `ENOSPC` (the
    /// `--io-chaos seed:rate` semantics). No crash-point.
    pub fn uniform(seed: u64, rate: f64) -> IoFaultPlan {
        let each = rate.clamp(0.0, 1.0) / 3.0;
        IoFaultPlan {
            seed,
            short_write_rate: each,
            sync_fail_rate: each,
            enospc_rate: each,
            crash_at: None,
        }
    }

    /// Parses the `seed:rate` form (e.g. `"7:0.05"`).
    pub fn parse(s: &str) -> Option<IoFaultPlan> {
        let (seed, rate) = s.split_once(':')?;
        let seed: u64 = seed.trim().parse().ok()?;
        let rate: f64 = rate.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        Some(IoFaultPlan::uniform(seed, rate))
    }

    /// Sets the per-op short-write probability.
    #[must_use]
    pub fn short_writes(mut self, rate: f64) -> IoFaultPlan {
        self.short_write_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-op fsync-failure probability.
    #[must_use]
    pub fn sync_fails(mut self, rate: f64) -> IoFaultPlan {
        self.sync_fail_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-op `ENOSPC` probability.
    #[must_use]
    pub fn enospc(mut self, rate: f64) -> IoFaultPlan {
        self.enospc_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Places a deterministic crash at op index `k` (0-based). The op at
    /// index `k` fails as a crash (writes persist a torn prefix first)
    /// and every later op fails [`StorageError::Crashed`].
    #[must_use]
    pub fn crash_at(mut self, k: u64) -> IoFaultPlan {
        self.crash_at = Some(k);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total per-op random fault probability (crash-points excluded —
    /// they are scheduled, not rolled).
    pub fn total_rate(&self) -> f64 {
        (self.short_write_rate + self.sync_fail_rate + self.enospc_rate).min(1.0)
    }

    /// Decides the fault (if any) for op index `op`. Pure: depends only
    /// on the plan and its argument. The scheduled crash-point takes
    /// precedence over rolled faults.
    pub fn decide(&self, op: u64) -> Option<IoFault> {
        if self.crash_at == Some(op) {
            return Some(IoFault::Crash);
        }
        let h = mix(self.seed ^ mix(op.wrapping_mul(0xA24B_AED4_963E_E407)));
        // 53 uniform bits -> [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.short_write_rate {
            Some(IoFault::ShortWrite)
        } else if u < self.short_write_rate + self.sync_fail_rate {
            Some(IoFault::SyncFail)
        } else if u < self.short_write_rate + self.sync_fail_rate + self.enospc_rate {
            Some(IoFault::NoSpace)
        } else {
            None
        }
    }

    /// The torn prefix length for a short write or crash at op `op` of a
    /// `total`-byte buffer: deterministic, in `[0, total)`.
    pub fn torn_len(&self, op: u64, total: usize) -> usize {
        if total == 0 {
            return 0;
        }
        (mix(self.seed ^ mix(op) ^ 0x70_4E) % total as u64) as usize
    }
}

/// Shared mutable state of one [`ChaosStorage`]: the op counter and
/// crash latch live behind an `Arc` so file handles created by the
/// wrapper keep consuming the same op sequence.
#[derive(Debug)]
struct ChaosState {
    plan: IoFaultPlan,
    ops: AtomicU64,
    crashed: AtomicBool,
}

impl ChaosState {
    /// Claims the next op index and returns the fault decided for it,
    /// honoring the crash latch.
    fn next_op(&self, path: &Path) -> Result<(u64, Option<IoFault>), StorageError> {
        self.check_alive(path)?;
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let fault = self.plan.decide(op);
        if fault == Some(IoFault::Crash) {
            self.crashed.store(true, Ordering::SeqCst);
        }
        Ok((op, fault))
    }

    fn check_alive(&self, _path: &Path) -> Result<(), StorageError> {
        if self.crashed.load(Ordering::SeqCst) {
            Err(StorageError::Crashed {
                op_index: self.plan.crash_at.unwrap_or(0),
            })
        } else {
            Ok(())
        }
    }

    fn fault_err(&self, fault: IoFault, op: u64, path: &Path) -> StorageError {
        match fault {
            IoFault::NoSpace => StorageError::NoSpace {
                path: path.to_path_buf(),
                injected: true,
            },
            IoFault::SyncFail => StorageError::SyncFailed {
                path: path.to_path_buf(),
                detail: format!("injected sync failure at op {op}"),
                injected: true,
            },
            IoFault::Crash => StorageError::Crashed { op_index: op },
            IoFault::ShortWrite => StorageError::TornWrite {
                path: path.to_path_buf(),
                written: 0,
                requested: 0,
            },
        }
    }
}

/// A [`Storage`] wrapper that injects the faults its [`IoFaultPlan`]
/// schedules. Cloning shares the op counter and crash latch, so a
/// single plan governs every component holding a handle to the same
/// chaos instance.
#[derive(Clone)]
pub struct ChaosStorage {
    inner: Arc<dyn Storage>,
    state: Arc<ChaosState>,
}

impl fmt::Debug for ChaosStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosStorage")
            .field("plan", &self.state.plan)
            .field("ops", &self.state.ops.load(Ordering::SeqCst))
            .field("crashed", &self.state.crashed.load(Ordering::SeqCst))
            .finish()
    }
}

impl ChaosStorage {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn Storage>, plan: IoFaultPlan) -> ChaosStorage {
        ChaosStorage {
            inner,
            state: Arc::new(ChaosState {
                plan,
                ops: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// Number of faultable (mutating) ops issued so far — a clean run's
    /// final count is the crashpoint sweep's enumeration bound.
    pub fn ops_issued(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Whether the simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// The plan this wrapper injects.
    pub fn plan(&self) -> IoFaultPlan {
        self.state.plan
    }

    /// Faults one non-write mutating op: claims an index, maps
    /// inapplicable faults (short writes need a buffer) to "no fault".
    fn gate(&self, path: &Path) -> Result<(), StorageError> {
        let (op, fault) = self.state.next_op(path)?;
        match fault {
            None | Some(IoFault::ShortWrite) | Some(IoFault::SyncFail) => Ok(()),
            Some(f) => Err(self.state.fault_err(f, op, path)),
        }
    }
}

/// A file handle that routes its writes/syncs through the shared chaos
/// state.
#[derive(Debug)]
struct ChaosFile {
    inner: Box<dyn StorageFile>,
    state: Arc<ChaosState>,
    path: PathBuf,
}

impl StorageFile for ChaosFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError> {
        let (op, fault) = self.state.next_op(&self.path)?;
        match fault {
            None | Some(IoFault::SyncFail) => self.inner.write_all(buf),
            Some(IoFault::NoSpace) => Err(StorageError::NoSpace {
                path: self.path.clone(),
                injected: true,
            }),
            Some(IoFault::ShortWrite) => {
                let torn = self.state.plan.torn_len(op, buf.len());
                self.inner.write_all(&buf[..torn])?;
                Err(StorageError::TornWrite {
                    path: self.path.clone(),
                    written: torn,
                    requested: buf.len(),
                })
            }
            Some(IoFault::Crash) => {
                // The process dies mid-write(2): a torn prefix lands on
                // disk, nothing after it ever does.
                let torn = self.state.plan.torn_len(op, buf.len());
                let _ = self.inner.write_all(&buf[..torn]);
                Err(StorageError::Crashed { op_index: op })
            }
        }
    }

    fn sync_data(&mut self) -> Result<(), StorageError> {
        let (op, fault) = self.state.next_op(&self.path)?;
        match fault {
            None | Some(IoFault::ShortWrite) => self.inner.sync_data(),
            Some(IoFault::NoSpace) => Err(StorageError::NoSpace {
                path: self.path.clone(),
                injected: true,
            }),
            Some(IoFault::SyncFail) => Err(StorageError::SyncFailed {
                path: self.path.clone(),
                detail: format!("injected sync failure at op {op}"),
                injected: true,
            }),
            Some(IoFault::Crash) => Err(StorageError::Crashed { op_index: op }),
        }
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let (op, fault) = self.state.next_op(&self.path)?;
        match fault {
            None | Some(IoFault::ShortWrite) | Some(IoFault::SyncFail) => self.inner.truncate(len),
            Some(f) => Err(self.state.fault_err(f, op, &self.path)),
        }
    }
}

impl Storage for ChaosStorage {
    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        self.gate(path)?;
        let inner = self.inner.create(path)?;
        Ok(Box::new(ChaosFile {
            inner,
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn append(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        self.gate(path)?;
        let inner = self.inner.append(path)?;
        Ok(Box::new(ChaosFile {
            inner,
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        self.state.check_alive(path)?;
        self.inner.read(path)
    }

    fn file_len(&self, path: &Path) -> Result<u64, StorageError> {
        self.state.check_alive(path)?;
        self.inner.file_len(path)
    }

    fn truncate_file(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        self.gate(path)?;
        self.inner.truncate_file(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError> {
        self.gate(from)?;
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> Result<(), StorageError> {
        self.gate(path)?;
        self.inner.remove(path)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), StorageError> {
        self.gate(dir)?;
        self.inner.create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StorageError> {
        let (op, fault) = self.state.next_op(dir)?;
        match fault {
            None | Some(IoFault::ShortWrite) => self.inner.sync_dir(dir),
            Some(f) => Err(self.state.fault_err(f, op, dir)),
        }
    }

    fn scan(&self, dir: &Path) -> Result<Vec<PathBuf>, StorageError> {
        self.state.check_alive(dir)?;
        self.inner.scan(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.state.crashed.load(Ordering::SeqCst) && self.inner.exists(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        !self.state.crashed.load(Ordering::SeqCst) && self.inner.is_dir(path)
    }
}
