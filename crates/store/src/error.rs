//! Typed errors of the durable storage layer.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a storage operation failed.
///
/// Callers branch on the *shape* of the failure, not its message:
/// [`StorageError::NoSpace`] means the device is (really or by
/// injection) out of room and retrying is pointless — the typical
/// mapping is a `507 Insufficient Storage`; [`StorageError::Crashed`]
/// is the chaos layer's simulated process death and only ever appears
/// in tests; everything else is an ordinary I/O failure tagged with the
/// operation and path that raised it.
#[derive(Debug)]
pub enum StorageError {
    /// A filesystem operation failed.
    Io {
        /// Operation name (`"create"`, `"rename"`, `"sync-dir"`, …).
        op: &'static str,
        /// Path the operation addressed.
        path: PathBuf,
        /// Underlying error.
        source: io::Error,
    },
    /// The device is out of space (`ENOSPC`, real or injected).
    NoSpace {
        /// Path whose write hit the full device.
        path: PathBuf,
        /// Whether a chaos plan injected this failure.
        injected: bool,
    },
    /// An `fsync`/`fdatasync` failed: previously written bytes may or
    /// may not be durable, so the caller must treat the file as suspect.
    SyncFailed {
        /// Path of the file whose sync failed.
        path: PathBuf,
        /// Underlying detail.
        detail: String,
        /// Whether a chaos plan injected this failure.
        injected: bool,
    },
    /// A write persisted only a prefix of its buffer before failing —
    /// the on-disk tail is torn. Always injected (real kernels surface
    /// short writes as errors from `write_all` with unspecified partial
    /// state; the chaos layer makes that state explicit).
    TornWrite {
        /// Path of the torn file.
        path: PathBuf,
        /// Bytes actually persisted.
        written: usize,
        /// Bytes the caller asked for.
        requested: usize,
    },
    /// The chaos layer's simulated crash: the process "died" at this
    /// operation index. Every later operation on the same storage also
    /// fails with this, exactly as a dead process performs no further
    /// I/O.
    Crashed {
        /// Index of the operation at which the simulated crash fired.
        op_index: u64,
    },
}

impl StorageError {
    /// Whether this failure means the device is out of space.
    pub fn is_no_space(&self) -> bool {
        matches!(self, StorageError::NoSpace { .. })
    }

    /// Whether this is the chaos layer's simulated crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, StorageError::Crashed { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, path, source } => {
                write!(f, "storage {op} failed at {}: {source}", path.display())
            }
            StorageError::NoSpace { path, injected } => write!(
                f,
                "no space left on device at {}{}",
                path.display(),
                if *injected { " (injected)" } else { "" }
            ),
            StorageError::SyncFailed {
                path,
                detail,
                injected,
            } => write!(
                f,
                "fsync failed at {}: {detail}{}",
                path.display(),
                if *injected { " (injected)" } else { "" }
            ),
            StorageError::TornWrite {
                path,
                written,
                requested,
            } => write!(
                f,
                "torn write at {}: {written} of {requested} bytes persisted (injected)",
                path.display()
            ),
            StorageError::Crashed { op_index } => {
                write!(f, "simulated crash at storage op {op_index}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> io::Error {
        let kind = match &e {
            StorageError::Io { source, .. } => source.kind(),
            _ => io::ErrorKind::Other,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// Whether an [`io::Error`] is `ENOSPC` (matched on the raw OS code so
/// it works on every toolchain; `ErrorKind::StorageFull` is newer than
/// some supported compilers).
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28)
}
