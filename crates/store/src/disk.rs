//! Production storage: plain filesystem I/O with `ENOSPC` detection.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::error::{is_enospc, StorageError};
use crate::{Storage, StorageFile};

/// The production [`Storage`]: real files, real fsyncs. The only value
/// it adds over calling `std::fs` directly is uniform error typing —
/// every failure is tagged with the operation and path, and `ENOSPC`
/// is lifted into [`StorageError::NoSpace`] so callers can map it to a
/// structured "out of space" response instead of a generic 500.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStorage;

fn io_err(op: &'static str, path: &Path, source: io::Error) -> StorageError {
    if is_enospc(&source) {
        StorageError::NoSpace {
            path: path.to_path_buf(),
            injected: false,
        }
    } else {
        StorageError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

/// A [`StorageFile`] backed by a real [`File`].
#[derive(Debug)]
pub struct DiskFile {
    file: File,
    path: PathBuf,
}

impl StorageFile for DiskFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError> {
        self.file
            .write_all(buf)
            .map_err(|e| io_err("write", &self.path, e))
    }

    fn sync_data(&mut self) -> Result<(), StorageError> {
        self.file.sync_data().map_err(|e| {
            if is_enospc(&e) {
                StorageError::NoSpace {
                    path: self.path.clone(),
                    injected: false,
                }
            } else {
                StorageError::SyncFailed {
                    path: self.path.clone(),
                    detail: e.to_string(),
                    injected: false,
                }
            }
        })
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.file
            .set_len(len)
            .map_err(|e| io_err("truncate", &self.path, e))
    }
}

impl Storage for DiskStorage {
    fn mmap_source(&self, path: &Path) -> Option<std::path::PathBuf> {
        Some(path.to_path_buf())
    }

    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        let file = File::create(path).map_err(|e| io_err("create", path, e))?;
        Ok(Box::new(DiskFile {
            file,
            path: path.to_path_buf(),
        }))
    }

    fn append(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err("append", path, e))?;
        Ok(Box::new(DiskFile {
            file,
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        fs::read(path).map_err(|e| io_err("read", path, e))
    }

    fn file_len(&self, path: &Path) -> Result<u64, StorageError> {
        fs::metadata(path)
            .map(|m| m.len())
            .map_err(|e| io_err("stat", path, e))
    }

    fn truncate_file(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open-truncate", path, e))?;
        file.set_len(len).map_err(|e| io_err("truncate", path, e))?;
        file.sync_data().map_err(|e| StorageError::SyncFailed {
            path: path.to_path_buf(),
            detail: e.to_string(),
            injected: false,
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError> {
        fs::rename(from, to).map_err(|e| io_err("rename", from, e))
    }

    fn remove(&self, path: &Path) -> Result<(), StorageError> {
        fs::remove_file(path).map_err(|e| io_err("remove", path, e))
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), StorageError> {
        fs::create_dir_all(dir).map_err(|e| io_err("mkdir", dir, e))
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StorageError> {
        // Durability of a rename requires fsyncing the parent directory;
        // on platforms where directories cannot be opened for sync this
        // degrades to a no-op error we surface rather than hide.
        let file = File::open(dir).map_err(|e| io_err("sync-dir", dir, e))?;
        file.sync_all().map_err(|e| StorageError::SyncFailed {
            path: dir.to_path_buf(),
            detail: e.to_string(),
            injected: false,
        })
    }

    fn scan(&self, dir: &Path) -> Result<Vec<PathBuf>, StorageError> {
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let rd = fs::read_dir(dir).map_err(|e| io_err("scan", dir, e))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| io_err("scan", dir, e))?;
            out.push(entry.path());
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }
}
