//! flaml-store: the durable storage layer of the FLAML reproduction.
//!
//! Everything the stack persists — write-ahead journals, request
//! sidecars, completion markers, compiled-model artifacts, bench
//! reports — goes through one small [`Storage`] trait instead of ad-hoc
//! `std::fs` calls. That buys three things:
//!
//! 1. **A single atomic-publish protocol.** [`atomic_write_file`]
//!    implements temp file → write → fsync → rename → parent-dir fsync,
//!    so every multi-byte publish in the stack is all-or-nothing: a
//!    crash at any instruction leaves either the old file, no file, or
//!    a stale `*.tmp` that recovery sweeps away — never a torn final
//!    name.
//! 2. **Typed failures.** [`StorageError`] distinguishes `ENOSPC`
//!    ([`StorageError::NoSpace`]), failed fsyncs, torn writes, and
//!    simulated crashes, so the service layer can answer a structured
//!    `507` instead of a generic `500` and telemetry can count fault
//!    classes separately.
//! 3. **Deterministic disk chaos.** [`ChaosStorage`] wraps any storage
//!    with a seeded [`IoFaultPlan`] whose decisions are pure functions
//!    of `(seed, op-index)` — the storage-layer mirror of the exec
//!    layer's `FaultPlan` — so crashpoint sweeps can enumerate every
//!    injected I/O op of a run and replay a crash at each one.
//!
//! The crate is std-only and dependency-free by design: it sits below
//! every other crate in the workspace.

#![warn(missing_docs)]

mod chaos;
mod disk;
mod error;

pub use chaos::{ChaosStorage, IoFault, IoFaultPlan};
pub use disk::DiskStorage;
pub use error::{is_enospc, StorageError};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An open writable file. Writes are buffered by the OS until
/// [`StorageFile::sync_data`]; the durability contract of every caller
/// is "bytes before the last successful sync are on disk".
pub trait StorageFile: Send + std::fmt::Debug {
    /// Writes the whole buffer (or fails, possibly having persisted a
    /// prefix — see [`StorageError::TornWrite`]).
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError>;
    /// Flushes file data to the device (`fdatasync`).
    fn sync_data(&mut self) -> Result<(), StorageError>;
    /// Truncates the file to `len` bytes (drops a torn tail).
    fn truncate(&mut self, len: u64) -> Result<(), StorageError>;
}

/// The file operations the stack actually uses, abstracted so a chaos
/// wrapper can inject faults underneath any component. Implementations
/// must be shareable across threads ([`Send`] + [`Sync`]) because one
/// storage instance backs the whole server.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError>;
    /// Opens an existing file for appending.
    fn append(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError>;
    /// Length of a file in bytes.
    fn file_len(&self, path: &Path) -> Result<u64, StorageError>;
    /// Truncates the file at `path` to `len` bytes and syncs it —
    /// the journal's resume step (drop everything past the committed
    /// prefix) in one durable operation.
    fn truncate_file(&self, path: &Path, len: u64) -> Result<(), StorageError>;
    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> Result<(), StorageError>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), StorageError>;
    /// Fsyncs a directory, making renames within it durable.
    fn sync_dir(&self, dir: &Path) -> Result<(), StorageError>;
    /// Entries of a directory, sorted by path; a missing directory
    /// scans as empty.
    fn scan(&self, dir: &Path) -> Result<Vec<PathBuf>, StorageError>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Whether a path is a directory.
    fn is_dir(&self, path: &Path) -> bool;
    /// The real filesystem path behind `path`, if this storage is plain
    /// disk and the file may be memory-mapped directly. Fault-injecting
    /// and virtual storages return `None` (the default): a mapping
    /// would bypass their interception, so callers must fall back to
    /// [`Storage::read`], which stays under fault control.
    fn mmap_source(&self, path: &Path) -> Option<PathBuf> {
        let _ = path;
        None
    }
}

/// The production storage as a shareable handle.
pub fn disk() -> Arc<dyn Storage> {
    Arc::new(DiskStorage)
}

/// Process-wide nonce for temp-file names. A counter (not randomness)
/// so chaos runs stay deterministic: op sequences depend only on the
/// order of storage calls, never on entropy.
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// The temp-file path [`atomic_write_file`] writes before renaming over
/// `path`: `.{filename}.{nonce}.tmp` in the same directory (rename must
/// not cross filesystems).
fn tmp_path_for(path: &Path) -> PathBuf {
    let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    path.with_file_name(format!(".{name}.{nonce}.tmp"))
}

/// Whether a directory entry is a stale temp left by an interrupted
/// [`atomic_write_file`] — recovery deletes these on sight.
pub fn is_stale_tmp(path: &Path) -> bool {
    match path.file_name().and_then(|n| n.to_str()) {
        Some(name) => name.starts_with('.') && name.ends_with(".tmp"),
        None => false,
    }
}

/// Atomically publishes `bytes` at `path`: write a same-directory temp
/// file, fsync it, rename it over `path`, fsync the parent directory.
/// A crash at any step leaves either the previous contents of `path`
/// (or its absence) plus at most a stale temp that [`is_stale_tmp`]
/// identifies — never a torn file under the final name. On failure the
/// temp is best-effort removed.
pub fn atomic_write_file(
    storage: &dyn Storage,
    path: &Path,
    bytes: &[u8],
) -> Result<(), StorageError> {
    let tmp = tmp_path_for(path);
    let publish = (|| {
        let mut file = storage.create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        drop(file);
        storage.rename(&tmp, path)
    })();
    if let Err(e) = publish {
        // Clean up the temp if we can; the original error is what the
        // caller needs to see either way.
        let _ = storage.remove(&tmp);
        return Err(e);
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            storage.sync_dir(parent)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flaml-store-{tag}-{}",
            TMP_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn atomic_write_publishes_and_overwrites() {
        let dir = scratch("atomic");
        let path = dir.join("out.json");
        let disk = DiskStorage;
        atomic_write_file(&disk, &path, b"first").expect("publish");
        assert_eq!(fs::read(&path).expect("read"), b"first");
        atomic_write_file(&disk, &path, b"second, longer").expect("republish");
        assert_eq!(fs::read(&path).expect("read"), b"second, longer");
        // No temp debris.
        let leftovers: Vec<_> = disk
            .scan(&dir)
            .expect("scan")
            .into_iter()
            .filter(|p| is_stale_tmp(p))
            .collect();
        assert!(leftovers.is_empty(), "stale temps: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_storage_round_trips_and_scans_sorted() {
        let dir = scratch("disk");
        let disk = DiskStorage;
        for name in ["b.txt", "a.txt", "c.txt"] {
            let mut f = disk.create(&dir.join(name)).expect("create");
            f.write_all(name.as_bytes()).expect("write");
            f.sync_data().expect("sync");
        }
        let names: Vec<_> = disk
            .scan(&dir)
            .expect("scan")
            .into_iter()
            .map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert_eq!(
            names,
            vec![
                Some("a.txt".to_string()),
                Some("b.txt".to_string()),
                Some("c.txt".to_string())
            ]
        );
        assert_eq!(disk.read(&dir.join("a.txt")).expect("read"), b"a.txt");
        assert_eq!(disk.file_len(&dir.join("a.txt")).expect("len"), 5);
        assert!(disk.scan(&dir.join("missing")).expect("scan").is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_file_drops_the_tail() {
        let dir = scratch("trunc");
        let disk = DiskStorage;
        let path = dir.join("j.jsonl");
        let mut f = disk.create(&path).expect("create");
        f.write_all(b"committed\ntorn-tai").expect("write");
        f.sync_data().expect("sync");
        drop(f);
        disk.truncate_file(&path, 10).expect("truncate");
        assert_eq!(disk.read(&path).expect("read"), b"committed\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_maps_to_no_space() {
        // /dev/full returns ENOSPC on write on Linux; skip elsewhere.
        let full = Path::new("/dev/full");
        if !full.exists() {
            return;
        }
        let disk = DiskStorage;
        let mut f = match disk.append(full) {
            Ok(f) => f,
            Err(_) => return,
        };
        let err = f.write_all(b"x").expect_err("write to /dev/full fails");
        assert!(err.is_no_space(), "unexpected error: {err}");
    }

    #[test]
    fn chaos_decide_is_deterministic_and_rate_accurate() {
        let plan = IoFaultPlan::uniform(42, 0.3);
        let first: Vec<_> = (0..2000).map(|op| plan.decide(op)).collect();
        let second: Vec<_> = (0..2000).map(|op| plan.decide(op)).collect();
        assert_eq!(first, second);
        let faults = first.iter().filter(|f| f.is_some()).count();
        assert!((450..=750).contains(&faults), "{faults}/2000 faults");
    }

    #[test]
    fn chaos_parse_round_trips() {
        let plan = IoFaultPlan::parse("7:0.3").expect("valid spec");
        assert_eq!(plan.seed(), 7);
        assert!((plan.total_rate() - 0.3).abs() < 1e-12);
        assert!(IoFaultPlan::parse("nope").is_none());
        assert!(IoFaultPlan::parse("1:1.5").is_none());
        assert!(IoFaultPlan::parse("1:-0.1").is_none());
    }

    #[test]
    fn chaos_crash_point_tears_the_write_and_latches() {
        let dir = scratch("crash");
        let path = dir.join("file.bin");
        // Fault-free run to count ops: create + write + sync = 3.
        let clean = ChaosStorage::new(disk(), IoFaultPlan::new(1));
        let mut f = clean.create(&path).expect("create");
        f.write_all(b"hello world").expect("write");
        f.sync_data().expect("sync");
        drop(f);
        assert_eq!(clean.ops_issued(), 3);

        // Crash at the write (op 1): a strict prefix lands on disk,
        // everything afterwards fails, including reads.
        let chaos = ChaosStorage::new(disk(), IoFaultPlan::new(1).crash_at(1));
        let mut f = chaos.create(&path).expect("create survives");
        let err = f.write_all(b"hello world").expect_err("write crashes");
        assert!(err.is_crash());
        let on_disk = fs::read(&path).expect("read outside chaos");
        assert!(on_disk.len() < b"hello world".len());
        assert_eq!(&b"hello world"[..on_disk.len()], &on_disk[..]);
        assert!(chaos.crashed());
        assert!(f.sync_data().expect_err("dead").is_crash());
        assert!(chaos.read(&path).expect_err("dead").is_crash());
        assert!(!chaos.exists(&path));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_injected_enospc_is_typed() {
        let dir = scratch("enospc");
        let chaos = ChaosStorage::new(disk(), IoFaultPlan::new(9).enospc(1.0));
        let err = chaos
            .create(&dir.join("x"))
            .expect_err("every op hits ENOSPC");
        assert!(err.is_no_space());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_short_write_persists_a_prefix() {
        let dir = scratch("short");
        let path = dir.join("x");
        let chaos = ChaosStorage::new(disk(), IoFaultPlan::new(3).short_writes(1.0));
        // create consumes op 0 (short-write inapplicable -> no fault).
        let mut f = chaos.create(&path).expect("create");
        let payload = vec![0xAB; 256];
        let err = f.write_all(&payload).expect_err("short write");
        match err {
            StorageError::TornWrite {
                written, requested, ..
            } => {
                assert_eq!(requested, 256);
                assert!(written < 256);
                assert_eq!(fs::read(&path).expect("read").len(), written);
            }
            other => panic!("expected TornWrite, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_under_crash_never_tears_the_final_name() {
        let dir = scratch("atomic-crash");
        let path = dir.join("artifact.json");
        let payload = b"{\"model\":\"payload-of-known-bytes\"}";
        // Count ops in a clean publish.
        let clean = ChaosStorage::new(disk(), IoFaultPlan::new(5));
        atomic_write_file(&clean, &path, payload).expect("clean publish");
        let total = clean.ops_issued();
        assert!(total >= 4, "create+write+sync+rename+dirsync, got {total}");

        for k in 0..total {
            let dir_k = scratch(&format!("atomic-crash-{k}"));
            let path_k = dir_k.join("artifact.json");
            let chaos = ChaosStorage::new(disk(), IoFaultPlan::new(5).crash_at(k));
            let res = atomic_write_file(&chaos, &path_k, payload);
            let disk = DiskStorage;
            match res {
                Ok(()) => {
                    assert_eq!(disk.read(&path_k).expect("read"), payload);
                }
                Err(e) => {
                    assert!(e.is_crash(), "crash expected at op {k}, got {e}");
                    // The final name either does not exist or holds the
                    // complete payload — never a torn file.
                    if disk.exists(&path_k) {
                        assert_eq!(
                            disk.read(&path_k).expect("read"),
                            payload,
                            "torn publish at op {k}"
                        );
                    }
                    // Debris is only ever a stale temp, which recovery sweeps.
                    for entry in disk.scan(&dir_k).expect("scan") {
                        if entry != path_k {
                            assert!(is_stale_tmp(&entry), "unexpected debris {entry:?}");
                        }
                    }
                }
            }
            let _ = fs::remove_dir_all(&dir_k);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_failure_cleans_its_temp() {
        let dir = scratch("cleanup");
        let path = dir.join("out.json");
        // Fail the data fsync; unlike a crash, the storage stays alive,
        // so the helper must remove its temp before returning the error.
        let chaos = ChaosStorage::new(disk(), IoFaultPlan::new(0).sync_fails(1.0));
        let err = atomic_write_file(&chaos, &path, b"data").expect_err("sync fails");
        assert!(matches!(err, StorageError::SyncFailed { .. }));
        let disk = DiskStorage;
        assert!(!disk.exists(&path));
        assert!(
            disk.scan(&dir).expect("scan").is_empty(),
            "temp not cleaned"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
