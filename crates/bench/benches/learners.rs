//! Throughput benchmarks of the ML layer: one fit per learner on a fixed
//! synthetic task, plus histogram binning. These ground the virtual cost
//! model and the per-learner cost constants of the appendix.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use flaml_data::{Dataset, Task};
use flaml_learners::{
    BinMapper, Forest, ForestParams, Gbdt, GbdtParams, Growth, Linear, LinearParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0);
    let cols: Vec<Vec<f64>> = (0..d)
        .map(|_| (0..n).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(cols[0][i] + cols[1][i] > 1.0))
        .collect();
    Dataset::new("bench", Task::Binary, cols, y).unwrap()
}

fn bench_learners(c: &mut Criterion) {
    let data = dataset(2000, 10);

    c.bench_function("gbdt_leafwise_fit_10trees_2000x10", |b| {
        let params = GbdtParams {
            n_trees: 10,
            max_leaves: 31,
            ..GbdtParams::default()
        };
        b.iter(|| black_box(Gbdt::fit(&data, &params, 0).unwrap()));
    });

    c.bench_function("gbdt_depthwise_fit_10trees_2000x10", |b| {
        let params = GbdtParams {
            n_trees: 10,
            max_leaves: 31,
            growth: Growth::DepthWise,
            ..GbdtParams::default()
        };
        b.iter(|| black_box(Gbdt::fit(&data, &params, 0).unwrap()));
    });

    c.bench_function("gbdt_oblivious_fit_10trees_2000x10", |b| {
        let params = GbdtParams {
            n_trees: 10,
            max_leaves: 32,
            growth: Growth::Oblivious,
            ..GbdtParams::default()
        };
        b.iter(|| black_box(Gbdt::fit(&data, &params, 0).unwrap()));
    });

    c.bench_function("rf_fit_10trees_2000x10", |b| {
        let params = ForestParams {
            n_trees: 10,
            max_features: 0.5,
            ..ForestParams::default()
        };
        b.iter(|| black_box(Forest::fit(&data, &params, 0).unwrap()));
    });

    c.bench_function("extra_trees_fit_10trees_2000x10", |b| {
        let params = ForestParams {
            n_trees: 10,
            max_features: 0.5,
            extra: true,
            ..ForestParams::default()
        };
        b.iter(|| black_box(Forest::fit(&data, &params, 0).unwrap()));
    });

    c.bench_function("lr_fit_2000x10", |b| {
        b.iter(|| black_box(Linear::fit(&data, &LinearParams::default(), 0).unwrap()));
    });

    c.bench_function("binning_2000x10_255bins", |b| {
        b.iter_batched(
            || data.clone(),
            |d| {
                let mapper = BinMapper::fit(&d, 255);
                black_box(mapper.transform(&d))
            },
            BatchSize::SmallInput,
        );
    });

    let model = Gbdt::fit(
        &data,
        &GbdtParams {
            n_trees: 50,
            ..GbdtParams::default()
        },
        0,
    )
    .unwrap();
    c.bench_function("gbdt_predict_50trees_2000x10", |b| {
        b.iter(|| black_box(model.predict(&data)));
    });
}

criterion_group!(benches, bench_learners);
criterion_main!(benches);
