//! Micro-benchmarks of the AutoML layer, validating the paper's claim
//! (§4.2) that the computational overhead beyond trial cost is negligible
//! — ECI updates, ECI-based sampling, and FLOW² proposals are all linear
//! in the hyperparameter dimensionality and independent of the number of
//! trials.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flaml_core::{sample_by_inverse_eci, EciState, LearnerKind};
use flaml_search::{Flow2, RandomSearch, Tpe};

fn bench_eci(c: &mut Criterion) {
    c.bench_function("eci_update_and_query", |b| {
        let mut state = EciState::new(1.0);
        state.on_trial(1.0, 0.5);
        state.on_trial(2.0, 0.4);
        let mut cost = 0.1;
        b.iter(|| {
            state.on_trial(black_box(cost), black_box(0.39));
            cost += 1e-9;
            black_box(state.eci(0.3, 2.0))
        });
    });

    c.bench_function("eci_sampling_6_learners", |b| {
        let ecis: Vec<f64> = LearnerKind::ALL.iter().map(|k| k.cost_constant()).collect();
        let mut u = 0.0;
        b.iter(|| {
            u = (u + 0.123) % 1.0;
            black_box(sample_by_inverse_eci(black_box(&ecis), u))
        });
    });
}

fn bench_flow2(c: &mut Criterion) {
    // The 9-dimensional LightGBM space: the largest in Table 5.
    let space = LearnerKind::LightGbm.space(100_000);
    c.bench_function("flow2_ask_tell_9d", |b| {
        let mut opt = Flow2::new(space.clone(), 0);
        let mut err = 1.0;
        b.iter(|| {
            let p = opt.ask();
            err *= 0.9999;
            opt.tell(black_box(err));
            black_box(p)
        });
    });

    c.bench_function("random_ask_tell_9d", |b| {
        let mut opt = RandomSearch::new(space.clone(), 0);
        b.iter(|| {
            let p = opt.ask();
            opt.tell(black_box(0.5));
            black_box(p)
        });
    });
}

fn bench_tpe(c: &mut Criterion) {
    // TPE cost grows with observation count — exactly the overhead FLAML
    // avoids. Benchmark at two history sizes to expose the trend.
    let space = LearnerKind::LightGbm.space(100_000);
    for n_obs in [50usize, 400] {
        c.bench_function(&format!("tpe_ask_tell_9d_{n_obs}obs"), |b| {
            let mut opt = Tpe::new(space.clone(), 0);
            for i in 0..n_obs {
                let p = opt.ask();
                let err = p.iter().sum::<f64>() + i as f64 * 1e-6;
                opt.tell(err);
            }
            b.iter(|| {
                let p = opt.ask();
                opt.tell(black_box(0.5));
                black_box(p)
            });
        });
    }
}

criterion_group!(benches, bench_eci, bench_flow2, bench_tpe);
criterion_main!(benches);
