//! The method registry: one entry point to run FLAML, its ablations, or
//! any baseline with a common signature, plus train/test evaluation.

use flaml_baselines::{calibration_anchors, run_baseline, BaselineKind, BaselineSettings};
use flaml_core::{
    AutoMl, AutoMlError, AutoMlResult, EventSink, FaultPlan, LearnerSelection, ResampleChoice,
    TimeSource,
};
use flaml_data::Dataset;
use flaml_metrics::{scaled_score, Metric, ScaleAnchors};

/// Every system the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// FLAML with all components enabled.
    Flaml,
    /// Ablation: round-robin learner choice instead of ECI.
    FlamlRoundRobin,
    /// Ablation: no data subsampling.
    FlamlFullData,
    /// Ablation: always cross-validate.
    FlamlCv,
    /// HpBandSter stand-in (TPE x Hyperband, shared search space).
    Bohb,
    /// BO over the joint space (auto-sklearn family stand-in).
    Bo,
    /// Uniform random joint search (randomized-grid stand-in).
    Random,
    /// Random configs under Hyperband allocation.
    Hyperband,
}

impl Method {
    /// Every method the harness knows, in display order. The single
    /// source of truth for [`Method::parse`].
    pub const ALL: [Method; 8] = [
        Method::Flaml,
        Method::FlamlRoundRobin,
        Method::FlamlFullData,
        Method::FlamlCv,
        Method::Bohb,
        Method::Bo,
        Method::Random,
        Method::Hyperband,
    ];

    /// All methods of the comparative study (Figure 5).
    pub const COMPARATIVE: [Method; 5] = [
        Method::Flaml,
        Method::Bohb,
        Method::Bo,
        Method::Random,
        Method::Hyperband,
    ];

    /// FLAML and its ablations (Figures 7–8).
    pub const ABLATIONS: [Method; 4] = [
        Method::Flaml,
        Method::FlamlRoundRobin,
        Method::FlamlFullData,
        Method::FlamlCv,
    ];

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Flaml => "flaml",
            Method::FlamlRoundRobin => "roundrobin",
            Method::FlamlFullData => "fulldata",
            Method::FlamlCv => "cv",
            Method::Bohb => "bohb",
            Method::Bo => "bo",
            Method::Random => "random",
            Method::Hyperband => "hyperband",
        }
    }

    /// Parses a method name (as printed by [`Method::name`]).
    pub fn parse(s: &str) -> Option<Method> {
        Method::ALL.into_iter().find(|m| m.name() == s)
    }

    /// Runs the method on `train` under `budget_secs`.
    ///
    /// `sample_init` is FLAML's initial sample size and the fidelity floor
    /// of the bandit baselines, so every system sees the same knob.
    ///
    /// # Errors
    ///
    /// Propagates [`AutoMlError`] from the underlying system.
    pub fn run(
        &self,
        train: &Dataset,
        budget_secs: f64,
        seed: u64,
        sample_init: usize,
        time_source: TimeSource,
        max_trials: Option<usize>,
    ) -> Result<AutoMlResult, AutoMlError> {
        self.run_with(
            train,
            &RunConfig {
                budget_secs,
                seed,
                sample_init,
                time_source,
                max_trials,
                workers: 1,
                event_sink: None,
                fault_plan: None,
                journal: None,
                resume: false,
                tree_cache: true,
                tree_cache_bytes: DEFAULT_TREE_CACHE_BYTES,
            },
        )
    }

    /// Like [`Method::run`], with the execution knobs of the `flaml-exec`
    /// runtime: a worker count for the trial-execution pool and an
    /// optional trial-event sink.
    ///
    /// The event sink is honored by the FLAML methods (whose controller
    /// emits per-trial events); the baseline drivers record timeout and
    /// panic flags in their trial records instead.
    ///
    /// # Errors
    ///
    /// Propagates [`AutoMlError`] from the underlying system.
    pub fn run_with(&self, train: &Dataset, cfg: &RunConfig) -> Result<AutoMlResult, AutoMlError> {
        match self {
            Method::Flaml | Method::FlamlRoundRobin | Method::FlamlFullData | Method::FlamlCv => {
                let mut automl = AutoMl::new()
                    .time_budget(cfg.budget_secs)
                    .seed(cfg.seed)
                    .sample_size_init(cfg.sample_init)
                    .time_source(cfg.time_source)
                    .workers(cfg.workers)
                    .tree_cache(cfg.tree_cache)
                    .tree_cache_bytes(cfg.tree_cache_bytes);
                if let Some(cap) = cfg.max_trials {
                    automl = automl.max_trials(cap);
                }
                if let Some(sink) = &cfg.event_sink {
                    automl = automl.event_sink(sink.clone());
                }
                if let Some(plan) = cfg.fault_plan {
                    automl = automl.fault_plan(plan);
                }
                if let Some(path) = &cfg.journal {
                    // Resume only continues an existing log; a fresh path
                    // under --resume (new cell, wiped directory) starts a
                    // new journal instead of erroring.
                    automl = if cfg.resume && path.exists() {
                        automl.resume_from(path)
                    } else {
                        automl.journal(path)
                    };
                }
                automl = match self {
                    Method::FlamlRoundRobin => {
                        automl.learner_selection(LearnerSelection::RoundRobin)
                    }
                    Method::FlamlFullData => automl.sampling(false),
                    Method::FlamlCv => automl.resample(ResampleChoice::AlwaysCv),
                    _ => automl,
                };
                automl.fit(train)
            }
            Method::Bohb | Method::Bo | Method::Random | Method::Hyperband => {
                let kind = match self {
                    Method::Bohb => BaselineKind::Bohb,
                    Method::Bo => BaselineKind::Bo,
                    Method::Random => BaselineKind::RandomSearch,
                    _ => BaselineKind::Hyperband,
                };
                let settings = BaselineSettings {
                    time_budget: cfg.budget_secs,
                    seed: cfg.seed,
                    sample_size_min: cfg.sample_init,
                    time_source: cfg.time_source,
                    max_trials: cfg.max_trials,
                    workers: cfg.workers,
                    ..BaselineSettings::default()
                };
                run_baseline(kind, train, &settings)
            }
        }
    }
}

/// Execution knobs shared by every method (see [`Method::run_with`]).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Time budget in (wall or virtual) seconds.
    pub budget_secs: f64,
    /// Random seed.
    pub seed: u64,
    /// FLAML's initial sample size / the bandit baselines' fidelity floor.
    pub sample_init: usize,
    /// Wall or virtual budget accounting.
    pub time_source: TimeSource,
    /// Optional trial cap.
    pub max_trials: Option<usize>,
    /// Worker count of the trial-execution pool (1 = sequential).
    pub workers: usize,
    /// Optional subscriber for per-trial telemetry events.
    pub event_sink: Option<EventSink>,
    /// Optional deterministic fault-injection plan (`--chaos seed:rate`).
    /// Honored by the FLAML methods; baselines run unfaulted.
    pub fault_plan: Option<FaultPlan>,
    /// Optional crash-safe trial journal for the run (FLAML methods
    /// only; the baseline drivers do not emit committed-trial events).
    pub journal: Option<std::path::PathBuf>,
    /// With `journal` set: continue from the journal if it already
    /// exists, instead of starting it over.
    pub resume: bool,
    /// Whether the cross-trial boosting tree cache is enabled (FLAML
    /// methods only). Search traces are bit-identical either way.
    pub tree_cache: bool,
    /// Byte budget of the tree cache.
    pub tree_cache_bytes: usize,
}

/// Default tree-cache byte budget, matching [`AutoMl`]'s default.
pub const DEFAULT_TREE_CACHE_BYTES: usize = 256 * 1024 * 1024;

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Splits a dataset into a train/test pair by a shuffled `1 - ratio` /
/// `ratio` cut (the harness's stand-in for the benchmark's OpenML folds).
pub fn holdout_split(data: &Dataset, test_ratio: f64, seed: u64) -> (Dataset, Dataset) {
    let shuffled = data.shuffled(seed.wrapping_mul(31).wrapping_add(17));
    let n = shuffled.n_rows();
    let cut = ((n as f64) * (1.0 - test_ratio)).round() as usize;
    let cut = cut.clamp(1, n - 1);
    let train = shuffled.select(&(0..cut).collect::<Vec<_>>());
    let test = shuffled.select(&(cut..n).collect::<Vec<_>>());
    (train, test)
}

/// Evaluates a result's model on the test set and calibrates it to the
/// benchmark's scaled score using fresh anchors (constant predictor = 0,
/// tuned random forest = 1).
///
/// Returns `(raw_score, scaled_score)`.
///
/// # Errors
///
/// Propagates anchor-tuning failures.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_scaled(
    result: &AutoMlResult,
    train: &Dataset,
    test: &Dataset,
    metric: Metric,
    anchors: Option<ScaleAnchors>,
    rf_budget: f64,
    seed: u64,
    time_source: TimeSource,
) -> Result<(f64, f64), AutoMlError> {
    let anchors = match anchors {
        Some(a) => a,
        None => calibration_anchors(train, test, metric, rf_budget, seed, time_source, None)?,
    };
    let raw = metric
        .score(&result.model.predict(test), test.target())
        .unwrap_or(f64::NEG_INFINITY);
    Ok((raw, scaled_score(raw, anchors)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_core::default_virtual_cost;
    use flaml_data::Task;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(0);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(x0[i] > x1[i])).collect();
        Dataset::new("m", Task::Binary, vec![x0, x1], y).unwrap()
    }

    #[test]
    fn names_round_trip() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn all_covers_comparative_and_ablations() {
        for m in Method::COMPARATIVE.iter().chain(Method::ABLATIONS.iter()) {
            assert!(Method::ALL.contains(m), "{m} missing from ALL");
        }
    }

    #[test]
    fn holdout_split_partitions() {
        let d = data(100);
        let (train, test) = holdout_split(&d, 0.2, 1);
        assert_eq!(train.n_rows(), 80);
        assert_eq!(test.n_rows(), 20);
    }

    #[test]
    fn every_method_runs() {
        let d = data(400);
        for m in [Method::Flaml, Method::FlamlCv, Method::Bohb, Method::Random] {
            let r = m
                .run(
                    &d,
                    0.5,
                    0,
                    100,
                    TimeSource::Virtual(default_virtual_cost),
                    Some(8),
                )
                .unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(!r.trials.is_empty(), "{m}");
        }
    }

    #[test]
    fn scaled_evaluation_produces_finite_scores() {
        let d = data(500);
        let (train, test) = holdout_split(&d, 0.2, 2);
        let r = Method::Flaml
            .run(
                &train,
                0.5,
                0,
                100,
                TimeSource::Virtual(default_virtual_cost),
                Some(10),
            )
            .unwrap();
        let (raw, scaled) = evaluate_scaled(
            &r,
            &train,
            &test,
            r.metric,
            None,
            0.3,
            0,
            TimeSource::Virtual(default_virtual_cost),
        )
        .unwrap();
        assert!(raw.is_finite());
        assert!(scaled.is_finite());
    }
}
