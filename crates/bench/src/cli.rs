//! Minimal argument parsing shared by the experiment binaries
//! (`--key value` pairs and `--flag` switches; no external dependencies).

use std::collections::{HashMap, HashSet};

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: HashSet<String>,
}

impl Args {
    /// Parses `std::env::args()`. A token `--key` followed by a non-`--`
    /// token is a key/value pair; a `--key` followed by another `--key`
    /// (or nothing) is a flag.
    pub fn parse() -> Args {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (testable).
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Args {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        args
    }

    /// A float value, or the default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// An integer value, or the default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A u64 value, or the default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string value, or the default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    /// Comma-separated float list, or the default.
    pub fn f64_list(&self, key: &str, default: &[f64]) -> Vec<f64> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        }
    }

    /// The `--chaos seed:rate` fault-injection spec, if present and
    /// well-formed (e.g. `--chaos 7:0.25`). A malformed spec aborts with
    /// an error message rather than silently running without faults.
    pub fn chaos(&self) -> Option<flaml_core::FaultPlan> {
        let spec = self.values.get("chaos")?;
        match flaml_core::FaultPlan::parse(spec) {
            Some(plan) => Some(plan),
            None => {
                eprintln!("invalid --chaos spec {spec:?}: expected seed:rate with rate in [0, 1]");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--budget 2.5 --full --seed 7");
        assert_eq!(a.f64("budget", 1.0), 2.5);
        assert!(a.flag("full"));
        assert_eq!(a.u64("seed", 0), 7);
        assert!(!a.flag("missing"));
        assert_eq!(a.f64("missing", 9.0), 9.0);
    }

    #[test]
    fn parses_lists() {
        let a = args("--budgets 0.5,2,8");
        assert_eq!(a.f64_list("budgets", &[1.0]), vec![0.5, 2.0, 8.0]);
        assert_eq!(a.f64_list("other", &[1.0]), vec![1.0]);
    }
}
