//! Minimal argument parsing shared by the experiment binaries
//! (`--key value` pairs and `--flag` switches; no external dependencies),
//! plus [`ExecArgs`]: the execution knobs every binary shares —
//! `--seed`, `--jobs`, `--virtual`, `--chaos`, `--max-trials`,
//! `--journal DIR` / `--resume`, `--full` — parsed in one place instead
//! of ten.

use flaml_core::{default_virtual_cost, TimeSource};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: HashSet<String>,
}

impl Args {
    /// Parses `std::env::args()`. A token `--key` followed by a non-`--`
    /// token is a key/value pair; a `--key` followed by another `--key`
    /// (or nothing) is a flag.
    pub fn parse() -> Args {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (testable).
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Args {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        args
    }

    /// A float value, or the default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// An integer value, or the default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A u64 value, or the default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string value, or the default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A string value, if present.
    pub fn opt_str(&self, key: &str) -> Option<String> {
        self.values.get(key).cloned()
    }

    /// An integer value, if present.
    pub fn opt_usize(&self, key: &str) -> Option<usize> {
        self.values.get(key).and_then(|v| v.parse().ok())
    }

    /// Whether `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    /// Comma-separated float list, or the default.
    pub fn f64_list(&self, key: &str, default: &[f64]) -> Vec<f64> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        }
    }

    /// The `--chaos seed:rate` fault-injection spec, if present and
    /// well-formed (e.g. `--chaos 7:0.25`). A malformed spec aborts with
    /// an error message rather than silently running without faults.
    pub fn chaos(&self) -> Option<flaml_core::FaultPlan> {
        let spec = self.values.get("chaos")?;
        match flaml_core::FaultPlan::parse(spec) {
            Some(plan) => Some(plan),
            None => {
                eprintln!("invalid --chaos spec {spec:?}: expected seed:rate with rate in [0, 1]");
                std::process::exit(2);
            }
        }
    }

    /// Parses the execution knobs shared by every experiment binary.
    /// Aborts with a message when `--resume` is given without
    /// `--journal` (there is nothing to resume from).
    pub fn exec(&self) -> ExecArgs {
        let journal_dir = self.opt_str("journal").map(PathBuf::from);
        let resume = self.flag("resume");
        if resume && journal_dir.is_none() {
            eprintln!("--resume requires --journal DIR (the directory holding the journals)");
            std::process::exit(2);
        }
        let jobs = self.usize("jobs", 1);
        ExecArgs {
            seed: self.u64("seed", 0),
            jobs,
            time_source: if self.flag("virtual") {
                TimeSource::Virtual(default_virtual_cost)
            } else {
                TimeSource::Wall
            },
            chaos: self.chaos(),
            max_trials: self.opt_usize("max-trials"),
            journal_dir,
            resume,
            full: self.flag("full"),
            batch: self.usize("batch", 32).max(1),
            concurrency: self.usize("concurrency", jobs).max(1),
            artifact: self.opt_str("artifact").map(PathBuf::from),
            port: self.usize("port", 8700).min(u16::MAX as usize) as u16,
            tenants: self.usize("tenants", 2).max(1),
            max_inflight: self.usize("max-inflight", 8).max(1),
            chunks: self.usize("chunks", 24).max(1),
            chunk_rows: self.usize("chunk-rows", 120).max(8),
            drift_at: self.usize("drift-at", 8).max(2),
            promote_margin: self.f64("promote-margin", 0.01).max(0.0),
            // The cache defaults on, so `--tree-cache off|false|0`
            // disables it; a bare `--tree-cache` flag or any other value
            // leaves it on.
            tree_cache: !matches!(self.str("tree-cache", "on").as_str(), "off" | "false" | "0"),
            tree_cache_bytes: self.usize("tree-cache-bytes", crate::run::DEFAULT_TREE_CACHE_BYTES),
            artifact_format: match self.opt_str("artifact-format") {
                None => flaml_core::ArtifactFormat::Json,
                Some(spec) => spec.parse().unwrap_or_else(|e| {
                    eprintln!("invalid --artifact-format: {e}");
                    std::process::exit(2);
                }),
            },
        }
    }
}

/// The execution knobs shared by every experiment binary, parsed once by
/// [`Args::exec`] instead of per-binary:
///
/// - `--seed N` — run seed (default 0);
/// - `--jobs N` — concurrent grid cells / pool workers;
/// - `--virtual` — deterministic virtual-clock budget accounting;
/// - `--chaos seed:rate` — deterministic fault injection;
/// - `--max-trials N` — per-run trial cap (also the "kill at trial N"
///   knob of the resume smoke test);
/// - `--journal DIR` — journal every FLAML run to
///   `DIR/<dataset>_<method>_<budget>s_seed<seed>.jsonl`;
/// - `--resume` — continue from the journals already in `DIR`;
/// - `--full` — full-scale dataset suites;
/// - `--batch N` — serving batch size in rows (default 32, clamped ≥ 1);
/// - `--concurrency N` — serving pool workers (default: `--jobs`);
/// - `--artifact PATH` — export the winning model as a serving artifact;
/// - `--port N` — service port to target or bind (default 8700);
/// - `--tenants N` — tenants a service load generator simulates
///   (default 2, clamped ≥ 1);
/// - `--max-inflight N` — the service admission bound (default 8,
///   clamped ≥ 1);
/// - `--chunks N` — stream length in chunks for online benchmarks
///   (default 24, clamped ≥ 1);
/// - `--chunk-rows N` — rows per stream chunk (default 120, clamped
///   ≥ 8);
/// - `--drift-at N` — chunks per stream concept segment, i.e. a
///   concept shift every N chunks (default 8, clamped ≥ 2);
/// - `--promote-margin X` — margin a challenger must beat the champion
///   by to be promoted (default 0.01, clamped ≥ 0);
/// - `--tree-cache off` — disable the cross-trial boosting tree cache
///   (default on; search traces are bit-identical either way);
/// - `--tree-cache-bytes N` — tree-cache byte budget (default 256 MiB);
/// - `--artifact-format json|blob` — format for exported serving
///   artifacts (default json; any other value aborts with exit 2).
#[derive(Debug, Clone)]
pub struct ExecArgs {
    /// Run seed.
    pub seed: u64,
    /// Concurrent grid cells / pool workers.
    pub jobs: usize,
    /// Wall or virtual budget accounting (`--virtual`).
    pub time_source: TimeSource,
    /// Deterministic fault injection, if requested.
    pub chaos: Option<flaml_core::FaultPlan>,
    /// Optional per-run trial cap.
    pub max_trials: Option<usize>,
    /// Directory receiving one journal file per FLAML run.
    pub journal_dir: Option<PathBuf>,
    /// Whether to resume from journals already in `journal_dir`.
    pub resume: bool,
    /// Full-scale dataset suites (`--full`).
    pub full: bool,
    /// Serving batch size in rows (`--batch`, default 32, always ≥ 1).
    pub batch: usize,
    /// Serving pool workers (`--concurrency`, default: `jobs`, always
    /// ≥ 1).
    pub concurrency: usize,
    /// Where to export the winning model as a serving artifact
    /// (`--artifact PATH`), if requested.
    pub artifact: Option<PathBuf>,
    /// Service port to target or bind (`--port`, default 8700).
    pub port: u16,
    /// Tenants a service load generator simulates (`--tenants`,
    /// default 2, always ≥ 1).
    pub tenants: usize,
    /// Service admission bound (`--max-inflight`, default 8, always
    /// ≥ 1).
    pub max_inflight: usize,
    /// Stream length in chunks for online benchmarks (`--chunks`,
    /// default 24, always ≥ 1).
    pub chunks: usize,
    /// Rows per stream chunk (`--chunk-rows`, default 120, always ≥ 8).
    pub chunk_rows: usize,
    /// Chunks per stream concept segment — a concept shift every N
    /// chunks (`--drift-at`, default 8, always ≥ 2).
    pub drift_at: usize,
    /// Promotion margin for online champion–challenger benchmarks
    /// (`--promote-margin`, default 0.01, always ≥ 0).
    pub promote_margin: f64,
    /// Whether the cross-trial boosting tree cache is enabled
    /// (`--tree-cache off` disables; default on).
    pub tree_cache: bool,
    /// Tree-cache byte budget (`--tree-cache-bytes`, default 256 MiB).
    pub tree_cache_bytes: usize,
    /// Format for exported serving artifacts (`--artifact-format
    /// json|blob`, default json; anything else aborts with exit 2).
    pub artifact_format: flaml_core::ArtifactFormat,
}

impl ExecArgs {
    /// The dataset-suite scale implied by `--full`.
    pub fn scale(&self) -> flaml_synth::SuiteScale {
        if self.full {
            flaml_synth::SuiteScale::Full
        } else {
            flaml_synth::SuiteScale::Small
        }
    }

    /// The journal path for one run, if journaling is enabled:
    /// `DIR/<stem>.jsonl` (see [`journal_stem`]).
    pub fn journal_file(&self, stem: &str) -> Option<PathBuf> {
        self.journal_dir
            .as_ref()
            .map(|d| d.join(format!("{stem}.jsonl")))
    }

    /// A [`RunConfig`] carrying these shared knobs. The journal path is
    /// per-run, so callers set `journal` themselves (usually via
    /// [`ExecArgs::journal_file`] + [`journal_stem`]).
    pub fn run_config(&self, budget_secs: f64, sample_init: usize) -> crate::run::RunConfig {
        crate::run::RunConfig {
            budget_secs,
            seed: self.seed,
            sample_init,
            time_source: self.time_source,
            max_trials: self.max_trials,
            workers: 1,
            event_sink: None,
            fault_plan: self.chaos,
            journal: None,
            resume: self.resume,
            tree_cache: self.tree_cache,
            tree_cache_bytes: self.tree_cache_bytes,
        }
    }
}

/// The canonical journal file stem for one run:
/// `<dataset>_<method>_<budget>s_seed<seed>`.
pub fn journal_stem(dataset: &str, method: &str, budget: f64, seed: u64) -> String {
    format!("{dataset}_{method}_{budget}s_seed{seed}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--budget 2.5 --full --seed 7");
        assert_eq!(a.f64("budget", 1.0), 2.5);
        assert!(a.flag("full"));
        assert_eq!(a.u64("seed", 0), 7);
        assert!(!a.flag("missing"));
        assert_eq!(a.f64("missing", 9.0), 9.0);
    }

    #[test]
    fn parses_lists() {
        let a = args("--budgets 0.5,2,8");
        assert_eq!(a.f64_list("budgets", &[1.0]), vec![0.5, 2.0, 8.0]);
        assert_eq!(a.f64_list("other", &[1.0]), vec![1.0]);
    }

    #[test]
    fn exec_parses_shared_knobs() {
        let e = args("--seed 3 --jobs 4 --virtual --max-trials 9 --journal logs").exec();
        assert_eq!(e.seed, 3);
        assert_eq!(e.jobs, 4);
        assert!(matches!(e.time_source, TimeSource::Virtual(_)));
        assert_eq!(e.max_trials, Some(9));
        assert!(!e.resume);
        assert_eq!(
            e.journal_file(&journal_stem("adult-like", "flaml", 0.5, 3)),
            Some(PathBuf::from("logs/adult-like_flaml_0.5s_seed3.jsonl"))
        );

        let e = args("--journal logs --resume").exec();
        assert!(e.resume);
        assert!(matches!(e.time_source, TimeSource::Wall));
        assert_eq!(e.max_trials, None);
        assert_eq!(e.journal_file("x"), Some(PathBuf::from("logs/x.jsonl")));

        let e = args("").exec();
        assert_eq!(e.journal_file("x"), None);
    }

    #[test]
    fn exec_parses_serving_knobs() {
        let e = args("--jobs 4 --batch 128 --concurrency 2 --artifact model.json").exec();
        assert_eq!(e.batch, 128);
        assert_eq!(e.concurrency, 2);
        assert_eq!(e.artifact, Some(PathBuf::from("model.json")));

        // Defaults: batch 32, concurrency follows --jobs, no artifact.
        let e = args("--jobs 3").exec();
        assert_eq!(e.batch, 32);
        assert_eq!(e.concurrency, 3);
        assert_eq!(e.artifact, None);

        // Degenerate values are clamped to 1, never 0.
        let e = args("--batch 0 --concurrency 0").exec();
        assert_eq!(e.batch, 1);
        assert_eq!(e.concurrency, 1);
    }

    #[test]
    fn exec_parses_server_knobs() {
        let e = args("--port 9100 --tenants 5 --max-inflight 3").exec();
        assert_eq!(e.port, 9100);
        assert_eq!(e.tenants, 5);
        assert_eq!(e.max_inflight, 3);

        // Defaults, and clamping of degenerate values.
        let e = args("").exec();
        assert_eq!(e.port, 8700);
        assert_eq!(e.tenants, 2);
        assert_eq!(e.max_inflight, 8);
        let e = args("--tenants 0 --max-inflight 0 --port 99999").exec();
        assert_eq!(e.tenants, 1);
        assert_eq!(e.max_inflight, 1);
        assert_eq!(e.port, u16::MAX);
    }

    #[test]
    fn exec_parses_online_knobs() {
        let e = args("--chunks 16 --chunk-rows 100 --drift-at 6 --promote-margin 0.02").exec();
        assert_eq!(e.chunks, 16);
        assert_eq!(e.chunk_rows, 100);
        assert_eq!(e.drift_at, 6);
        assert_eq!(e.promote_margin, 0.02);

        // Defaults, and clamping of degenerate values.
        let e = args("").exec();
        assert_eq!(e.chunks, 24);
        assert_eq!(e.chunk_rows, 120);
        assert_eq!(e.drift_at, 8);
        assert_eq!(e.promote_margin, 0.01);
        let e = args("--chunks 0 --chunk-rows 1 --drift-at 1 --promote-margin -3").exec();
        assert_eq!(e.chunks, 1);
        assert_eq!(e.chunk_rows, 8);
        assert_eq!(e.drift_at, 2);
        assert_eq!(e.promote_margin, 0.0);
    }

    #[test]
    fn exec_parses_tree_cache_knobs() {
        // Default: on, 256 MiB.
        let e = args("").exec();
        assert!(e.tree_cache);
        assert_eq!(e.tree_cache_bytes, 256 * 1024 * 1024);

        // Disabling values.
        for spec in ["off", "false", "0"] {
            let e = args(&format!("--tree-cache {spec}")).exec();
            assert!(!e.tree_cache, "--tree-cache {spec} must disable");
        }

        // Affirmative / bare forms stay on; byte budget is tunable.
        let e = args("--tree-cache on --tree-cache-bytes 1024").exec();
        assert!(e.tree_cache);
        assert_eq!(e.tree_cache_bytes, 1024);
        let e = args("--tree-cache --seed 1").exec();
        assert!(e.tree_cache, "bare flag leaves the default on");
    }

    #[test]
    fn exec_parses_artifact_format() {
        use flaml_core::ArtifactFormat;
        assert_eq!(args("").exec().artifact_format, ArtifactFormat::Json);
        assert_eq!(
            args("--artifact-format json").exec().artifact_format,
            ArtifactFormat::Json
        );
        assert_eq!(
            args("--artifact-format blob").exec().artifact_format,
            ArtifactFormat::Blob
        );
        // An invalid value exits(2) rather than silently defaulting —
        // covered here only at the parse layer, since exit() would kill
        // the test harness.
        assert!("yaml".parse::<ArtifactFormat>().is_err());
    }
}
