//! CSV rendering and parsing of journaled trial records, shared by
//! `journal_tool export-csv` and anything that wants the trial trace in
//! a spreadsheet. The column set is the analysis-facing subset of
//! [`TrialLine`] — including the data-plane counters
//! (`prepared_hits` / `prepared_misses` / `bytes_copied_saved` /
//! `prepared_evictions`) and the tree-cache counters
//! (`tree_cache_hits` / `tree_cache_misses` / `trees_saved`) — with
//! the free-text `config` quoted and last so the fixed columns split on
//! plain commas.

use flaml_core::TrialLine;

/// Header row of the trial CSV, in column order.
pub const TRIAL_CSV_HEADER: &str = "iter,learner,mode,status,sample_size,loss,cost,total_time,\
     wall_secs,attempts,improved,best_loss,prepared_hits,prepared_misses,bytes_copied_saved,\
     prepared_evictions,tree_cache_hits,tree_cache_misses,trees_saved,config";

/// One parsed row of the trial CSV: the analysis-facing subset of
/// [`TrialLine`] that [`render_trials_csv`] exports.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialCsvRow {
    /// 1-based trial index.
    pub iter: usize,
    /// Learner evaluated.
    pub learner: String,
    /// Trial mode (`"search"` / `"sample-up"`).
    pub mode: String,
    /// Final-attempt status name.
    pub status: String,
    /// Sample size used.
    pub sample_size: usize,
    /// Final validation loss (`inf` = the failure sentinel).
    pub loss: f64,
    /// Total budget cost of the trial.
    pub cost: f64,
    /// Budget elapsed when the trial committed.
    pub total_time: f64,
    /// Measured wall seconds.
    pub wall_secs: f64,
    /// Retry attempts consumed.
    pub attempts: usize,
    /// Whether the trial improved the run's best error.
    pub improved: bool,
    /// Global best error after this trial.
    pub best_loss: f64,
    /// Prepared-data cache hits during preparation.
    pub prepared_hits: usize,
    /// Prepared-data cache misses during preparation.
    pub prepared_misses: usize,
    /// Bytes of dataset copies the zero-copy data plane avoided.
    pub bytes_copied_saved: usize,
    /// Prepared-data cache entries evicted under the byte budget.
    pub prepared_evictions: usize,
    /// Folds that continued boosting from a cached tree prefix.
    pub tree_cache_hits: usize,
    /// Cache-eligible folds that started from round zero.
    pub tree_cache_misses: usize,
    /// Trees served from cached prefixes instead of being refit.
    pub trees_saved: usize,
    /// Configuration rendered as `name=value` pairs.
    pub config: String,
}

/// Renders journaled trials as CSV (header + one row per trial). Floats
/// use shortest-round-trip formatting, so a [`parse_trials_csv`] of the
/// output recovers every numeric field bit-for-bit.
pub fn render_trials_csv(trials: &[TrialLine]) -> String {
    let mut csv = String::from(TRIAL_CSV_HEADER);
    csv.push('\n');
    for t in trials {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},\"{}\"\n",
            t.iter,
            t.learner,
            t.mode,
            t.status,
            t.sample_size,
            t.loss,
            t.cost,
            t.total_time,
            t.wall_secs,
            t.attempts,
            t.improved,
            t.best_loss,
            t.prepared_hits,
            t.prepared_misses,
            t.bytes_copied_saved,
            t.prepared_evictions,
            t.tree_cache_hits,
            t.tree_cache_misses,
            t.trees_saved,
            t.config.replace('"', "\"\""),
        ));
    }
    csv
}

/// Parses a CSV produced by [`render_trials_csv`] back into rows.
///
/// # Errors
///
/// Returns a message naming the offending line when the header is
/// missing, a row has too few columns, or a numeric field fails to
/// parse.
pub fn parse_trials_csv(csv: &str) -> Result<Vec<TrialCsvRow>, String> {
    let mut lines = csv.lines();
    match lines.next() {
        Some(h) if h == TRIAL_CSV_HEADER => {}
        other => return Err(format!("bad or missing header row: {other:?}")),
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let row = parse_row(line).map_err(|e| format!("row {}: {e} in {line:?}", i + 1))?;
        rows.push(row);
    }
    Ok(rows)
}

fn parse_row(line: &str) -> Result<TrialCsvRow, String> {
    let fields: Vec<&str> = line.splitn(20, ',').collect();
    if fields.len() != 20 {
        return Err(format!("expected 20 columns, found {}", fields.len()));
    }
    fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("bad {name} value {v:?}"))
    }
    let config = fields[19];
    let config = config
        .strip_prefix('"')
        .and_then(|c| c.strip_suffix('"'))
        .ok_or_else(|| format!("config column is not quoted: {config:?}"))?
        .replace("\"\"", "\"");
    Ok(TrialCsvRow {
        iter: num("iter", fields[0])?,
        learner: fields[1].to_string(),
        mode: fields[2].to_string(),
        status: fields[3].to_string(),
        sample_size: num("sample_size", fields[4])?,
        loss: num("loss", fields[5])?,
        cost: num("cost", fields[6])?,
        total_time: num("total_time", fields[7])?,
        wall_secs: num("wall_secs", fields[8])?,
        attempts: num("attempts", fields[9])?,
        improved: num("improved", fields[10])?,
        best_loss: num("best_loss", fields[11])?,
        prepared_hits: num("prepared_hits", fields[12])?,
        prepared_misses: num("prepared_misses", fields[13])?,
        bytes_copied_saved: num("bytes_copied_saved", fields[14])?,
        prepared_evictions: num("prepared_evictions", fields[15])?,
        tree_cache_hits: num("tree_cache_hits", fields[16])?,
        tree_cache_misses: num("tree_cache_misses", fields[17])?,
        trees_saved: num("trees_saved", fields[18])?,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(iter: usize) -> TrialLine {
        TrialLine {
            iter,
            learner: "lightgbm".into(),
            config: "trees=4, lr=0.1000, note=\"q\"".into(),
            config_values: vec![4.0, 0.1],
            sample_size: 500 + iter,
            loss: 0.125 + iter as f64 * 0.001,
            status: "ok".into(),
            mode: "search".into(),
            attempts: iter % 3,
            attempt_costs: vec![0.05],
            cost: 0.05,
            total_time: 0.2,
            wall_secs: 0.017,
            prepared_hits: iter * 2,
            prepared_misses: iter,
            prepared_evictions: iter % 2,
            bytes_copied_saved: iter * 4096,
            tree_cache_hits: iter % 4,
            tree_cache_misses: iter % 3,
            trees_saved: iter * 17,
            seed: 7,
            improved: iter.is_multiple_of(2),
            best_loss: 0.125,
        }
    }

    #[test]
    fn csv_round_trips_every_exported_field() {
        let trials: Vec<TrialLine> = (1..=5).map(line).collect();
        let csv = render_trials_csv(&trials);
        assert!(csv.starts_with(TRIAL_CSV_HEADER));
        assert!(csv.contains("prepared_hits,prepared_misses,bytes_copied_saved"));
        assert!(csv.contains("prepared_evictions,tree_cache_hits,tree_cache_misses,trees_saved"));
        let rows = parse_trials_csv(&csv).unwrap();
        assert_eq!(rows.len(), trials.len());
        for (row, t) in rows.iter().zip(&trials) {
            assert_eq!(row.iter, t.iter);
            assert_eq!(row.learner, t.learner);
            assert_eq!(row.mode, t.mode);
            assert_eq!(row.status, t.status);
            assert_eq!(row.sample_size, t.sample_size);
            assert_eq!(row.loss.to_bits(), t.loss.to_bits());
            assert_eq!(row.cost.to_bits(), t.cost.to_bits());
            assert_eq!(row.total_time.to_bits(), t.total_time.to_bits());
            assert_eq!(row.wall_secs.to_bits(), t.wall_secs.to_bits());
            assert_eq!(row.attempts, t.attempts);
            assert_eq!(row.improved, t.improved);
            assert_eq!(row.best_loss.to_bits(), t.best_loss.to_bits());
            assert_eq!(row.prepared_hits, t.prepared_hits);
            assert_eq!(row.prepared_misses, t.prepared_misses);
            assert_eq!(row.bytes_copied_saved, t.bytes_copied_saved);
            assert_eq!(row.prepared_evictions, t.prepared_evictions);
            assert_eq!(row.tree_cache_hits, t.tree_cache_hits);
            assert_eq!(row.tree_cache_misses, t.tree_cache_misses);
            assert_eq!(row.trees_saved, t.trees_saved);
            assert_eq!(row.config, t.config, "embedded quotes must unescape");
        }
    }

    #[test]
    fn failure_sentinel_loss_round_trips() {
        let mut t = line(1);
        t.loss = f64::INFINITY;
        t.best_loss = f64::INFINITY;
        let rows = parse_trials_csv(&render_trials_csv(&[t])).unwrap();
        assert!(rows[0].loss.is_infinite() && rows[0].loss > 0.0);
    }

    #[test]
    fn malformed_rows_are_rejected_with_context() {
        assert!(parse_trials_csv("nope\n").is_err());
        let short = format!("{TRIAL_CSV_HEADER}\n1,2,3\n");
        assert!(parse_trials_csv(&short).unwrap_err().contains("20 columns"));
        let bad = format!(
            "{TRIAL_CSV_HEADER}\nX,lgbm,search,ok,5,0.1,0.1,0.1,0.1,0,true,0.1,0,0,0,0,0,0,0,\"c\"\n"
        );
        assert!(parse_trials_csv(&bad).unwrap_err().contains("bad iter"));
    }
}
