//! Plain-text report formatting: aligned tables, box-plot summaries and
//! the win-percentage computation of the paper's Table 9 — plus the
//! reporting layer's subscription to the `flaml-exec` trial-event
//! channel, which turns a run's event stream into timeout/panic counts
//! for the emitted results JSON.

use flaml_core::{event_channel, EventSink, Telemetry, TrialEvent};
use serde::{Deserialize, Serialize};
use std::sync::mpsc::Receiver;

/// Subscribes the reporting layer to one run's trial-event channel.
///
/// Hand [`TelemetryCollector::sink`] to the run (e.g. via
/// [`crate::RunConfig::event_sink`]); after the run returns, call
/// [`TelemetryCollector::finish`] to fold every buffered event into a
/// [`Telemetry`] aggregate.
#[derive(Debug)]
pub struct TelemetryCollector {
    sink: EventSink,
    rx: Receiver<TrialEvent>,
}

impl TelemetryCollector {
    /// Opens a fresh trial-event channel.
    pub fn new() -> TelemetryCollector {
        let (sink, rx) = event_channel();
        TelemetryCollector { sink, rx }
    }

    /// A clone of the sending end, to be handed to the run.
    pub fn sink(&self) -> EventSink {
        self.sink.clone()
    }

    /// Drains all buffered events into an aggregate. The run must have
    /// returned already: events still in flight after this call are lost.
    pub fn finish(self) -> Telemetry {
        drop(self.sink);
        Telemetry::new().drain(&self.rx)
    }
}

impl Default for TelemetryCollector {
    fn default() -> Self {
        TelemetryCollector::new()
    }
}

/// Renders an aligned plain-text table with a header row.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let width = header.len();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), width, "row {i} has wrong width");
    }
    let mut col_widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate() {
            col_widths[j] = col_widths[j].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &col_widths));
    out.push('\n');
    out.push_str(&"-".repeat(col_widths.iter().sum::<usize>() + 2 * (width - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(
            row.iter().map(String::as_str).collect(),
            &col_widths,
        ));
        out.push('\n');
    }
    out
}

/// Five-number summary of a sample (Figure 6's box plots, as text).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the five-number summary; returns `None` for empty input.
pub fn box_stats(values: &[f64]) -> Option<BoxStats> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |p: f64| -> f64 {
        // Linear interpolation between closest ranks.
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (idx - lo as f64) * (v[hi] - v[lo])
        }
    };
    Some(BoxStats {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
    })
}

impl BoxStats {
    /// One-line rendering: `min [q1 | median | q3] max`.
    pub fn render(&self) -> String {
        format!(
            "{:+.3} [{:+.3} | {:+.3} | {:+.3}] {:+.3}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// The paper's Table 9 statistic: the percentage of paired scores where
/// `a >= b - tolerance` (FLAML better than or equal to the baseline,
/// with the paper's 0.1% tolerance on scaled scores).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn percent_better_or_equal(a: &[f64], b: &[f64], tolerance: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "paired scores must align");
    if a.is_empty() {
        return 0.0;
    }
    let wins = a
        .iter()
        .zip(b)
        .filter(|(x, y)| **x >= **y - tolerance)
        .count();
    100.0 * wins as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "score"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
        // The score column starts at the same offset in every row.
        let off = lines[0].find("score").unwrap();
        assert_eq!(&lines[2][off..off + 3], "1.0");
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn box_stats_median_and_quartiles() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn box_stats_empty_is_none() {
        assert!(box_stats(&[]).is_none());
    }

    #[test]
    fn percent_with_tolerance() {
        let flaml = [1.0, 0.5, 0.8];
        let base = [0.9, 0.5004, 0.9];
        // Within 0.001 tolerance the second pair counts as a win.
        let pct = percent_better_or_equal(&flaml, &base, 0.001);
        assert!((pct - 66.666).abs() < 0.1, "{pct}");
    }

    #[test]
    fn percent_empty_is_zero() {
        assert_eq!(percent_better_or_equal(&[], &[], 0.0), 0.0);
    }

    #[test]
    fn telemetry_collector_counts_a_flaml_run() {
        use flaml_core::{default_virtual_cost, AutoMl, LearnerKind, TimeSource};
        use flaml_data::{Dataset, Task};

        let x: Vec<f64> = (0..300).map(|i| (i % 91) as f64 / 91.0).collect();
        let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 0.5)).collect();
        let data = Dataset::new("t", Task::Binary, vec![x], y).unwrap();
        let collector = TelemetryCollector::new();
        let result = AutoMl::new()
            .time_budget(0.5)
            .estimators([LearnerKind::LightGbm, LearnerKind::Lr])
            .time_source(TimeSource::Virtual(default_virtual_cost))
            .max_trials(6)
            .sample_size_init(100)
            .event_sink(collector.sink())
            .fit(&data)
            .unwrap();
        let telemetry = collector.finish();
        assert_eq!(telemetry.started, result.trials.len());
        assert_eq!(telemetry.total_terminal(), result.trials.len());
        assert!(telemetry.by_learner.values().all(|c| c.panicked == 0));
    }
}
