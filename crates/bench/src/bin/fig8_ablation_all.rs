//! Figure 8 — scaled-score differences between FLAML and its own
//! ablation variants (roundrobin / fulldata / cv) over the dataset
//! suites, per budget. Positive = the full FLAML is better.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin fig8_ablation_all
//! ```

use flaml_bench::grid::{default_groups, save_results};
use flaml_bench::{box_stats, paired_scores, render_table, run_grid, Args, GridSpec, Method};

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let full = exec.full;
    let budgets = args.f64_list("budgets", &[0.5, 2.0, 8.0]);
    let per_group = args.usize("per-group", if full { usize::MAX } else { 2 });

    let spec = GridSpec {
        budgets: budgets.clone(),
        methods: Method::ABLATIONS.to_vec(),
        seed: exec.seed,
        sample_init: args.usize("sample-init", 500),
        time_source: exec.time_source,
        rf_budget: args.f64("rf-budget", 2.0),
        max_trials: exec.max_trials,
        jobs: exec.jobs,
        chaos: exec.chaos,
        journal_dir: exec.journal_dir.clone(),
        resume: exec.resume,
        tree_cache: exec.tree_cache,
        tree_cache_bytes: exec.tree_cache_bytes,
        ..GridSpec::default()
    };
    let groups = default_groups(exec.scale(), per_group);
    let results = run_grid(&groups, &spec);
    let out_path = args.str("out", "bench_results/fig8.json");
    save_results(&out_path, &results).expect("write results json");
    eprintln!("[fig8] wrote {} results to {out_path}", results.len());

    println!("Scaled score difference (FLAML - variant); positive = full FLAML better:\n");
    let mut rows = Vec::new();
    for &budget in &budgets {
        for variant in ["roundrobin", "fulldata", "cv"] {
            let (f, v) = paired_scores(&results, ("flaml", budget), (variant, budget));
            let diffs: Vec<f64> = f.iter().zip(&v).map(|(x, y)| x - y).collect();
            if let Some(s) = box_stats(&diffs) {
                let wins = diffs.iter().filter(|d| **d >= -1e-3).count();
                rows.push(vec![
                    format!("{budget}s"),
                    variant.to_string(),
                    diffs.len().to_string(),
                    s.render(),
                    format!("{wins}/{}", diffs.len()),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "budget",
                "variant",
                "n",
                "min [q1 | median | q3] max",
                "flaml >= variant"
            ],
            &rows
        )
    );
}
