//! Figure 7 — ablation study: FLAML vs. roundrobin / fulldata / cv on one
//! binary, one multi-class and one regression task; validation error vs.
//! search time, averaged over seeds with min/max bands.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin fig7_ablation -- --budget 8 --seeds 3
//! ```

use flaml_bench::{journal_stem, render_table, Args, Method};
use flaml_synth::{binary_suite, multiclass_suite, regression_suite};

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let budget = args.f64("budget", 8.0);
    let n_seeds = args.u64("seeds", 3);
    let scale = exec.scale();
    // The paper uses MiniBooNE (binary), Dionis (multi-class), bng_pbc
    // (regression); these are the suite's counterparts.
    let datasets = vec![
        binary_suite(scale)
            .into_iter()
            .find(|d| d.name() == "miniboone-like")
            .expect("suite dataset"),
        multiclass_suite(scale)
            .into_iter()
            .find(|d| d.name() == "helena-like")
            .expect("suite dataset"),
        regression_suite(scale)
            .into_iter()
            .find(|d| d.name() == "houses-like")
            .expect("suite dataset"),
    ];

    // Error at checkpoints: fractions of the budget.
    let checkpoints = [0.125, 0.25, 0.5, 1.0];
    for data in &datasets {
        println!(
            "\n== {} ({} x {}), budget {budget}s, {n_seeds} seeds ==",
            data.name(),
            data.n_rows(),
            data.n_features()
        );
        let mut rows = Vec::new();
        for method in Method::ABLATIONS {
            // best-so-far error at each checkpoint, per seed
            let mut per_cp: Vec<Vec<f64>> = vec![Vec::new(); checkpoints.len()];
            for seed in 0..n_seeds {
                let mut cfg = exec.run_config(budget, 500);
                cfg.seed = seed;
                cfg.journal =
                    exec.journal_file(&journal_stem(data.name(), method.name(), budget, seed));
                let result = match method.run_with(data, &cfg) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("[fig7] {method} seed {seed} failed: {e}");
                        continue;
                    }
                };
                for (ci, &frac) in checkpoints.iter().enumerate() {
                    let t_limit = budget * frac;
                    let best = result
                        .trials
                        .iter()
                        .filter(|t| t.total_time <= t_limit)
                        .map(|t| t.best_error_so_far)
                        .filter(|e| e.is_finite())
                        .fold(f64::INFINITY, f64::min);
                    if best.is_finite() {
                        per_cp[ci].push(best);
                    }
                }
            }
            let mut row = vec![method.name().to_string()];
            for values in &per_cp {
                if values.is_empty() {
                    row.push("-".into());
                } else {
                    let mean = values.iter().sum::<f64>() / values.len() as f64;
                    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    row.push(format!("{mean:.4} [{min:.4},{max:.4}]"));
                }
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("method".to_string())
            .chain(
                checkpoints
                    .iter()
                    .map(|f| format!("err@{:.2}s", budget * f)),
            )
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("{}", render_table(&header_refs, &rows));
    }
}
