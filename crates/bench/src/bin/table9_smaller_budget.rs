//! Table 9 — percentage of tasks where FLAML's error is better than or
//! equal to each baseline's while FLAML uses a *smaller* time budget
//! (0.1% tolerance on the scaled score, as in the paper).
//!
//! Reads `bench_results/fig5.json` if present; otherwise runs a quick
//! grid.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin table9_smaller_budget
//! ```

use flaml_bench::grid::{default_groups, load_results, save_results};
use flaml_bench::run_grid;
use flaml_bench::{paired_scores, percent_better_or_equal, render_table, Args, GridSpec, Method};

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let path = args.str("from", "bench_results/fig5.json");
    let tolerance = args.f64("tolerance", 0.001);
    let results = match load_results(&path) {
        Some(r) => r,
        None => {
            eprintln!("[table9] {path} missing; running a quick grid");
            let spec = GridSpec {
                budgets: args.f64_list("budgets", &[0.5, 2.0, 8.0]),
                methods: Method::COMPARATIVE.to_vec(),
                seed: exec.seed,
                time_source: exec.time_source,
                rf_budget: args.f64("rf-budget", 2.0),
                max_trials: exec.max_trials,
                jobs: exec.jobs,
                chaos: exec.chaos,
                journal_dir: exec.journal_dir.clone(),
                resume: exec.resume,
                tree_cache: exec.tree_cache,
                tree_cache_bytes: exec.tree_cache_bytes,
                ..GridSpec::default()
            };
            let groups = default_groups(exec.scale(), args.usize("per-group", 2));
            let r = run_grid(&groups, &spec);
            save_results(&path, &r).expect("write results json");
            r
        }
    };

    let mut budgets: Vec<f64> = results.iter().map(|r| r.budget).collect();
    budgets.sort_by(|a, b| a.partial_cmp(b).unwrap());
    budgets.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    assert!(
        budgets.len() >= 3,
        "table 9 needs three budget levels, found {budgets:?}"
    );
    let (b0, b1, b2) = (budgets[0], budgets[1], budgets[2]);
    // The paper's columns: 1m-vs-10m, 10m-vs-1h, 1m-vs-1h.
    let pairs = [(b0, b1), (b1, b2), (b0, b2)];

    let mut rows = Vec::new();
    for base in ["bohb", "bo", "random", "hyperband"] {
        let mut row = vec![format!("FLAML vs {base}")];
        for (small, large) in pairs {
            let (f, b) = paired_scores(&results, ("flaml", small), (base, large));
            let pct = percent_better_or_equal(&f, &b, tolerance);
            row.push(format!("{pct:.0}% (n={})", f.len()));
        }
        rows.push(row);
    }
    let h0 = format!("{b0}s vs {b1}s");
    let h1 = format!("{b1}s vs {b2}s");
    let h2 = format!("{b0}s vs {b2}s");
    println!(
        "% of tasks where FLAML with the SMALLER budget is better or equal (tolerance {tolerance}):\n"
    );
    println!("{}", render_table(&["comparison", &h0, &h1, &h2], &rows));
}
