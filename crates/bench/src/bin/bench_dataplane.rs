//! Data-plane benchmark: prepare-vs-fit trial throughput with the
//! prepared-data cache on vs. off, on a 5-fold CV smoke grid.
//!
//! Two measurements per dataset:
//!
//! 1. **Purity** — the same AutoML search runs on the virtual clock with
//!    the data plane enabled and disabled; the two trial traces must be
//!    byte-identical (the plane is observationally pure — only wall time
//!    and the hit/miss counters may differ).
//! 2. **Throughput** — the trials that search actually proposed are
//!    replayed as a fixed roster, several cycles per arm after a warmup
//!    cycle (the fastest cycle is reported: interference only ever adds
//!    time). The cache-on arm executes them against a shared
//!    [`DataPlane`] in steady state (fold views and binned matrices all
//!    hit); the cache-off arm takes the copy path every trial:
//!    materialized sample and fold datasets, plus a fresh sort + quantize
//!    inside every fit. Both arms execute the identical trial sequence
//!    and must produce bit-identical losses; only the time differs.
//!
//! The default roster depth (`--max-trials 3`) keeps the workload in the
//! cold-start regime — each learner's first proposals, where FLAML's
//! low-cost-first search always begins and data preparation is a large
//! share of a trial. Deeper rosters (`--max-trials N`) shift the mix
//! toward configurations whose tree-growing cost dwarfs preparation; they
//! measure tree building, not the data plane.
//!
//! Per-dataset speedup is `secs_off / secs_on` over the same work; the
//! aggregate gate is the **geometric mean across datasets** (each dataset
//! weighted equally — a raw total-time ratio would be dominated by
//! whichever dataset has the slowest fits, i.e. by tree-growing time the
//! data plane does not touch). Totals are also reported. The binary exits
//! non-zero when the aggregate falls below `--min-speedup` (default 1.5).
//!
//! The default roster targets the hot path the cache exists for: the
//! binned GBDT learners (`--estimators lightgbm,xgboost`) on full-sample
//! 5-fold CV. Unbinned learners dilute the signal without exercising more
//! of the cache; add them back with `--estimators` to measure whole-roster
//! throughput.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin bench_dataplane
//! ```

use flaml_bench::grid::default_groups;
use flaml_bench::{Args, TelemetryCollector};
use flaml_core::{
    default_virtual_cost, run_trial_prepared, AutoMl, AutoMlResult, DataPlane, Estimator, ExecPool,
    LearnerKind, ResampleChoice, ResampleStrategy, TimeSource,
};
use flaml_data::Dataset;
use flaml_exec::Telemetry;
use flaml_metrics::Metric;
use flaml_search::Config;
use serde::Serialize;
use std::time::Instant;

/// One dataset's purity check plus cache-on vs. cache-off throughput.
#[derive(Debug, Clone, Serialize)]
struct DatasetRow {
    dataset: String,
    group: String,
    /// Trials the discovery search ran (the replay roster size).
    roster_trials: usize,
    /// Whether the cache-on and cache-off searches produced byte-identical
    /// trial traces (they must: the data plane is observationally pure).
    trace_identical: bool,
    /// Whether the replayed trials produced bit-identical losses across
    /// the two arms (they must, for the throughput numbers to compare
    /// equal work).
    replay_losses_identical: bool,
    prepared_hits: usize,
    prepared_misses: usize,
    prepared_evictions: usize,
    bytes_copied_saved: usize,
    /// Trials per timed cycle (the roster size); the timings cover one
    /// cycle (the fastest of `--cycles`).
    replay_trials: usize,
    secs_cache_off: f64,
    secs_cache_on: f64,
    trials_per_sec_off: f64,
    trials_per_sec_on: f64,
    speedup: f64,
}

/// The full benchmark report written to `bench_results/`.
#[derive(Debug, Clone, Serialize)]
struct DataplaneReport {
    rows: Vec<DatasetRow>,
    total_replay_trials: usize,
    total_secs_cache_off: f64,
    total_secs_cache_on: f64,
    /// Geometric mean of per-dataset speedups (equal dataset weight);
    /// the pass/fail gate.
    speedup: f64,
    /// Raw total-time ratio, for reference (weighted by dataset cost).
    total_time_speedup: f64,
    min_speedup: f64,
    pass: bool,
}

struct BenchSpec {
    seed: u64,
    budget: f64,
    max_trials: usize,
    estimators: Vec<LearnerKind>,
    cycles: usize,
    sampling: bool,
}

/// One replayable trial: a learner and the configuration the search
/// proposed for it, reconstructed losslessly from the trial record.
struct RosterTrial {
    est: usize,
    config: Config,
    sample_size: usize,
}

fn search_once(data: &Dataset, spec: &BenchSpec, cache: bool) -> Option<(AutoMlResult, Telemetry)> {
    let collector = TelemetryCollector::new();
    let automl = AutoMl::new()
        .time_budget(spec.budget)
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .resample(ResampleChoice::AlwaysCv)
        .max_trials(spec.max_trials)
        .seed(spec.seed)
        .estimators(spec.estimators.clone())
        .sampling(spec.sampling)
        .event_sink(collector.sink())
        .prepared_cache(cache);
    match automl.fit(data) {
        Ok(r) => Some((r, collector.finish())),
        Err(e) => {
            eprintln!("[dataplane] {}: search failed: {e}", data.name());
            None
        }
    }
}

/// Executes the roster `cycles` times (after one untimed warmup cycle)
/// with the data plane enabled or disabled. Returns the *fastest* cycle's
/// seconds — scheduler interference only ever adds time, so the minimum
/// over cycles estimates the true cost — plus the loss of every trial of
/// the first timed cycle, in execution order.
fn replay(
    data: &Dataset,
    roster: &[RosterTrial],
    estimators: &[(Estimator, flaml_search::SearchSpace)],
    spec: &BenchSpec,
    cache: bool,
    pool: &ExecPool,
) -> (f64, Vec<u64>) {
    let shuffled = data.shuffled_view(spec.seed);
    let strategy = ResampleStrategy::Cv { folds: 5 };
    let metric = Metric::default_for(data.task());
    let mut plane = DataPlane::new(shuffled, strategy, cache, 256 * 1024 * 1024);
    let run_cycle = |plane: &mut DataPlane, losses: Option<&mut Vec<u64>>| {
        let mut sink = losses;
        for t in roster {
            let (est, space) = &estimators[t.est];
            let (td, _) = plane.prepare(t.sample_size, est.max_bin(&t.config, space));
            let out = run_trial_prepared(
                &td, est, &t.config, space, strategy, metric, spec.seed, None, pool, None,
            );
            if let Some(v) = sink.as_mut() {
                v.push(out.error.to_bits());
            }
        }
    };
    run_cycle(&mut plane, None); // warmup: cache-on reaches steady state
    let mut losses = Vec::with_capacity(roster.len());
    let mut best = f64::INFINITY;
    for cycle in 0..spec.cycles {
        let started = Instant::now();
        run_cycle(
            &mut plane,
            if cycle == 0 { Some(&mut losses) } else { None },
        );
        best = best.min(started.elapsed().as_secs_f64());
    }
    (best, losses)
}

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let per_group = args.usize("per-group", if exec.full { usize::MAX } else { 2 });
    let min_speedup = args.f64("min-speedup", 1.5);
    let cycles = args.usize("cycles", 10);
    let out_path = args.str("out", "bench_results/BENCH_dataplane.json");
    let kinds: Vec<LearnerKind> = args
        .str("estimators", "lightgbm,xgboost")
        .split(',')
        .filter_map(|name| {
            let name = name.trim();
            match LearnerKind::ALL.iter().find(|k| k.name() == name) {
                Some(k) => Some(*k),
                None => {
                    eprintln!("[dataplane] unknown estimator {name:?}, skipping");
                    None
                }
            }
        })
        .collect();
    let spec = BenchSpec {
        seed: exec.seed,
        budget: args.f64("budget", 50.0),
        max_trials: exec.max_trials.unwrap_or(3),
        estimators: kinds.clone(),
        cycles,
        sampling: args.flag("sampling"),
    };
    let pool = ExecPool::new(1);

    let mut rows: Vec<DatasetRow> = Vec::new();
    for (group, datasets) in default_groups(exec.scale(), per_group) {
        for data in &datasets {
            let Some((off_result, _)) = search_once(data, &spec, false) else {
                continue;
            };
            let Some((on_result, telemetry)) = search_once(data, &spec, true) else {
                continue;
            };
            let off_trace = serde_json::to_string(&off_result.trials).expect("serialize trials");
            let on_trace = serde_json::to_string(&on_result.trials).expect("serialize trials");

            let estimators: Vec<(Estimator, flaml_search::SearchSpace)> = kinds
                .iter()
                .map(|k| {
                    let e = Estimator::Builtin(*k);
                    let space = e.space(data.n_rows());
                    (e, space)
                })
                .collect();
            let roster: Vec<RosterTrial> = on_result
                .trials
                .iter()
                .filter(|t| t.error.is_finite() && !t.config_values.is_empty())
                .filter_map(|t| {
                    let est = kinds.iter().position(|k| k.name() == t.learner)?;
                    Some(RosterTrial {
                        est,
                        config: Config::from(t.config_values.clone()),
                        sample_size: t.sample_size,
                    })
                })
                .collect();
            if roster.is_empty() {
                eprintln!(
                    "[dataplane] {group}/{}: empty roster, skipping",
                    data.name()
                );
                continue;
            }

            let (off_secs, off_losses) = replay(data, &roster, &estimators, &spec, false, &pool);
            let (on_secs, on_losses) = replay(data, &roster, &estimators, &spec, true, &pool);
            let replay_trials = roster.len();
            let row = DatasetRow {
                dataset: data.name().to_string(),
                group: group.to_string(),
                roster_trials: roster.len(),
                trace_identical: off_trace == on_trace,
                replay_losses_identical: off_losses == on_losses,
                prepared_hits: telemetry.prepared_hits,
                prepared_misses: telemetry.prepared_misses,
                prepared_evictions: telemetry.prepared_evictions,
                bytes_copied_saved: telemetry.bytes_copied_saved,
                replay_trials,
                secs_cache_off: off_secs,
                secs_cache_on: on_secs,
                trials_per_sec_off: replay_trials as f64 / off_secs.max(1e-9),
                trials_per_sec_on: replay_trials as f64 / on_secs.max(1e-9),
                speedup: off_secs / on_secs.max(1e-9),
            };
            eprintln!(
                "[dataplane] {group}/{}: {} trials replayed, {:.2}s off / {:.2}s on, {:.2}x, \
                 {} hits / {} misses, trace_identical={} losses_identical={}",
                row.dataset,
                row.replay_trials,
                row.secs_cache_off,
                row.secs_cache_on,
                row.speedup,
                row.prepared_hits,
                row.prepared_misses,
                row.trace_identical,
                row.replay_losses_identical,
            );
            rows.push(row);
        }
    }

    let total_trials: usize = rows.iter().map(|r| r.replay_trials).sum();
    let total_off: f64 = rows.iter().map(|r| r.secs_cache_off).sum();
    let total_on: f64 = rows.iter().map(|r| r.secs_cache_on).sum();
    let geomean = if rows.is_empty() {
        0.0
    } else {
        (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let pure = rows
        .iter()
        .all(|r| r.trace_identical && r.replay_losses_identical);
    let report = DataplaneReport {
        total_replay_trials: total_trials,
        total_secs_cache_off: total_off,
        total_secs_cache_on: total_on,
        speedup: geomean,
        total_time_speedup: total_off / total_on.max(1e-9),
        min_speedup,
        pass: geomean >= min_speedup && pure && total_trials > 0,
        rows,
    };

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let storage = flaml_core::disk();
    flaml_core::atomic_write_file(
        storage.as_ref(),
        std::path::Path::new(&out_path),
        json.as_bytes(),
    )
    .expect("write results json");

    println!(
        "data plane: {total_trials} trials replayed per arm, {:.2} trials/sec without cache, \
         {:.2} trials/sec with cache => {:.2}x geomean speedup (need >= {min_speedup}x)",
        total_trials as f64 / total_off.max(1e-9),
        total_trials as f64 / total_on.max(1e-9),
        report.speedup,
    );
    eprintln!("[dataplane] wrote {out_path}");
    if !pure {
        eprintln!("[dataplane] FAIL: cache-on and cache-off runs diverged");
    }
    if !report.pass {
        std::process::exit(1);
    }
}
