//! Binary-artifact benchmark: blob open-to-first-predict speedup over
//! the JSON artifact, layout-option correctness, and cross-process
//! page sharing.
//!
//! Per dataset, the serving roster (GBDT, random forest, linear,
//! stacked) is fitted once and each model is exported both ways — the
//! portable JSON document and the mmap-able binary blob. Three checks:
//!
//! 1. **Bit-exactness across every layout** — for all four
//!    [`BlobOptions`] combinations (hot-first node order x quantized
//!    thresholds, each on/off) the opened blob's predictions must equal
//!    the JSON-loaded [`CompiledModel`]'s bit-for-bit.
//! 2. **Open-to-first-predict latency** — the time from cold handle to
//!    the first prediction on a small probe request, JSON
//!    (`load` + predict) vs blob (`open` + predict). The gate is the
//!    geometric-mean speedup across dataset x learner cells (default
//!    `--min-speedup 5`, derated in CI): the blob must make model
//!    loading essentially free next to a JSON parse.
//! 3. **Page sharing** — two child processes map the same blob
//!    (`--map-probe PATH`, an internal mode) and the second's
//!    `/proc/self/smaps` must show `Pss` well under `Rss` for the
//!    mapping: the kernel shares the read-only pages instead of copying
//!    them per process. Skipped (reported, not failed) when the blob
//!    fell back to a heap read — e.g. a filesystem that cannot mmap.
//!
//! The report is written to `--out` (default
//! `bench_results/BENCH_blob.json`).
//!
//! ```text
//! cargo run -p flaml-bench --release --bin bench_blob -- --min-speedup 5
//! ```

use flaml_bench::grid::default_groups;
use flaml_bench::roster::{fastest, fit_roster, pred_bits, tile_dataset};
use flaml_bench::Args;
use flaml_core::{encode_blob, save_blob, BlobModel, BlobOptions, CompiledModel};
use flaml_data::Dataset;
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// One dataset x learner blob-vs-JSON measurement.
#[derive(Debug, Clone, Serialize)]
struct BlobRow {
    dataset: String,
    group: String,
    learner: String,
    json_bytes: usize,
    blob_bytes: usize,
    /// Every [`BlobOptions`] combination predicted bit-identically to
    /// the JSON-loaded model.
    bits_identical: bool,
    /// The tuned blob actually got the hot-first node order.
    hot_first: bool,
    /// The tuned blob actually got the quantized-threshold section.
    quantized: bool,
    /// Fastest JSON load + first-predict cycle.
    secs_json: f64,
    /// Fastest blob open + first-predict cycle.
    secs_blob: f64,
    speedup: f64,
}

/// The cross-process page-sharing probe result.
#[derive(Debug, Clone, Serialize)]
struct PageShare {
    /// Whether the probe ran against a real mmap (false = heap
    /// fallback or unreadable smaps; the check is skipped, not failed).
    probed: bool,
    /// Second mapper's resident kB for the blob mapping.
    rss_kb: u64,
    /// Second mapper's proportional-set kB for the same mapping.
    pss_kb: u64,
    /// `pss <= 0.7 * rss`: the pages are genuinely shared.
    shared: bool,
    note: String,
}

/// The full benchmark report.
#[derive(Debug, Clone, Serialize)]
struct BlobReport {
    rows: Vec<BlobRow>,
    page_share: PageShare,
    /// Geometric mean of per-cell open-to-first-predict speedups.
    speedup: f64,
    min_speedup: f64,
    pass: bool,
}

/// The first `rows` rows of `data` — a small serving request so the
/// open-to-first-predict timing is dominated by artifact opening, not
/// by inference.
fn head(data: &Dataset, rows: usize) -> Dataset {
    let n = data.n_rows().min(rows.max(1));
    let cols: Vec<Vec<f64>> = data.columns().iter().map(|c| c[..n].to_vec()).collect();
    Dataset::new(data.name(), data.task(), cols, data.target()[..n].to_vec())
        .expect("probe dataset")
}

/// Sums `Rss:`/`Pss:` over every `/proc/self/smaps` block whose header
/// names `path`. Returns zeros when smaps is unavailable.
fn smaps_for(path: &str) -> (u64, u64) {
    let text = std::fs::read_to_string("/proc/self/smaps").unwrap_or_default();
    let kb = |line: &str| {
        line.split_whitespace()
            .next()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    let (mut rss, mut pss, mut in_block) = (0, 0, false);
    for line in text.lines() {
        if line.contains(path) {
            in_block = true;
        } else if in_block {
            if let Some(v) = line.strip_prefix("Rss:") {
                rss += kb(v);
            } else if let Some(v) = line.strip_prefix("Pss:") {
                pss += kb(v);
            } else if line.starts_with("VmFlags:") {
                in_block = false;
            }
        }
    }
    (rss, pss)
}

/// The `--map-probe` child: map the blob, touch every page, report the
/// mapping's residency as one JSON line, and with `--hold` keep the
/// mapping alive until stdin closes (so a second prober overlaps it).
fn run_map_probe(path: &str, hold: bool) -> ! {
    let blob = BlobModel::open(path).expect("map-probe: open blob");
    // Materializing the slabs reads every data page into the page
    // cache and this process's resident set.
    std::hint::black_box(blob.to_compiled());
    let (rss_kb, pss_kb) = smaps_for(path);
    println!(
        "{{\"is_mmap\":{},\"rss_kb\":{rss_kb},\"pss_kb\":{pss_kb}}}",
        u8::from(blob.is_mmap())
    );
    std::io::stdout().flush().expect("flush probe line");
    if hold {
        let mut line = String::new();
        let _ = std::io::stdin().read_line(&mut line);
    }
    std::process::exit(0);
}

/// Scrapes `"key":N` out of a probe child's JSON line.
fn probe_field(line: &str, key: &str) -> u64 {
    line.split(&format!("\"{key}\":"))
        .nth(1)
        .map(|tail| {
            tail.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

/// Spawns two children mapping `blob_path` concurrently and checks the
/// second one's smaps: with the first still holding the mapping, the
/// shared pages split, so `Pss` must land well under `Rss`.
fn page_share_probe(blob_path: &Path) -> PageShare {
    let skip = |note: String| PageShare {
        probed: false,
        rss_kb: 0,
        pss_kb: 0,
        shared: false,
        note,
    };
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => return skip(format!("current_exe failed: {e}")),
    };
    let mut holder = match Command::new(&exe)
        .arg("--map-probe")
        .arg(blob_path)
        .arg("--hold")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return skip(format!("spawning holder failed: {e}")),
    };
    // The holder's report line doubles as the "mapped and resident"
    // barrier; it then blocks on stdin with the mapping alive.
    let mut ready = String::new();
    let holder_ok = holder
        .stdout
        .take()
        .map(BufReader::new)
        .and_then(|mut r| r.read_line(&mut ready).ok())
        .is_some();
    let measured = Command::new(&exe)
        .arg("--map-probe")
        .arg(blob_path)
        .output();
    drop(holder.stdin.take()); // release the holder
    let _ = holder.wait();
    let out = match measured {
        Ok(out) if out.status.success() => String::from_utf8_lossy(&out.stdout).into_owned(),
        Ok(out) => return skip(format!("prober exited with {}", out.status)),
        Err(e) => return skip(format!("spawning prober failed: {e}")),
    };
    if !holder_ok || probe_field(&ready, "is_mmap") == 0 || probe_field(&out, "is_mmap") == 0 {
        return skip("blob did not mmap (heap fallback); sharing not measurable".into());
    }
    let rss_kb = probe_field(&out, "rss_kb");
    let pss_kb = probe_field(&out, "pss_kb");
    if rss_kb == 0 {
        return skip("smaps reported no resident pages for the mapping".into());
    }
    PageShare {
        probed: true,
        rss_kb,
        pss_kb,
        // Fully shared between two mappers would be pss = rss/2 plus
        // per-page rounding; 0.7 leaves headroom for unshared tails.
        shared: pss_kb * 10 <= rss_kb * 7,
        note: format!("second mapper: rss {rss_kb} kB, pss {pss_kb} kB"),
    }
}

/// The four layout combinations, tuned last so the timed blob (written
/// by [`save_blob`] with [`BlobOptions::tuned`]) is the final state on
/// disk.
fn option_grid() -> [BlobOptions; 4] {
    [
        BlobOptions::default(),
        BlobOptions {
            hot_first: true,
            quantize: false,
        },
        BlobOptions {
            hot_first: false,
            quantize: true,
        },
        BlobOptions::tuned(),
    ]
}

fn main() {
    let args = Args::parse();
    if let Some(path) = args.opt_str("map-probe") {
        run_map_probe(&path, args.flag("hold"));
    }
    let exec = args.exec();
    let per_group = args.usize("per-group", if exec.full { usize::MAX } else { 2 });
    let min_speedup = args.f64("min-speedup", 5.0);
    let cycles = args.usize("cycles", 20);
    let probe_rows = args.usize("probe-rows", 64);
    let out_path = args.str("out", "bench_results/BENCH_blob.json");
    let scratch = std::env::temp_dir().join(format!("flaml_bench_blob_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let mut rows: Vec<BlobRow> = Vec::new();
    let mut biggest_blob: Option<(usize, PathBuf)> = None;
    for (group, datasets) in default_groups(exec.scale(), per_group) {
        for data in &datasets {
            let request = tile_dataset(data, probe_rows);
            let probe = head(&request, probe_rows);
            for (learner, model) in fit_roster(data, exec.seed) {
                let compiled = match CompiledModel::compile(&model) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("[blob] {group}/{}: {learner}: {e}", data.name());
                        continue;
                    }
                };
                let json_path = scratch.join(format!("{}_{learner}.artifact.json", data.name()));
                let blob_path = scratch.join(format!("{}_{learner}.artifact.blob", data.name()));
                compiled.save(&json_path).expect("save json artifact");
                save_blob(&compiled, &blob_path, BlobOptions::tuned()).expect("save blob");

                // Reference bits come from the JSON round trip — the
                // portable format is the ground truth the blob must hit.
                let reference = CompiledModel::load(&json_path).expect("load json artifact");
                let want = pred_bits(&reference.predict(&probe));
                let mut bits_identical = true;
                for opts in option_grid() {
                    let blob =
                        BlobModel::from_bytes(&encode_blob(&compiled, opts)).expect("open blob");
                    if pred_bits(&blob.predict(&probe)) != want {
                        eprintln!(
                            "[blob] {group}/{}: {learner}: predictions diverged with {opts:?}",
                            data.name()
                        );
                        bits_identical = false;
                    }
                }

                let tuned = BlobModel::open(&blob_path).expect("open tuned blob");
                let (hot_first, quantized) = (tuned.hot_first(), tuned.quantized());
                let blob_bytes = tuned.n_bytes();
                drop(tuned);
                let json_bytes =
                    std::fs::metadata(&json_path).expect("json metadata").len() as usize;
                if biggest_blob.as_ref().is_none_or(|(n, _)| blob_bytes > *n) {
                    biggest_blob = Some((blob_bytes, blob_path.clone()));
                }

                let secs_json = fastest(cycles, || {
                    let m = CompiledModel::load(&json_path).expect("timed json load");
                    std::hint::black_box(m.predict(&probe));
                });
                let secs_blob = fastest(cycles, || {
                    let m = BlobModel::open(&blob_path).expect("timed blob open");
                    std::hint::black_box(m.predict(&probe));
                });
                let row = BlobRow {
                    dataset: data.name().to_string(),
                    group: group.to_string(),
                    learner: learner.to_string(),
                    json_bytes,
                    blob_bytes,
                    bits_identical,
                    hot_first,
                    quantized,
                    secs_json,
                    secs_blob,
                    speedup: secs_json / secs_blob.max(1e-9),
                };
                eprintln!(
                    "[blob] {group}/{}: {learner}: {} B json -> {} B blob, open+predict {:.1}us \
                     json vs {:.1}us blob ({:.1}x), bits={} hot_first={} quantized={}",
                    row.dataset,
                    row.json_bytes,
                    row.blob_bytes,
                    row.secs_json * 1e6,
                    row.secs_blob * 1e6,
                    row.speedup,
                    row.bits_identical,
                    row.hot_first,
                    row.quantized,
                );
                rows.push(row);
            }
        }
    }

    let page_share = match &biggest_blob {
        Some((_, path)) => page_share_probe(path),
        None => PageShare {
            probed: false,
            rss_kb: 0,
            pss_kb: 0,
            shared: false,
            note: "no blob written".into(),
        },
    };

    let correct = rows.iter().all(|r| r.bits_identical);
    let geomean = if rows.is_empty() {
        0.0
    } else {
        (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let report = BlobReport {
        page_share: page_share.clone(),
        speedup: geomean,
        min_speedup,
        pass: correct
            && !rows.is_empty()
            && geomean >= min_speedup
            && (!page_share.probed || page_share.shared),
        rows,
    };

    if let Some(dir) = Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let storage = flaml_core::disk();
    flaml_core::atomic_write_file(storage.as_ref(), Path::new(&out_path), json.as_bytes())
        .expect("write results json");
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "blob: {} model/dataset cells, {:.1}x geomean open-to-first-predict speedup (need >= \
         {min_speedup}x), bits_identical={}, page_share={}",
        report.rows.len(),
        report.speedup,
        correct,
        if !report.page_share.probed {
            format!("skipped ({})", report.page_share.note)
        } else if report.page_share.shared {
            format!("shared ({})", report.page_share.note)
        } else {
            format!("NOT shared ({})", report.page_share.note)
        },
    );
    eprintln!("[blob] wrote {out_path}");
    if !correct {
        eprintln!("[blob] FAIL: a blob layout predicted differently from the JSON artifact");
    }
    if report.page_share.probed && !report.page_share.shared {
        eprintln!("[blob] FAIL: two mappers did not share the blob's pages");
    }
    if !report.pass {
        std::process::exit(1);
    }
}
