//! Service load generator and crash-recovery verifier for
//! `flaml-server`.
//!
//! **Load phase** (default): against a running server, per tenant —
//! publish a locally-compiled artifact into a `static` slot, submit
//! `--fits` search requests, then drive `--requests` prediction
//! requests of `--rows` rows each, measuring *client-side* latency.
//! Unless `--no-wait`, every accepted search is then polled to a
//! terminal state. The run fails (exit 1) when prediction p99 exceeds
//! `--max-p99-ms`, throughput falls below `--min-rows-per-sec`, any
//! request errors, or any awaited search fails — so the service's
//! mixed fit/predict path is a gated benchmark, not a demo.
//!
//! **Verify phase** (`--verify`): for every request sidecar under
//! `--root`, wait for the server to report the search finished, then
//! re-run the *same* request in-process (sidecars and the server share
//! [`flaml_server::FitRequest::to_automl`], so there is one
//! construction path) and byte-compare canonical journal bytes. This
//! is the crash-recovery gate: the CI smoke test kills the server
//! mid-search, restarts it, and runs `--verify` to prove the resumed
//! traces are byte-identical to uninterrupted runs.
//!
//! The JSON report lands in `--out`
//! (default `bench_results/BENCH_server.json`).
//!
//! ```text
//! flaml-server --port 8700 --root state &
//! cargo run -p flaml-bench --release --bin bench_server -- \
//!     --port 8700 --tenants 2 --fits 1 --requests 200
//! cargo run -p flaml-bench --release --bin bench_server -- \
//!     --port 8700 --root state --verify
//! ```

use flaml_bench::Args;
use flaml_core::Journal;
use flaml_server::{DatasetPayload, FitAccepted, FitRequest, PredictRequest, SearchStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One-shot HTTP request; returns `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream
        .write_all(body.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| e.to_string())?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader
        .read_to_string(&mut body)
        .map_err(|e| e.to_string())?;
    Ok((status, body))
}

/// Deterministic binary-classification payload (same generator family
/// as the serving benches: two informative features, smooth boundary).
fn payload(n: usize, seed: u64) -> DatasetPayload {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(x0[i] * 1.5 + (x1[i] - 0.4).powi(2) * 3.0 > 0.9))
        .collect();
    DatasetPayload {
        name: format!("bench-server-{seed}"),
        task: "binary".into(),
        columns: vec![x0, x1],
        target: y,
    }
}

fn fit_request(seed: u64, budget: f64, max_trials: usize) -> FitRequest {
    FitRequest {
        slot: "searched".into(),
        time_budget: budget,
        max_trials: Some(max_trials),
        seed,
        estimators: vec!["lightgbm".into(), "rf".into(), "lr".into()],
        sample_size_init: Some(100),
        slice_trials: Some(4),
        dataset: payload(400, seed),
    }
}

/// The load-phase report written to `bench_results/`.
#[derive(Debug, Serialize)]
struct LoadReport {
    tenants: usize,
    fits_submitted: usize,
    fits_accepted: usize,
    /// Typed 429s — admission control working, not an error.
    fits_rejected: usize,
    predict_requests: usize,
    rows_per_request: usize,
    predict_errors: usize,
    p50_ms: f64,
    p99_ms: f64,
    rows_per_sec: f64,
    max_p99_ms: f64,
    min_rows_per_sec: f64,
    searches_finished: usize,
    searches_failed: usize,
    waited: bool,
    pass: bool,
}

/// The verify-phase report.
#[derive(Debug, Serialize)]
struct VerifyReport {
    searches: usize,
    identical: usize,
    mismatched: Vec<String>,
    pass: bool,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn await_terminal(
    addr: &str,
    tenant: &str,
    id: &str,
    wait_secs: u64,
) -> Result<SearchStatus, String> {
    let deadline = Instant::now() + Duration::from_secs(wait_secs);
    loop {
        let (status, body) = http(addr, "GET", &format!("/tenants/{tenant}/searches/{id}"), "")?;
        if status != 200 {
            return Err(format!("status poll {tenant}/{id} -> {status}: {body}"));
        }
        let parsed: SearchStatus =
            serde_json::from_str(&body).map_err(|e| format!("bad status body: {e}"))?;
        if parsed.state == "finished" || parsed.state == "failed" {
            return Ok(parsed);
        }
        if Instant::now() > deadline {
            return Err(format!(
                "search {tenant}/{id} still {:?} after {wait_secs}s",
                parsed.state
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn write_report<T: Serialize>(out_path: &str, report: &T) {
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let json = serde_json::to_string_pretty(report).expect("serialize report");
    let storage = flaml_core::disk();
    flaml_core::atomic_write_file(
        storage.as_ref(),
        std::path::Path::new(out_path),
        json.as_bytes(),
    )
    .expect("write results json");
    eprintln!("[server] wrote {out_path}");
}

fn run_load(args: &Args, addr: &str, out_path: &str) {
    let exec = args.exec();
    let tenants: Vec<String> = (0..exec.tenants).map(|i| format!("t{i}")).collect();
    let fits = args.usize("fits", 1);
    let requests = args.usize("requests", 200);
    let rows = args.usize("rows", 256);
    let budget = args.f64("budget", 5.0);
    let max_trials = exec.max_trials.unwrap_or(10);
    let wait_secs = args.usize("wait-secs", 180) as u64;
    let max_p99_ms = args.f64("max-p99-ms", 50.0);
    let min_rows_per_sec = args.f64("min-rows-per-sec", 20_000.0);
    let no_wait = args.flag("no-wait");

    // A model every tenant can predict against immediately: fit a tiny
    // search locally, compile, publish into each tenant's static slot.
    let seed_request = fit_request(exec.seed, budget, 3);
    let artifact = seed_request
        .to_automl()
        .expect("local automl")
        .fit(&seed_request.to_dataset().expect("local dataset"))
        .expect("local fit")
        .compile()
        .expect("local compile")
        .to_artifact_string();
    for tenant in &tenants {
        let (status, body) = http(
            addr,
            "POST",
            &format!("/tenants/{tenant}/slots/static"),
            &artifact,
        )
        .expect("publish static slot");
        assert_eq!(status, 200, "publishing static slot failed: {body}");
    }

    // Fit stream: round-robin across tenants; 429s are recorded, not
    // fatal (that is admission control doing its job under load).
    let mut accepted: Vec<(String, String)> = Vec::new();
    let mut rejected = 0usize;
    let mut submitted = 0usize;
    for round in 0..fits {
        for (t, tenant) in tenants.iter().enumerate() {
            let request = fit_request(
                exec.seed + 1 + (round * tenants.len() + t) as u64,
                budget,
                max_trials,
            );
            let body = serde_json::to_string(&request).expect("serialize fit");
            let (status, body) =
                http(addr, "POST", &format!("/tenants/{tenant}/fit"), &body).expect("submit fit");
            submitted += 1;
            match status {
                202 => {
                    let ok: FitAccepted = serde_json::from_str(&body).expect("202 body");
                    accepted.push((tenant.clone(), ok.id));
                }
                429 => rejected += 1,
                other => panic!("fit -> {other}: {body}"),
            }
        }
    }

    // Predict stream under the concurrent fit load, client-side timed.
    let predict_body = {
        let mut rng = StdRng::seed_from_u64(exec.seed ^ 0x9e37);
        let columns: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..rows).map(|_| rng.gen::<f64>()).collect())
            .collect();
        serde_json::to_string(&PredictRequest {
            slot: "static".into(),
            columns,
        })
        .expect("serialize predict")
    };
    let mut latencies = Vec::with_capacity(requests);
    let mut predict_errors = 0usize;
    let started = Instant::now();
    for i in 0..requests {
        let tenant = &tenants[i % tenants.len()];
        let t0 = Instant::now();
        match http(
            addr,
            "POST",
            &format!("/tenants/{tenant}/predict"),
            &predict_body,
        ) {
            Ok((200, _)) => latencies.push(t0.elapsed().as_secs_f64() * 1e3),
            Ok((status, body)) => {
                eprintln!("[server] predict -> {status}: {body}");
                predict_errors += 1;
            }
            Err(e) => {
                eprintln!("[server] predict error: {e}");
                predict_errors += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50_ms = percentile(&latencies, 0.50);
    let p99_ms = percentile(&latencies, 0.99);
    let rows_per_sec = if elapsed > 0.0 {
        (latencies.len() * rows) as f64 / elapsed
    } else {
        0.0
    };

    // Drain the searches so the journals are complete for --verify.
    let mut finished = 0usize;
    let mut failed = 0usize;
    if !no_wait {
        for (tenant, id) in &accepted {
            match await_terminal(addr, tenant, id, wait_secs) {
                Ok(s) if s.state == "finished" => finished += 1,
                Ok(s) => {
                    eprintln!("[server] search {tenant}/{id} failed: {:?}", s.error);
                    failed += 1;
                }
                Err(e) => {
                    eprintln!("[server] {e}");
                    failed += 1;
                }
            }
        }
    }

    let pass = predict_errors == 0
        && !latencies.is_empty()
        && p99_ms <= max_p99_ms
        && rows_per_sec >= min_rows_per_sec
        && failed == 0;
    let report = LoadReport {
        tenants: tenants.len(),
        fits_submitted: submitted,
        fits_accepted: accepted.len(),
        fits_rejected: rejected,
        predict_requests: requests,
        rows_per_request: rows,
        predict_errors,
        p50_ms,
        p99_ms,
        rows_per_sec,
        max_p99_ms,
        min_rows_per_sec,
        searches_finished: finished,
        searches_failed: failed,
        waited: !no_wait,
        pass,
    };
    write_report(out_path, &report);
    println!(
        "server load: {} tenants, {}/{} fits accepted ({} admission-rejected), \
         predict p50 {:.3}ms p99 {:.3}ms (max {max_p99_ms}ms), {:.0} rows/sec \
         (min {min_rows_per_sec}), searches finished={finished} failed={failed}",
        report.tenants,
        report.fits_accepted,
        report.fits_submitted,
        report.fits_rejected,
        p50_ms,
        p99_ms,
        rows_per_sec,
    );
    if !pass {
        eprintln!("[server] FAIL: latency/throughput gate or search failure (see report)");
        std::process::exit(1);
    }
}

fn run_verify(args: &Args, addr: &str, root: &std::path::Path, out_path: &str) {
    let wait_secs = args.usize("wait-secs", 180) as u64;
    let mut searches = 0usize;
    let mut identical = 0usize;
    let mut mismatched = Vec::new();
    let tenant_dirs = std::fs::read_dir(root).expect("read state root");
    for entry in tenant_dirs.filter_map(|e| e.ok()) {
        if !entry.path().is_dir() {
            continue;
        }
        let tenant = entry.file_name().to_string_lossy().into_owned();
        let mut sidecars: Vec<std::path::PathBuf> = std::fs::read_dir(entry.path())
            .expect("read tenant dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".request.json"))
            })
            .collect();
        sidecars.sort();
        for sidecar in sidecars {
            let id = sidecar
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".request.json"))
                .expect("sidecar name")
                .to_string();
            searches += 1;
            let label = format!("{tenant}/{id}");
            // The server must finish the (possibly resumed) search.
            match await_terminal(addr, &tenant, &id, wait_secs) {
                Ok(s) if s.state == "finished" => {}
                Ok(s) => {
                    mismatched.push(format!("{label}: state {} ({:?})", s.state, s.error));
                    continue;
                }
                Err(e) => {
                    mismatched.push(format!("{label}: {e}"));
                    continue;
                }
            }
            // Re-run the identical request in-process and byte-compare.
            let request: FitRequest =
                serde_json::from_str(&std::fs::read_to_string(&sidecar).expect("read sidecar"))
                    .expect("parse sidecar");
            let ref_path = std::env::temp_dir().join(format!(
                "bench_server_ref_{}_{tenant}_{id}.jsonl",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&ref_path);
            let reference = request
                .to_automl()
                .expect("sidecar automl")
                .journal(&ref_path)
                .fit(&request.to_dataset().expect("sidecar dataset"))
                .map(|_| {
                    Journal::read(&ref_path)
                        .expect("reference journal")
                        .canonical_bytes()
                });
            let _ = std::fs::remove_file(&ref_path);
            let served = Journal::read(entry.path().join(format!("{id}.jsonl")))
                .expect("server journal")
                .canonical_bytes();
            match reference {
                Ok(reference) if reference == served => identical += 1,
                Ok(_) => mismatched.push(format!("{label}: journal bytes diverged")),
                Err(e) => mismatched.push(format!("{label}: reference run failed: {e}")),
            }
        }
    }
    let pass = searches > 0 && mismatched.is_empty();
    let report = VerifyReport {
        searches,
        identical,
        mismatched: mismatched.clone(),
        pass,
    };
    write_report(out_path, &report);
    println!(
        "server verify: {identical}/{searches} searches byte-identical to in-process reference runs"
    );
    if !pass {
        for m in &mismatched {
            eprintln!("[server] FAIL: {m}");
        }
        if searches == 0 {
            eprintln!(
                "[server] FAIL: no request sidecars under {}",
                root.display()
            );
        }
        std::process::exit(1);
    }
}

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let addr = args.str("addr", &format!("127.0.0.1:{}", exec.port));
    if args.flag("verify") {
        let root = std::path::PathBuf::from(args.str("root", "flaml-server-state"));
        let out_path = args.str("out", "bench_results/BENCH_server_verify.json");
        run_verify(&args, &addr, &root, &out_path);
    } else {
        let out_path = args.str("out", "bench_results/BENCH_server.json");
        run_load(&args, &addr, &out_path);
    }
}
