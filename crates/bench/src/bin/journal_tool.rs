//! Inspect, verify, and export crash-safe trial journals written by
//! `--journal` runs (see [`flaml_core::AutoMl::journal`]).
//!
//! ```text
//! journal_tool inspect <journal.jsonl>
//! journal_tool verify-replay <journal.jsonl> [--test-ratio 0.2]
//! journal_tool export-csv <journal.jsonl> [--out trials.csv]
//! ```
//!
//! `inspect` prints the header, the committed trials, the per-learner
//! best configurations, and — when `<stem>.artifact.blob` or
//! `<stem>.artifact.json` siblings exist next to the journal (the
//! server's completion artifacts) — each artifact's format, size and
//! fingerprint. `export-csv` renders the trial records as CSV.
//! `verify-replay` is the strong check: it reconstructs the run's
//! settings from the journal header, locates the dataset among the
//! built-in synthetic suites (by name, then by the header's content
//! fingerprint — both the full dataset and its standard train split are
//! tried), replays the journal through a fresh controller on a copy, and
//! compares the replayed trace bit-for-bit against the journaled one.

use flaml_bench::{holdout_split, render_table, Args};
use flaml_core::{
    default_virtual_cost, AutoMl, Journal, JournalHeader, LearnerKind, LearnerSelection,
    ResampleChoice, TimeSource,
};
use flaml_data::Dataset;
use flaml_metrics::Metric;
use flaml_synth::{binary_suite, multiclass_suite, regression_suite, SuiteScale};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (argv.first(), argv.get(1)) {
        (Some(c), Some(p)) if !p.starts_with("--") => (c.as_str(), p.as_str()),
        _ => {
            eprintln!(
                "usage: journal_tool <inspect|verify-replay|export-csv> <journal.jsonl> [flags]"
            );
            std::process::exit(2);
        }
    };
    let args = Args::from_tokens(argv.iter().skip(2).cloned());
    let journal = match Journal::read(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("[journal-tool] cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match cmd {
        "inspect" => inspect(&journal, path),
        "export-csv" => export_csv(&journal, args.opt_str("out")),
        "verify-replay" => {
            if !verify_replay(&journal, path, args.f64("test-ratio", 0.2)) {
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown subcommand {other}; expected inspect, verify-replay or export-csv");
            std::process::exit(2);
        }
    }
}

fn inspect(journal: &Journal, path: &str) {
    let h = &journal.header;
    println!("run:");
    println!("  schema         v{}", h.schema_version);
    println!("  seed           {}", h.seed);
    println!("  budget         {}s ({})", h.time_budget, h.time_source);
    println!(
        "  max_trials     {}",
        h.max_trials.map_or("-".into(), |n| n.to_string())
    );
    println!(
        "  sampling       {} (init {})",
        h.sampling, h.sample_size_init
    );
    println!(
        "  selection      {} / resample {} / metric {}",
        h.learner_selection, h.resample, h.metric
    );
    println!("  estimators     {}", h.estimators.join(", "));
    println!(
        "dataset: {} ({}, {} x {}, fingerprint {:#018x})",
        h.dataset.name, h.dataset.task, h.dataset.rows, h.dataset.features, h.dataset.fingerprint
    );
    println!(
        "journal: {} committed trials, {} committed bytes, {:.4}s budget spent",
        journal.trials.len(),
        journal.committed_bytes,
        journal.spent_budget()
    );
    describe_artifacts(path);
    println!();

    let rows: Vec<Vec<String>> = journal
        .trials
        .iter()
        .map(|t| {
            vec![
                t.iter.to_string(),
                t.learner.clone(),
                t.mode.clone(),
                t.status.clone(),
                t.sample_size.to_string(),
                if t.loss.is_finite() {
                    format!("{:.6}", t.loss)
                } else {
                    "fail".into()
                },
                format!("{:.4}", t.cost),
                format!("{:.4}", t.total_time),
                t.attempts.to_string(),
                if t.improved {
                    "*".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "iter", "learner", "mode", "status", "sample", "loss", "cost_s", "time_s",
                "retries", "best"
            ],
            &rows
        )
    );

    match journal.best_trial() {
        Some(best) => println!(
            "\nbest: trial {} — {} (loss {:.6}) {}",
            best.iter, best.learner, best.loss, best.config
        ),
        None => println!("\nbest: none (no finite-loss trial committed)"),
    }
    let configs = journal.best_configs();
    if !configs.is_empty() {
        println!("per-learner best (warm-start seeds):");
        for (learner, values, loss) in configs {
            println!("  {learner:12} loss {loss:.6}  values {values:?}");
        }
    }
}

/// Prints one line per completion-artifact sibling of the journal
/// (`<stem>.artifact.blob` / `<stem>.artifact.json` — the files the
/// server writes next to `<stem>.jsonl` when a search finishes), with
/// format, size and fingerprint. Unreadable artifacts are reported,
/// never fatal.
fn describe_artifacts(journal_path: &str) {
    use flaml_core::{ArtifactFormat, BlobModel, CompiledModel};
    let stem = std::path::Path::new(journal_path).with_extension("");
    for format in ArtifactFormat::ALL {
        let sibling = std::path::PathBuf::from(format!("{}{}", stem.display(), format.suffix()));
        let Ok(meta) = std::fs::metadata(&sibling) else {
            continue;
        };
        let described = match format {
            ArtifactFormat::Blob => BlobModel::open(&sibling).map(|b| {
                format!(
                    "fingerprint {:#018x}, {} node order, {} thresholds",
                    b.fingerprint(),
                    if b.hot_first() { "hot-first" } else { "export" },
                    if b.quantized() { "f32-exact" } else { "f64" },
                )
            }),
            ArtifactFormat::Json => CompiledModel::load(&sibling).map(|m| {
                let payload = serde_json::to_string(&m).expect("serialize artifact");
                format!("fingerprint {:#018x}", flaml_serve::fingerprint(&payload))
            }),
        };
        match described {
            Ok(detail) => println!(
                "artifact: {} ({format}, {} bytes, {detail})",
                sibling.display(),
                meta.len()
            ),
            Err(e) => println!("artifact: {} ({format}) UNREADABLE: {e}", sibling.display()),
        }
    }
}

fn export_csv(journal: &Journal, out: Option<String>) {
    let csv = flaml_bench::render_trials_csv(&journal.trials);
    match out {
        Some(path) => {
            std::fs::write(&path, csv).expect("write csv");
            eprintln!(
                "[journal-tool] wrote {} trials to {path}",
                journal.trials.len()
            );
        }
        None => print!("{csv}"),
    }
}

/// Finds the dataset the journal was recorded against among the built-in
/// synthetic suites: match by name, then confirm by replaying the
/// controller's cleanup + fingerprint. Both the full dataset and its
/// standard train split (what the grid binaries journal) are candidates.
fn find_dataset(header: &JournalHeader, test_ratio: f64) -> Option<Dataset> {
    let mut candidates: Vec<Dataset> = Vec::new();
    for scale in [SuiteScale::Small, SuiteScale::Full] {
        for suite in [
            binary_suite(scale),
            multiclass_suite(scale),
            regression_suite(scale),
        ] {
            for d in suite {
                if d.name() == header.dataset.name {
                    let (train, _) = holdout_split(&d, test_ratio, header.seed);
                    candidates.push(train);
                    candidates.push(d);
                }
            }
        }
    }
    candidates.into_iter().find(|d| {
        let cleaned;
        let d = match d.degenerate_columns() {
            cols if cols.is_empty() => d,
            cols => match d.drop_columns(&cols) {
                Ok(c) => {
                    cleaned = c;
                    &cleaned
                }
                Err(_) => return false,
            },
        };
        d.n_rows() == header.dataset.rows
            && d.n_features() == header.dataset.features
            && d.fingerprint() == header.dataset.fingerprint
    })
}

/// Rebuilds the run from the header, resumes it on a scratch copy with
/// the trial cap at the journal's length (replay everything, run
/// nothing), and diffs the replayed trace against the journal.
fn verify_replay(journal: &Journal, path: &str, test_ratio: f64) -> bool {
    let h = &journal.header;
    let Some(data) = find_dataset(h, test_ratio) else {
        eprintln!(
            "[journal-tool] dataset {:?} (fingerprint {:#018x}) not found in the built-in \
             synthetic suites; verify-replay only supports journals recorded on them",
            h.dataset.name, h.dataset.fingerprint
        );
        return false;
    };
    let mut estimators = Vec::new();
    for name in &h.estimators {
        match LearnerKind::parse(name) {
            Some(kind) => estimators.push(kind),
            None => {
                eprintln!("[journal-tool] unknown estimator {name:?} in header");
                return false;
            }
        }
    }
    let Some(metric) = Metric::parse(&h.metric) else {
        eprintln!("[journal-tool] unknown metric {:?} in header", h.metric);
        return false;
    };

    // Resume reopens the journal for appending (and truncates any torn
    // tail), so verification runs on a scratch copy, never the original.
    let copy = std::env::temp_dir().join(format!(
        "journal_verify_{}_{}.jsonl",
        std::process::id(),
        h.dataset.fingerprint
    ));
    if let Err(e) = std::fs::copy(path, &copy) {
        eprintln!("[journal-tool] cannot copy journal for verification: {e}");
        return false;
    }

    let mut automl = AutoMl::new()
        .seed(h.seed)
        .time_budget(h.time_budget)
        .max_trials(journal.trials.len())
        .sample_size_init(h.sample_size_init)
        .sampling(h.sampling)
        .metric(metric)
        .estimators(estimators)
        .resume_from(&copy);
    automl = match h.learner_selection.as_str() {
        "round-robin" => automl.learner_selection(LearnerSelection::RoundRobin),
        _ => automl.learner_selection(LearnerSelection::Eci),
    };
    automl = match h.resample.as_str() {
        "cv" => automl.resample(ResampleChoice::AlwaysCv),
        "holdout" => automl.resample(ResampleChoice::AlwaysHoldout),
        _ => automl.resample(ResampleChoice::Auto),
    };
    if h.time_source == "virtual" {
        automl = automl.time_source(TimeSource::Virtual(default_virtual_cost));
    }

    let result = automl.fit(&data);
    let _ = std::fs::remove_file(&copy);
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[journal-tool] replay failed: {e}");
            return false;
        }
    };

    if result.trials.len() != journal.trials.len() {
        eprintln!(
            "[journal-tool] replay produced {} trials, journal has {}",
            result.trials.len(),
            journal.trials.len()
        );
        return false;
    }
    for (r, j) in result.trials.iter().zip(&journal.trials) {
        let mismatch = r.iter != j.iter
            || r.learner != j.learner
            || r.sample_size != j.sample_size
            || r.error.to_bits() != j.loss.to_bits()
            || r.cost.to_bits() != j.cost.to_bits()
            || r.mode.name() != j.mode
            || r.status.to_string() != j.status
            || r.config_values != j.config_values;
        if mismatch {
            eprintln!(
                "[journal-tool] divergence at trial {}: replayed ({}, {}, s={}, loss={}, \
                 cost={}) vs journaled ({}, {}, s={}, loss={}, cost={})",
                j.iter,
                r.learner,
                r.mode.name(),
                r.sample_size,
                r.error,
                r.cost,
                j.learner,
                j.mode,
                j.sample_size,
                j.loss,
                j.cost
            );
            return false;
        }
    }
    println!(
        "[journal-tool] OK: {} trials replayed bit-identically ({} on {}, {:.4}s budget)",
        journal.trials.len(),
        h.estimators.join("/"),
        h.dataset.name,
        journal.spent_budget()
    );
    true
}
