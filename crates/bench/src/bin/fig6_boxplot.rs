//! Figure 6 — box plots of the scaled-score difference between FLAML and
//! each baseline, under equal budgets (top row) and with FLAML given a
//! smaller budget (bottom row). Positive = FLAML better.
//!
//! Reads `bench_results/fig5.json` if present (run `fig5_scores` first);
//! otherwise runs a quick grid itself.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin fig6_boxplot
//! ```

use flaml_bench::grid::{default_groups, load_results, save_results};
use flaml_bench::{box_stats, paired_scores, render_table, run_grid, Args, GridSpec, Method};

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let path = args.str("from", "bench_results/fig5.json");
    let results = match load_results(&path) {
        Some(r) => {
            eprintln!("[fig6] loaded {} results from {path}", r.len());
            r
        }
        None => {
            eprintln!("[fig6] {path} missing; running a quick grid");
            let spec = GridSpec {
                budgets: args.f64_list("budgets", &[0.5, 2.0, 8.0]),
                methods: Method::COMPARATIVE.to_vec(),
                seed: exec.seed,
                time_source: exec.time_source,
                rf_budget: args.f64("rf-budget", 2.0),
                max_trials: exec.max_trials,
                jobs: exec.jobs,
                chaos: exec.chaos,
                journal_dir: exec.journal_dir.clone(),
                resume: exec.resume,
                tree_cache: exec.tree_cache,
                tree_cache_bytes: exec.tree_cache_bytes,
                ..GridSpec::default()
            };
            let groups = default_groups(exec.scale(), args.usize("per-group", 2));
            let r = run_grid(&groups, &spec);
            save_results(&path, &r).expect("write results json");
            r
        }
    };

    let mut budgets: Vec<f64> = results.iter().map(|r| r.budget).collect();
    budgets.sort_by(|a, b| a.partial_cmp(b).unwrap());
    budgets.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let baselines = ["bohb", "bo", "random", "hyperband"];

    println!("== Equal budgets: scaled score difference (FLAML - baseline) ==");
    let mut rows = Vec::new();
    for &budget in &budgets {
        for base in &baselines {
            let (f, b) = paired_scores(&results, ("flaml", budget), (base, budget));
            let diffs: Vec<f64> = f.iter().zip(&b).map(|(x, y)| x - y).collect();
            if let Some(s) = box_stats(&diffs) {
                rows.push(vec![
                    format!("{budget}s"),
                    base.to_string(),
                    diffs.len().to_string(),
                    s.render(),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["budget", "baseline", "n", "min [q1 | median | q3] max"],
            &rows
        )
    );

    println!("\n== Smaller FLAML budget: FLAML at b_i vs baseline at b_(i+1) ==");
    let mut rows = Vec::new();
    for w in budgets.windows(2) {
        for base in &baselines {
            let (f, b) = paired_scores(&results, ("flaml", w[0]), (base, w[1]));
            let diffs: Vec<f64> = f.iter().zip(&b).map(|(x, y)| x - y).collect();
            if let Some(s) = box_stats(&diffs) {
                rows.push(vec![
                    format!("{}s vs {}s", w[0], w[1]),
                    base.to_string(),
                    diffs.len().to_string(),
                    s.render(),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["budgets", "baseline", "n", "min [q1 | median | q3] max"],
            &rows
        )
    );
}
