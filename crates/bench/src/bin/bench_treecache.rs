//! Tree-cache benchmark: boosting-continuation throughput with the
//! cross-trial tree cache on vs. off, on an `n_trees`-sweep roster.
//!
//! Two measurements per dataset:
//!
//! 1. **Purity** — the same AutoML search runs on the virtual clock with
//!    the tree cache enabled and disabled; the two trial traces must be
//!    byte-identical (warm continuation is bit-identical to a cold fit by
//!    the [`flaml_learners::Gbdt::fit_continue`] contract — only wall
//!    time and the hit/miss counters may differ).
//! 2. **Throughput** — a fixed roster sweeps `tree_num` upward through
//!    each boosting learner's otherwise-initial configuration, the exact
//!    shape FLOW²'s cheap-to-expensive ordering produces. The cache-on
//!    arm continues each trial from the previous sweep step's prefix and
//!    pays only for the marginal trees; the cache-off arm refits every
//!    tree of every trial from round zero. Each timed cycle starts from a
//!    *cold* tree cache (continuation happens within a cycle, not across
//!    cycles), both arms share a steady-state [`DataPlane`] so binning
//!    cost cancels, and both must produce bit-identical losses.
//!
//! Per-dataset speedup is `secs_off / secs_on` over identical work; the
//! aggregate gate is the geometric mean across datasets (equal dataset
//! weight). The binary exits non-zero when the aggregate falls below
//! `--min-speedup` (default 1.3; CI derates this for shared runners).
//!
//! ```text
//! cargo run -p flaml-bench --release --bin bench_treecache
//! ```

use flaml_bench::grid::default_groups;
use flaml_bench::{Args, TelemetryCollector};
use flaml_core::{
    default_virtual_cost, run_trial_prepared, AutoMl, AutoMlResult, DataPlane, Estimator, ExecPool,
    LearnerKind, ResampleChoice, ResampleStrategy, TimeSource, TreeCache, TreeCacheStats, TreeKey,
    TrialBoost,
};
use flaml_data::Dataset;
use flaml_exec::Telemetry;
use flaml_metrics::Metric;
use flaml_search::Config;
use serde::Serialize;
use std::time::Instant;

/// One dataset's purity check plus cache-on vs. cache-off throughput.
#[derive(Debug, Clone, Serialize)]
struct DatasetRow {
    dataset: String,
    group: String,
    /// Whether the cache-on and cache-off searches produced byte-identical
    /// trial traces (they must: warm continuation is exact).
    trace_identical: bool,
    /// Tree-cache counters of the cache-on search.
    tree_cache_hits: usize,
    tree_cache_misses: usize,
    trees_saved: usize,
    /// Whether the replayed roster produced bit-identical losses across
    /// the two arms.
    replay_losses_identical: bool,
    /// Trials per timed cycle (the roster size).
    replay_trials: usize,
    /// Trees the cache served per replay cycle instead of refitting.
    replay_trees_saved: usize,
    secs_cache_off: f64,
    secs_cache_on: f64,
    trials_per_sec_off: f64,
    trials_per_sec_on: f64,
    speedup: f64,
}

/// The full benchmark report written to `bench_results/`.
#[derive(Debug, Clone, Serialize)]
struct TreecacheReport {
    rows: Vec<DatasetRow>,
    total_replay_trials: usize,
    total_secs_cache_off: f64,
    total_secs_cache_on: f64,
    /// Geometric mean of per-dataset speedups (equal dataset weight);
    /// the pass/fail gate.
    speedup: f64,
    /// Raw total-time ratio, for reference.
    total_time_speedup: f64,
    min_speedup: f64,
    pass: bool,
}

struct BenchSpec {
    seed: u64,
    budget: f64,
    max_trials: usize,
    estimators: Vec<LearnerKind>,
    cycles: usize,
    sweep: Vec<usize>,
}

/// One replayable trial of the sweep schedule.
struct RosterTrial {
    est: usize,
    config: Config,
}

fn search_once(data: &Dataset, spec: &BenchSpec, cache: bool) -> Option<(AutoMlResult, Telemetry)> {
    let collector = TelemetryCollector::new();
    let automl = AutoMl::new()
        .time_budget(spec.budget)
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .resample(ResampleChoice::AlwaysCv)
        .max_trials(spec.max_trials)
        .seed(spec.seed)
        .estimators(spec.estimators.clone())
        .sampling(false)
        .event_sink(collector.sink())
        .tree_cache(cache);
    match automl.fit(data) {
        Ok(r) => Some((r, collector.finish())),
        Err(e) => {
            eprintln!("[treecache] {}: search failed: {e}", data.name());
            None
        }
    }
}

/// The `tree_num` sweep: each boosting learner's initial configuration
/// (seed-invariant: no row or column subsampling) with the tree count
/// stepped upward, interleaved across learners in ascending order — so
/// within one pass every trial is a continuation of the learner's
/// previous step.
fn build_roster(
    data: &Dataset,
    estimators: &[(Estimator, flaml_search::SearchSpace)],
    spec: &BenchSpec,
) -> Vec<RosterTrial> {
    let mut roster = Vec::new();
    for &trees in &spec.sweep {
        if trees > data.n_rows() {
            continue;
        }
        for (i, (_, space)) in estimators.iter().enumerate() {
            let Some(tidx) = space.index_of("tree_num") else {
                continue;
            };
            let mut values = space.init_config().values().to_vec();
            values[tidx] = trees as f64;
            roster.push(RosterTrial {
                est: i,
                config: Config::from(values),
            });
        }
    }
    roster
}

/// Executes the roster `cycles` times (after one untimed warmup cycle
/// that brings the shared data plane to steady state). Each cycle runs
/// against a fresh tree cache — continuation happens *within* a cycle,
/// mirroring one search's trial sequence. Returns the fastest cycle's
/// seconds, the first timed cycle's losses in execution order, and one
/// cycle's tree-cache stats.
fn replay(
    data: &Dataset,
    roster: &[RosterTrial],
    estimators: &[(Estimator, flaml_search::SearchSpace)],
    spec: &BenchSpec,
    cache: bool,
    pool: &ExecPool,
) -> (f64, Vec<u64>, TreeCacheStats) {
    let fingerprint = data.fingerprint();
    let shuffled = data.shuffled_view(spec.seed);
    let strategy = ResampleStrategy::Cv { folds: 5 };
    let metric = Metric::default_for(data.task());
    let sample_size = data.n_rows();
    // Both arms share a warmed data plane: binning cost cancels and the
    // measurement isolates tree building.
    let mut plane = DataPlane::new(shuffled, strategy, true, 256 * 1024 * 1024);
    let run_cycle = |plane: &mut DataPlane, losses: Option<&mut Vec<u64>>| -> TreeCacheStats {
        let mut tree_cache = TreeCache::new(cache, 256 * 1024 * 1024);
        let mut sink = losses;
        for t in roster {
            let (est, space) = &estimators[t.est];
            let max_bin = est.max_bin(&t.config, space);
            let (td, _) = plane.prepare(sample_size, max_bin);
            let boost = match (tree_cache.enabled(), est.boost_params(&t.config, space)) {
                (true, Some(bp)) => {
                    let tidx = space.index_of("tree_num");
                    let mut stats = TreeCacheStats::default();
                    let mut keys = Vec::with_capacity(td.folds.len());
                    let mut warm = Vec::with_capacity(td.folds.len());
                    for fi in 0..td.folds.len() {
                        let key = TreeKey::new(
                            est.name(),
                            t.config.values(),
                            tidx,
                            sample_size,
                            fi,
                            bp.max_bin,
                            fingerprint,
                        );
                        match tree_cache.get(&key) {
                            Some(s) => {
                                stats.tree_cache_hits += 1;
                                stats.trees_saved += s.rounds_done().min(bp.n_trees) * s.n_groups();
                                warm.push(Some(s));
                            }
                            None => {
                                stats.tree_cache_misses += 1;
                                warm.push(None);
                            }
                        }
                        keys.push(key);
                    }
                    tree_cache.observe(stats);
                    Some(TrialBoost {
                        params: bp,
                        keys,
                        warm,
                    })
                }
                _ => None,
            };
            let out = run_trial_prepared(
                &td,
                est,
                &t.config,
                space,
                strategy,
                metric,
                spec.seed,
                None,
                pool,
                boost.as_ref(),
            );
            if let Some(tb) = &boost {
                for (key, state) in tb.keys.iter().zip(&out.fold_states) {
                    if let Some(state) = state {
                        tree_cache.store(key.clone(), state.clone());
                    }
                }
            }
            if let Some(v) = sink.as_mut() {
                v.push(out.error.to_bits());
            }
        }
        tree_cache.totals()
    };
    run_cycle(&mut plane, None); // warmup: the data plane reaches steady state
    let mut losses = Vec::with_capacity(roster.len());
    let mut stats = TreeCacheStats::default();
    let mut best = f64::INFINITY;
    for cycle in 0..spec.cycles {
        let started = Instant::now();
        let cycle_stats = run_cycle(
            &mut plane,
            if cycle == 0 { Some(&mut losses) } else { None },
        );
        best = best.min(started.elapsed().as_secs_f64());
        if cycle == 0 {
            stats = cycle_stats;
        }
    }
    (best, losses, stats)
}

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let per_group = args.usize("per-group", if exec.full { usize::MAX } else { 2 });
    let min_speedup = args.f64("min-speedup", 1.3);
    let cycles = args.usize("cycles", 5);
    let out_path = args.str("out", "bench_results/BENCH_treecache.json");
    let kinds: Vec<LearnerKind> = args
        .str("estimators", "lightgbm,xgboost")
        .split(',')
        .filter_map(|name| {
            let name = name.trim();
            match LearnerKind::ALL.iter().find(|k| k.name() == name) {
                Some(k) => Some(*k),
                None => {
                    eprintln!("[treecache] unknown estimator {name:?}, skipping");
                    None
                }
            }
        })
        .collect();
    let sweep: Vec<usize> = args
        .str("sweep", "4,8,16,32,64")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let spec = BenchSpec {
        seed: exec.seed,
        budget: args.f64("budget", 50.0),
        max_trials: exec.max_trials.unwrap_or(8),
        estimators: kinds.clone(),
        cycles,
        sweep,
    };
    let pool = ExecPool::new(1);

    let mut rows: Vec<DatasetRow> = Vec::new();
    for (group, datasets) in default_groups(exec.scale(), per_group) {
        for data in &datasets {
            let Some((off_result, _)) = search_once(data, &spec, false) else {
                continue;
            };
            let Some((on_result, telemetry)) = search_once(data, &spec, true) else {
                continue;
            };
            let off_trace = serde_json::to_string(&off_result.trials).expect("serialize trials");
            let on_trace = serde_json::to_string(&on_result.trials).expect("serialize trials");

            let estimators: Vec<(Estimator, flaml_search::SearchSpace)> = kinds
                .iter()
                .map(|k| {
                    let e = Estimator::Builtin(*k);
                    let space = e.space(data.n_rows());
                    (e, space)
                })
                .collect();
            let roster = build_roster(data, &estimators, &spec);
            if roster.is_empty() {
                eprintln!(
                    "[treecache] {group}/{}: empty roster, skipping",
                    data.name()
                );
                continue;
            }

            let (off_secs, off_losses, _) = replay(data, &roster, &estimators, &spec, false, &pool);
            let (on_secs, on_losses, replay_stats) =
                replay(data, &roster, &estimators, &spec, true, &pool);
            let replay_trials = roster.len();
            let row = DatasetRow {
                dataset: data.name().to_string(),
                group: group.to_string(),
                trace_identical: off_trace == on_trace,
                tree_cache_hits: telemetry.tree_cache_hits,
                tree_cache_misses: telemetry.tree_cache_misses,
                trees_saved: telemetry.trees_saved,
                replay_losses_identical: off_losses == on_losses,
                replay_trials,
                replay_trees_saved: replay_stats.trees_saved,
                secs_cache_off: off_secs,
                secs_cache_on: on_secs,
                trials_per_sec_off: replay_trials as f64 / off_secs.max(1e-9),
                trials_per_sec_on: replay_trials as f64 / on_secs.max(1e-9),
                speedup: off_secs / on_secs.max(1e-9),
            };
            eprintln!(
                "[treecache] {group}/{}: {} trials replayed, {:.3}s off / {:.3}s on, {:.2}x, \
                 {} trees saved/cycle, trace_identical={} losses_identical={}",
                row.dataset,
                row.replay_trials,
                row.secs_cache_off,
                row.secs_cache_on,
                row.speedup,
                row.replay_trees_saved,
                row.trace_identical,
                row.replay_losses_identical,
            );
            rows.push(row);
        }
    }

    let total_trials: usize = rows.iter().map(|r| r.replay_trials).sum();
    let total_off: f64 = rows.iter().map(|r| r.secs_cache_off).sum();
    let total_on: f64 = rows.iter().map(|r| r.secs_cache_on).sum();
    let geomean = if rows.is_empty() {
        0.0
    } else {
        (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let pure = rows
        .iter()
        .all(|r| r.trace_identical && r.replay_losses_identical);
    let report = TreecacheReport {
        total_replay_trials: total_trials,
        total_secs_cache_off: total_off,
        total_secs_cache_on: total_on,
        speedup: geomean,
        total_time_speedup: total_off / total_on.max(1e-9),
        min_speedup,
        pass: geomean >= min_speedup && pure && total_trials > 0,
        rows,
    };

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let storage = flaml_core::disk();
    flaml_core::atomic_write_file(
        storage.as_ref(),
        std::path::Path::new(&out_path),
        json.as_bytes(),
    )
    .expect("write results json");

    println!(
        "tree cache: {total_trials} trials replayed per arm, {:.2} trials/sec without cache, \
         {:.2} trials/sec with cache => {:.2}x geomean speedup (need >= {min_speedup}x)",
        total_trials as f64 / total_off.max(1e-9),
        total_trials as f64 / total_on.max(1e-9),
        report.speedup,
    );
    eprintln!("[treecache] wrote {out_path}");
    if !pure {
        eprintln!("[treecache] FAIL: cache-on and cache-off runs diverged");
    }
    if !report.pass {
        std::process::exit(1);
    }
}
