//! Online AutoML benchmark: a champion–challenger [`flaml_online`]
//! session on a drifting synthetic stream versus a **static** champion
//! that is trained once and never retrained.
//!
//! The stream is piecewise-stationary ([`flaml_synth::DriftStream`]):
//! the concept shifts every `--drift-at` chunks, so a model fitted on
//! one segment degrades measurably on the next. Both arms are scored
//! prequentially — on every chunk *before* anything trains on it:
//!
//! * **online** — the session's serving champion at the moment the
//!   chunk arrives (drift fires challenger rounds; promotions swap the
//!   champion mid-stream);
//! * **static** — a frozen copy of the first champion (the warmup
//!   round's winner), exactly what a deploy-once pipeline would serve.
//!
//! Both arms start from the same warmup model, so every difference is
//! attributable to adaptation. Arms are compared on **prequential
//! error rate** (the streaming-classification standard): it is bounded
//! in `[0, 1]`, so the one or two post-shift chunks where the adapted
//! champion is confidently wrong cannot dominate the mean the way an
//! unbounded log-loss spike would, while a champion stuck on a stale
//! concept pays on every chunk of every later segment. The session
//! itself still detects drift and judges promotions on its own
//! configured loss (log-loss here).
//!
//! The pass/fail gate is relative regret: the online arm's mean error
//! must be at least `--min-gain` (fractionally) below the static
//! arm's, and the run must actually exercise the machinery (a drift
//! event and a post-warmup promotion). Per-chunk losses and promotion
//! counters land in `--out` (default `bench_results/BENCH_online.json`).
//!
//! ```text
//! cargo run -p flaml-bench --release --bin bench_online -- --chunks 24
//! ```

use flaml_bench::Args;
use flaml_core::CompiledModel;
use flaml_data::Dataset;
use flaml_metrics::Metric;
use flaml_online::{OnlineConfig, OnlineRuntime, OnlineSession};
use flaml_synth::DriftStream;
use serde::Serialize;

/// One prequentially scored chunk (both arms had a model).
#[derive(Debug, Clone, Serialize)]
struct ChunkRow {
    chunk: usize,
    segment: usize,
    online_loss: f64,
    static_loss: f64,
    era: u64,
}

/// The full benchmark report written to `bench_results/`.
#[derive(Debug, Clone, Serialize)]
struct OnlineReport {
    seed: u64,
    chunks: usize,
    chunk_rows: usize,
    drift_at: usize,
    promote_margin: f64,
    /// Metric both arms are compared on (prequential error rate).
    metric: String,
    /// Loss the session itself optimizes and detects drift on.
    session_metric: String,
    rows: Vec<ChunkRow>,
    /// Chunks scored for both arms (post-warmup).
    scored_chunks: usize,
    online_mean_loss: f64,
    static_mean_loss: f64,
    /// Fractional improvement of online over static mean loss.
    gain: f64,
    drift_events: usize,
    promotions: usize,
    rejections: usize,
    rollbacks: usize,
    final_era: u64,
    min_gain: f64,
    pass: bool,
}

fn eval(metric: Metric, model: &CompiledModel, data: &Dataset) -> f64 {
    metric
        .loss(&model.predict(data.view()), data.target())
        .unwrap_or(f64::INFINITY)
}

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let min_gain = args.f64("min-gain", 0.05);
    let out_path = args.str("out", "bench_results/BENCH_online.json");

    let mut stream = DriftStream::new(exec.seed);
    stream.rows = exec.chunk_rows;
    stream.segment_chunks = exec.drift_at;
    stream.features = 4;
    stream.margin_noise = 0.15;

    let mut cfg = OnlineConfig::new(flaml_data::Task::Binary, stream.features);
    cfg.seed = exec.seed;
    cfg.promote_margin = exec.promote_margin;
    // A window tight enough that by the time drift is confirmed the
    // training window is dominated by post-shift chunks — otherwise the
    // challenger learns a blend of both concepts and loses its holdout.
    cfg.window_chunks = 4;
    cfg.holdout_chunks = 1;
    cfg.warmup_chunks = 2;
    // A short drift window confirms a shift one or two chunks in, while
    // the training window still has room for post-shift data.
    cfg.drift_window = 2;
    cfg.drift_threshold = 0.1;
    // Backstop, not pre-emptor: longer than the 2×drift_window run-up
    // the detector needs, so drift still fires first after a shift, but
    // a drift round that trained on a blended window and got rejected
    // (re-anchoring the detector on the degraded plateau) is followed
    // by a clean all-fresh retrain one refresh later.
    cfg.refresh_every = 2 * cfg.window_chunks;
    if let Some(trials) = exec.max_trials {
        cfg.round_trials = trials.max(1);
    }
    // The session's internal loss (drift test, holdout, probation).
    let session_metric = cfg.resolved_metric();
    // The benchmark's regret metric: prequential error rate.
    let metric = Metric::Accuracy;

    let state_dir =
        std::env::temp_dir().join(format!("bench_online_{}_{}", std::process::id(), exec.seed));
    let _ = std::fs::remove_dir_all(&state_dir);
    let runtime = OnlineRuntime {
        workers: exec.jobs.max(1),
        ..OnlineRuntime::local()
    };
    let mut session =
        OnlineSession::create(&state_dir, cfg, runtime).expect("online session creates");

    // Prequential loop: score the serving champion (and the frozen
    // static champion) on each chunk BEFORE pushing it — the same
    // test-then-train order the session itself journals.
    let mut static_model: Option<CompiledModel> = None;
    let mut rows: Vec<ChunkRow> = Vec::new();
    for i in 0..exec.chunks {
        let data = stream.chunk(i);
        if let (Some(champion), Some(frozen)) = (session.champion_model(), static_model.as_ref()) {
            let row = ChunkRow {
                chunk: i,
                segment: stream.segment_of(i),
                online_loss: eval(metric, champion, &data),
                static_loss: eval(metric, frozen, &data),
                era: session.status().era,
            };
            eprintln!(
                "[online] chunk {:>3} (segment {}): online {:.4} static {:.4} era {}",
                row.chunk, row.segment, row.online_loss, row.static_loss, row.era
            );
            rows.push(row);
        }
        let outcome = session.push_chunk(&data).expect("chunk ingestion");
        if let flaml_online::ChunkOutcome::Processed {
            champion_loss: Some(l),
            ..
        } = &outcome
        {
            eprintln!(
                "[online] chunk {i:>3}: session {} {l:.4}",
                session_metric.name()
            );
        }
        if let flaml_online::ChunkOutcome::Processed {
            round: Some(r),
            rolled_back,
            ..
        } = &outcome
        {
            eprintln!(
                "[online] chunk {i:>3}: round {} ({}) challenger {:.4} vs champion {:.4} -> {}{}",
                r.round,
                r.reason,
                r.challenger_loss,
                r.champion_loss,
                if r.promoted { "promoted" } else { "rejected" },
                if *rolled_back {
                    " (after rollback)"
                } else {
                    ""
                },
            );
        }
        if static_model.is_none() {
            // The warmup round just promoted the first champion: freeze
            // a copy as the never-retrained arm.
            static_model = session.champion_model().cloned();
        }
    }

    let status = session.status();
    let n = rows.len();
    let mean = |f: fn(&ChunkRow) -> f64| {
        if n == 0 {
            f64::INFINITY
        } else {
            rows.iter().map(f).sum::<f64>() / n as f64
        }
    };
    let online_mean = mean(|r| r.online_loss);
    let static_mean = mean(|r| r.static_loss);
    let gain = if static_mean > 0.0 && static_mean.is_finite() {
        1.0 - online_mean / static_mean
    } else {
        0.0
    };
    let exercised = status.drift_events >= 1 && status.promotions >= 2;
    let report = OnlineReport {
        seed: exec.seed,
        chunks: exec.chunks,
        chunk_rows: exec.chunk_rows,
        drift_at: exec.drift_at,
        promote_margin: exec.promote_margin,
        metric: metric.name().to_string(),
        session_metric: session_metric.name().to_string(),
        scored_chunks: n,
        online_mean_loss: online_mean,
        static_mean_loss: static_mean,
        gain,
        drift_events: status.drift_events,
        promotions: status.promotions,
        rejections: status.rejections,
        rollbacks: status.rollbacks,
        final_era: status.era,
        min_gain,
        pass: n > 0 && exercised && online_mean.is_finite() && gain >= min_gain,
        rows,
    };

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let storage = flaml_core::disk();
    flaml_core::atomic_write_file(
        storage.as_ref(),
        std::path::Path::new(&out_path),
        json.as_bytes(),
    )
    .expect("write results json");
    let _ = std::fs::remove_dir_all(&state_dir);

    println!(
        "online: {} chunks ({} scored), prequential error {:.4} online vs {:.4} static \
         ({:+.1}% gain, need >= {:.1}%), {} drift, {} promotions, {} rollbacks, era {}",
        report.chunks,
        report.scored_chunks,
        report.online_mean_loss,
        report.static_mean_loss,
        report.gain * 100.0,
        report.min_gain * 100.0,
        report.drift_events,
        report.promotions,
        report.rollbacks,
        report.final_era,
    );
    eprintln!("[online] wrote {out_path}");
    if !exercised {
        eprintln!(
            "[online] FAIL: stream too quiet (drift {}, promotions {}) — \
             nothing to benchmark",
            report.drift_events, report.promotions
        );
    }
    if !report.pass {
        std::process::exit(1);
    }
}
