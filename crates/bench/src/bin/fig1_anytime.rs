//! Figure 1 — anytime behaviour of FLAML vs. HpBandSter (BOHB) in the
//! same search space on one binary task.
//!
//! Prints per-trial rows from which all three subfigures derive:
//! (a) model regret vs. trial cost, (b) trial cost vs. total time,
//! (c) model regret vs. total time.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin fig1_anytime -- --budget 10
//! ```

use flaml_bench::{journal_stem, render_table, Args, Method};
use flaml_synth::binary_suite;

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let budget = args.f64("budget", 10.0);
    // The paper's case study uses a mid-sized binary task; higgs-like is
    // the closest of the suite.
    let data = binary_suite(exec.scale())
        .into_iter()
        .find(|d| d.name() == "higgs-like")
        .expect("suite contains higgs-like");
    eprintln!(
        "[fig1] dataset {} ({} x {}), budget {budget}s",
        data.name(),
        data.n_rows(),
        data.n_features()
    );

    let mut runs = Vec::new();
    for method in [Method::Flaml, Method::Bohb] {
        let mut cfg = exec.run_config(budget, 500);
        cfg.journal =
            exec.journal_file(&journal_stem(data.name(), method.name(), budget, exec.seed));
        let result = method
            .run_with(&data, &cfg)
            .unwrap_or_else(|e| panic!("{method} failed: {e}"));
        runs.push((method, result));
    }

    // Global best error across both methods anchors the regret.
    let global_best = runs
        .iter()
        .flat_map(|(_, r)| r.trials.iter().map(|t| t.error))
        .filter(|e| e.is_finite())
        .fold(f64::INFINITY, f64::min);

    for (method, result) in &runs {
        println!("\n== {} ==", method);
        let rows: Vec<Vec<String>> = result
            .trials
            .iter()
            .map(|t| {
                vec![
                    t.iter.to_string(),
                    format!("{:.2}", t.total_time),
                    format!("{:.3}", t.cost),
                    format!("{:.4}", t.error),
                    format!("{:.4}", t.best_error_so_far - global_best),
                    t.learner.to_string(),
                    t.sample_size.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "iter",
                    "time_s",
                    "cost_s",
                    "trial_error",
                    "regret_at_finish",
                    "learner",
                    "sample",
                ],
                &rows
            )
        );
    }

    // Subfigure (b)'s claim in one number: correlation of trial cost with
    // time for FLAML should exceed BOHB's (cost grows gradually).
    println!("\nSummary (subfigure shapes):");
    for (method, result) in &runs {
        let final_regret = result
            .trials
            .last()
            .map(|t| t.best_error_so_far - global_best)
            .unwrap_or(f64::NAN);
        let max_early_cost = result
            .trials
            .iter()
            .filter(|t| t.total_time <= budget * 0.25)
            .map(|t| t.cost)
            .fold(0.0, f64::max);
        println!(
            "  {method:8} trials: {:3}  final regret: {final_regret:.4}  max cost in first quarter: {max_early_cost:.3}s",
            result.trials.len()
        );
    }
}
