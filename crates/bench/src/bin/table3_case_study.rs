//! Table 3 — case study: the configurations tried by FLAML vs. BOHB on
//! the same task, showing that FLAML starts cheap and escalates only when
//! warranted, while BOHB samples expensive configs early.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin table3_case_study -- --budget 10
//! ```

use flaml_bench::{journal_stem, render_table, Args, Method};
use flaml_core::AutoMlResult;
use flaml_synth::binary_suite;

fn print_trace(title: &str, result: &AutoMlResult, only_improvements: bool) {
    println!("\n== {title} ==");
    let rows: Vec<Vec<String>> = result
        .trials
        .iter()
        .filter(|t| !only_improvements || t.improved_global)
        .map(|t| {
            vec![
                t.iter.to_string(),
                format!("{:.1}", t.total_time),
                t.learner.to_string(),
                t.config.clone(),
                if t.error.is_finite() {
                    format!("{:.4}", t.error)
                } else {
                    "fail".into()
                },
                format!("{:.2}", t.cost),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["iter", "time_s", "learner", "config", "error", "cost_s"],
            &rows
        )
    );
}

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let budget = args.f64("budget", 10.0);
    let all = args.flag("all-trials");
    let data = binary_suite(exec.scale())
        .into_iter()
        .find(|d| d.name() == "higgs-like")
        .expect("suite contains higgs-like");
    eprintln!(
        "[table3] dataset {} ({} x {}), budget {budget}s{}",
        data.name(),
        data.n_rows(),
        data.n_features(),
        if all {
            ""
        } else {
            " (improving trials only; --all-trials for everything)"
        }
    );

    let mut cfg = exec.run_config(budget, 500);
    cfg.journal = exec.journal_file(&journal_stem(data.name(), "flaml", budget, exec.seed));
    let flaml = Method::Flaml.run_with(&data, &cfg).expect("flaml runs");
    cfg.journal = exec.journal_file(&journal_stem(data.name(), "bohb", budget, exec.seed));
    let bohb = Method::Bohb.run_with(&data, &cfg).expect("bohb runs");

    print_trace("Config trace: FLAML", &flaml, !all);
    print_trace("Config trace: BOHB (HpBandSter)", &bohb, !all);

    // The table's headline: the cost of the most expensive trial in the
    // first half of the budget.
    for (name, r) in [("FLAML", &flaml), ("BOHB", &bohb)] {
        let early_max = r
            .trials
            .iter()
            .filter(|t| t.total_time <= budget / 2.0)
            .map(|t| t.cost)
            .fold(0.0, f64::max);
        println!(
            "{name}: best error {:.4}, most expensive early trial {early_max:.2}s",
            r.best_error
        );
    }
}
