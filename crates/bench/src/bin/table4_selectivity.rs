//! Table 4 — 95th-percentile q-error for selectivity estimation with a
//! one-CPU-minute budget (scaled here), comparing FLAML against a BO
//! AutoML (auto-sklearn stand-in), random search (TPOT stand-in) and the
//! Manual configuration of Dutt et al. (XGBoost, 16 trees, 16 leaves).
//!
//! Models regress `ln(selectivity)`; FLAML and the baselines directly
//! optimize the q-error quantile via the custom-metric API — the paper's
//! "it is easy to add customized metrics" feature in action.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin table4_selectivity -- --budget 5
//! ```

use flaml_baselines::{run_baseline, BaselineKind, BaselineSettings};
use flaml_bench::{render_table, Args};
use flaml_core::{fit_learner, AutoMl, LearnerKind};
use flaml_data::Dataset;
use flaml_metrics::{q_error_quantile, Metric};
use flaml_search::Config;
use std::time::Instant;

/// q-error (95th percentile) of a model's ln-space predictions on `test`.
fn qerr(model: &flaml_learners::FittedModel, test: &Dataset) -> f64 {
    let pred = model.predict(test);
    let values = pred.values().expect("regression predictions");
    q_error_quantile(values, test.target(), 0.95).expect("non-empty test set")
}

/// The Manual configuration from Dutt et al.: XGBoost with 16 trees and
/// 16 leaves, other hyperparameters at their initial values.
fn manual_model(train: &Dataset, seed: u64) -> flaml_learners::FittedModel {
    let kind = LearnerKind::XgBoost;
    let space = kind.space(train.n_rows());
    let mut values: Vec<f64> = space.init_config().values().to_vec();
    values[space.index_of("tree_num").expect("param")] = 16.0;
    values[space.index_of("leaf_num").expect("param")] = 16.0;
    values[space.index_of("learning_rate").expect("param")] = 0.3;
    values[space.index_of("min_child_weight").expect("param")] = 1.0;
    let config = Config::from(values);
    fit_learner(kind, train, &config, &space, seed, None).expect("manual config fits")
}

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let budget = args.f64("budget", 5.0);
    let seed = exec.seed;
    let quick = args.flag("quick");
    let suite = if quick {
        flaml_synth::selectivity_suite_scaled(seed, 2_000, 300, 100)
    } else {
        flaml_synth::selectivity_suite(seed)
    };

    println!("95th-percentile q-error, budget {budget}s per method (Manual = XGBoost 16x16):\n");
    let mut rows = Vec::new();
    for w in &suite {
        eprintln!("[table4] {} ...", w.name);
        let mut row = vec![w.name.clone()];

        // FLAML, optimizing the q-error quantile directly.
        let t0 = Instant::now();
        let mut automl = AutoMl::new()
            .time_budget(budget)
            .metric(Metric::QErrorP95)
            .seed(seed);
        if let Some(path) =
            exec.journal_file(&flaml_bench::journal_stem(&w.name, "flaml", budget, seed))
        {
            automl = if exec.resume && path.exists() {
                automl.resume_from(path)
            } else {
                automl.journal(path)
            };
        }
        let flaml = automl.fit(&w.train);
        match &flaml {
            Ok(r) => row.push(format!(
                "{:.2} ({:.0}s)",
                qerr(&r.model, &w.test),
                t0.elapsed().as_secs_f64()
            )),
            Err(e) => row.push(format!("fail: {e}")),
        }

        // BO AutoML (auto-sklearn stand-in).
        let t0 = Instant::now();
        let bo = run_baseline(
            BaselineKind::Bo,
            &w.train,
            &BaselineSettings {
                time_budget: budget,
                metric: Some(Metric::QErrorP95),
                seed,
                ..BaselineSettings::default()
            },
        );
        match &bo {
            Ok(r) => row.push(format!(
                "{:.2} ({:.0}s)",
                qerr(&r.model, &w.test),
                t0.elapsed().as_secs_f64()
            )),
            Err(e) => row.push(format!("fail: {e}")),
        }

        // Random search (TPOT stand-in).
        let t0 = Instant::now();
        let rs = run_baseline(
            BaselineKind::RandomSearch,
            &w.train,
            &BaselineSettings {
                time_budget: budget,
                metric: Some(Metric::QErrorP95),
                seed,
                ..BaselineSettings::default()
            },
        );
        match &rs {
            Ok(r) => row.push(format!(
                "{:.2} ({:.0}s)",
                qerr(&r.model, &w.test),
                t0.elapsed().as_secs_f64()
            )),
            Err(e) => row.push(format!("fail: {e}")),
        }

        // Manual configuration.
        let manual = manual_model(&w.train, seed);
        row.push(format!("{:.2}", qerr(&manual, &w.test)));

        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "FLAML",
                "BO (auto-sk.)",
                "Random (TPOT)",
                "Manual"
            ],
            &rows
        )
    );
}
