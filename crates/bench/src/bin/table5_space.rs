//! Table 5 — the default search space of every learner, with ranges and
//! low-cost initial values, for a given training-set size.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin table5_space -- --rows 100000
//! ```

use flaml_bench::{render_table, Args};
use flaml_core::LearnerKind;
use flaml_search::Domain;

fn main() {
    let args = Args::parse();
    // Shared flags parse uniformly across binaries; this one runs no
    // searches, so --journal / --resume have nothing to record.
    let _ = args.exec();
    let rows = args.usize("rows", 100_000);
    let mut out: Vec<Vec<String>> = Vec::new();
    for kind in LearnerKind::ALL {
        let space = kind.space(rows);
        for p in space.params() {
            let (ty, range) = match p.domain {
                Domain::Float { lo, hi, log } => (
                    if log { "float(log)" } else { "float" },
                    format!("[{lo}, {hi}]"),
                ),
                Domain::Int { lo, hi, log } => (
                    if log { "int(log)" } else { "int" },
                    format!("[{lo}, {hi}]"),
                ),
                Domain::Categorical { n } => ("cat", format!("{{0..{}}}", n - 1)),
            };
            out.push(vec![
                kind.name().to_string(),
                p.name.clone(),
                ty.to_string(),
                range,
                format!("{}", p.init),
            ]);
        }
    }
    println!("Default search space for S = {rows} training instances:\n");
    println!(
        "{}",
        render_table(
            &["learner", "hyperparameter", "type", "range", "init"],
            &out
        )
    );
}
