//! Figure 5 — scaled scores of every method on every dataset at every
//! budget, grouped by task type (the paper's radar charts, as tables).
//!
//! Writes the raw grid to `bench_results/fig5.json`, which
//! `fig6_boxplot` and `table9_smaller_budget` reuse.
//!
//! ```text
//! cargo run -p flaml-bench --release --bin fig5_scores -- \
//!     --budgets 0.5,2,8 --per-group 2        # quick subset (default)
//! cargo run -p flaml-bench --release --bin fig5_scores -- --full
//! cargo run -p flaml-bench --release --bin fig5_scores -- \
//!     --virtual --jobs 8                     # parallel cells, same scores
//! ```
//!
//! `--jobs N` farms independent grid cells to N pool workers; under
//! `--virtual` (deterministic virtual-clock accounting) the scores are
//! identical at any job count, just faster on multi-core.
//!
//! `--journal DIR` writes one crash-safe trial journal per FLAML cell;
//! a later invocation with `--journal DIR --resume` replays the committed
//! trials and continues (e.g. after a kill, or with a larger
//! `--max-trials`).

use flaml_bench::grid::{default_groups, save_results};
use flaml_bench::{render_table, run_grid, Args, GridSpec, Method};

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let full = exec.full;
    let budgets = args.f64_list("budgets", &[0.5, 2.0, 8.0]);
    let per_group = args.usize("per-group", if full { usize::MAX } else { 2 });
    let group_filter = args.str("group", "all");
    let out_path = args.str(
        "out",
        &if group_filter == "all" {
            "bench_results/fig5.json".to_string()
        } else {
            format!("bench_results/fig5_{group_filter}.json")
        },
    );

    let mut groups = default_groups(exec.scale(), per_group);
    if group_filter != "all" {
        groups.retain(|(g, _)| *g == group_filter);
        assert!(!groups.is_empty(), "unknown group {group_filter}");
    }
    let spec = GridSpec {
        budgets: budgets.clone(),
        methods: Method::COMPARATIVE.to_vec(),
        seed: exec.seed,
        sample_init: args.usize("sample-init", 500),
        time_source: exec.time_source,
        rf_budget: args.f64("rf-budget", 2.0),
        max_trials: exec.max_trials,
        jobs: exec.jobs,
        chaos: exec.chaos,
        journal_dir: exec.journal_dir.clone(),
        resume: exec.resume,
        tree_cache: exec.tree_cache,
        tree_cache_bytes: exec.tree_cache_bytes,
        ..GridSpec::default()
    };
    let results = run_grid(&groups, &spec);
    save_results(&out_path, &results).expect("write results json");
    let (timeouts, panics, retries, quarantines) = results.iter().fold((0, 0, 0, 0), |acc, r| {
        (
            acc.0 + r.n_timeouts,
            acc.1 + r.n_panics,
            acc.2 + r.n_retries,
            acc.3 + r.n_quarantined,
        )
    });
    eprintln!(
        "[fig5] wrote {} results to {out_path} ({timeouts} trial timeouts, {panics} panics, \
         {retries} retries, {quarantines} quarantines)",
        results.len()
    );

    // One table per (group, budget): rows = datasets, cols = methods.
    let methods: Vec<&str> = Method::COMPARATIVE.iter().map(|m| m.name()).collect();
    for (group, datasets) in &groups {
        for &budget in &budgets {
            println!("\n== {group} tasks, budget {budget}s (scaled score; >1 beats tuned RF) ==");
            let mut rows = Vec::new();
            for d in datasets {
                let mut row = vec![d.name().to_string()];
                for m in &methods {
                    let cell = results
                        .iter()
                        .find(|r| {
                            r.dataset == d.name()
                                && r.method == *m
                                && (r.budget - budget).abs() < 1e-9
                        })
                        .map(|r| format!("{:.3}", r.scaled_score))
                        .unwrap_or_else(|| "-".into());
                    row.push(cell);
                }
                rows.push(row);
            }
            let mut header = vec!["dataset"];
            header.extend(methods.iter());
            println!("{}", render_table(&header, &rows));
        }
    }

    // Win counts per budget: on how many datasets does FLAML have the top
    // scaled score?
    println!("\nFLAML top-1 count per budget:");
    for &budget in &budgets {
        let mut datasets: Vec<&str> = results
            .iter()
            .filter(|r| (r.budget - budget).abs() < 1e-9)
            .map(|r| r.dataset.as_str())
            .collect();
        datasets.sort();
        datasets.dedup();
        let mut wins = 0;
        for d in &datasets {
            let best = results
                .iter()
                .filter(|r| r.dataset == *d && (r.budget - budget).abs() < 1e-9)
                .max_by(|a, b| a.scaled_score.partial_cmp(&b.scaled_score).unwrap());
            if let Some(b) = best {
                if b.method == "flaml" {
                    wins += 1;
                }
            }
        }
        println!("  {budget}s: {wins}/{} datasets", datasets.len());
    }
}
