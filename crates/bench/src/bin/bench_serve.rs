//! Serving benchmark: compiled-artifact correctness and batched-pool
//! throughput on a fixed roster of fitted models.
//!
//! Per dataset, the roster (GBDT, random forest, linear, stacked — every
//! learner kind the artifact format covers) is fitted once and each model
//! is checked three ways:
//!
//! 1. **Bit-exactness** — the compiled artifact's predictions must equal
//!    the interpreted [`flaml_learners::FittedModel::predict`]
//!    bit-for-bit.
//! 2. **Round trip** — the artifact is saved and reloaded through the
//!    versioned, fingerprinted on-disk format; the reloaded model and its
//!    predictions must be identical.
//! 3. **Batched identity** — batched inference over the exec pool
//!    (`--concurrency` workers, `--batch` rows per chunk) must be
//!    byte-identical to a sequential pass.
//!
//! Throughput then replays batched prediction `--cycles` times per arm
//! after a warmup (the fastest cycle is reported) against a single-thread
//! sequential arm, on a serving-sized request built by tiling the
//! training matrix to `--rows` rows (default 4096 — real services batch
//! many requests over one model); per-cell speedup is
//! `secs_single / secs_batched` and the pass/fail gate is the geometric
//! mean across cells (default `--min-speedup 2`, derated in single-core
//! CI). A hot-swap loop also
//! publishes a stream of versions into a [`flaml_core::ModelRegistry`]
//! under concurrent readers and fails the run if any reader observes a
//! torn or stale-after-promote model.
//!
//! Per-slot serving telemetry (latency p50/p95/p99, rows/sec, batch
//! occupancy) is folded from the
//! [`flaml_exec::TrialEventKind::ServeBatch`] stream and written to
//! `--out` (default `bench_results/BENCH_serve.json`).
//!
//! ```text
//! cargo run -p flaml-bench --release --bin bench_serve -- --concurrency 4
//! ```

use flaml_bench::grid::default_groups;
use flaml_bench::roster::{fastest, fit_roster, pred_bits, tile_dataset};
use flaml_bench::Args;
use flaml_core::{
    event_channel, ArtifactFormat, BatchEngine, BlobOptions, CompiledModel, ExecPool, ModelRegistry,
};
use flaml_data::Dataset;
use flaml_learners::{FittedModel, Linear, LinearParams};
use serde::Serialize;
use std::sync::Arc;

/// One dataset × learner correctness-plus-throughput measurement.
#[derive(Debug, Clone, Serialize)]
struct ServeRow {
    dataset: String,
    group: String,
    learner: String,
    rows: usize,
    /// Compiled predictions bit-identical to the interpreted model.
    bits_identical: bool,
    /// Artifact save → load round trip preserved the model and its
    /// predictions.
    artifact_round_trip: bool,
    /// Batched pool inference byte-identical to the sequential pass.
    batched_identical: bool,
    /// Fastest sequential (single-thread, whole-matrix) cycle.
    secs_single: f64,
    /// Fastest batched (pool) cycle.
    secs_batched: f64,
    rows_per_sec_single: f64,
    rows_per_sec_batched: f64,
    speedup: f64,
}

/// Per-slot serving latency summary, from [`flaml_core::ServeTelemetry`].
#[derive(Debug, Clone, Serialize)]
struct SlotLatency {
    slot: String,
    batches: usize,
    rows: usize,
    p50_secs: f64,
    p95_secs: f64,
    p99_secs: f64,
    rows_per_sec: f64,
    mean_occupancy: f64,
}

/// The full benchmark report written to `bench_results/`.
#[derive(Debug, Clone, Serialize)]
struct ServeReport {
    workers: usize,
    batch_rows: usize,
    rows: Vec<ServeRow>,
    slots: Vec<SlotLatency>,
    /// Whether the concurrent hot-swap loop only ever observed complete,
    /// current models.
    hot_swap_consistent: bool,
    total_rows_served: usize,
    /// Geometric mean of per-row speedups (equal weight); the gate.
    speedup: f64,
    min_speedup: f64,
    pass: bool,
}

/// Publishes a stream of versions under concurrent readers; returns
/// whether every observation was complete (fingerprint matches the
/// published payload) and monotonic (never stale after a promote).
fn hot_swap_check(data: &Dataset, n_versions: u64) -> bool {
    let versions: Vec<CompiledModel> = (0..n_versions)
        .filter_map(|seed| {
            let m: FittedModel = Linear::fit(data, &LinearParams::default(), seed)
                .ok()?
                .into();
            CompiledModel::compile(&m).ok()
        })
        .collect();
    if versions.len() != n_versions as usize {
        return false;
    }
    let expected: Vec<u64> = versions
        .iter()
        .map(|m| flaml_serve::fingerprint(&serde_json::to_string(m).expect("serialize")))
        .collect();
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("live", versions[0].clone());
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                while last < expected.len() as u64 {
                    let snap = registry.get("live").expect("slot exists");
                    if snap.version < last
                        || snap.fingerprint != expected[(snap.version - 1) as usize]
                    {
                        return false;
                    }
                    last = snap.version;
                }
                true
            })
        })
        .collect();
    let mut ok = true;
    for v in versions.iter().skip(1) {
        let published = registry.publish("live", v.clone()).version;
        ok &= registry.get("live").expect("slot exists").version >= published;
    }
    for reader in readers {
        ok &= reader.join().unwrap_or(false);
    }
    ok
}

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let per_group = args.usize("per-group", if exec.full { usize::MAX } else { 2 });
    let min_speedup = args.f64("min-speedup", 2.0);
    let cycles = args.usize("cycles", 10);
    let out_path = args.str("out", "bench_results/BENCH_serve.json");
    let pool = ExecPool::new(exec.concurrency);
    let (sink, rx) = event_channel();

    let mut rows: Vec<ServeRow> = Vec::new();
    let mut exported = exec.artifact.is_none();
    let req_rows = args.usize("rows", 4096);
    for (group, datasets) in default_groups(exec.scale(), per_group) {
        for data in &datasets {
            let request = tile_dataset(data, req_rows);
            let n = request.n_rows();
            for (learner, model) in fit_roster(data, exec.seed) {
                let compiled = match CompiledModel::compile(&model) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("[serve] {group}/{}: {learner}: {e}", data.name());
                        continue;
                    }
                };
                let interpreted = model.predict(&request);
                let bits_identical =
                    pred_bits(&interpreted) == pred_bits(&compiled.predict(&request));

                let path = std::env::temp_dir().join(format!(
                    "bench_serve_{}_{}_{learner}.artifact.json",
                    std::process::id(),
                    data.name()
                ));
                let artifact_round_trip = match compiled.save(&path).and_then(|_| {
                    let loaded = CompiledModel::load(&path)?;
                    Ok(loaded == compiled
                        && pred_bits(&loaded.predict(&request)) == pred_bits(&interpreted))
                }) {
                    Ok(ok) => ok,
                    Err(e) => {
                        eprintln!("[serve] {group}/{}: {learner} round trip: {e}", data.name());
                        false
                    }
                };
                let _ = std::fs::remove_file(&path);
                if !exported {
                    if let Some(out) = &exec.artifact {
                        let saved = match exec.artifact_format {
                            ArtifactFormat::Json => compiled.save(out),
                            ArtifactFormat::Blob => {
                                flaml_core::save_blob(&compiled, out, BlobOptions::tuned())
                            }
                        };
                        match saved {
                            Ok(fp) => {
                                eprintln!(
                                    "[serve] exported {learner} on {} to {} as {} (fingerprint \
                                     {fp:#018x})",
                                    data.name(),
                                    out.display(),
                                    exec.artifact_format,
                                );
                                exported = true;
                            }
                            Err(e) => eprintln!("[serve] --artifact export failed: {e}"),
                        }
                    }
                }

                let slot = format!("{group}/{}/{learner}", data.name());
                let engine = BatchEngine::new(&pool, exec.batch).with_sink(sink.clone());
                let batched_identical = pred_bits(&engine.predict(&slot, &compiled, &request))
                    == pred_bits(&interpreted);

                let secs_single = fastest(cycles, || {
                    std::hint::black_box(compiled.predict(&request));
                });
                let secs_batched = fastest(cycles, || {
                    std::hint::black_box(engine.predict(&slot, &compiled, &request));
                });
                let row = ServeRow {
                    dataset: data.name().to_string(),
                    group: group.to_string(),
                    learner: learner.to_string(),
                    rows: n,
                    bits_identical,
                    artifact_round_trip,
                    batched_identical,
                    secs_single,
                    secs_batched,
                    rows_per_sec_single: n as f64 / secs_single.max(1e-9),
                    rows_per_sec_batched: n as f64 / secs_batched.max(1e-9),
                    speedup: secs_single / secs_batched.max(1e-9),
                };
                eprintln!(
                    "[serve] {group}/{}: {learner}: {} rows, {:.0} rows/s single, {:.0} rows/s \
                     batched ({:.2}x), bits={} round_trip={} batched={}",
                    row.dataset,
                    row.rows,
                    row.rows_per_sec_single,
                    row.rows_per_sec_batched,
                    row.speedup,
                    row.bits_identical,
                    row.artifact_round_trip,
                    row.batched_identical,
                );
                rows.push(row);
            }
        }
    }

    let hot_swap_data = Dataset::new(
        "hot-swap",
        flaml_data::Task::Binary,
        vec![(0..200).map(|i| (i % 31) as f64 / 31.0).collect()],
        (0..200).map(|i| f64::from((i % 31) > 15)).collect(),
    )
    .expect("hot-swap dataset");
    let hot_swap_consistent = hot_swap_check(&hot_swap_data, 12);

    let telemetry = flaml_core::ServeTelemetry::new().drain(&rx);
    let slots: Vec<SlotLatency> = telemetry
        .slots
        .iter()
        .map(|(slot, s)| SlotLatency {
            slot: slot.clone(),
            batches: s.batches,
            rows: s.rows,
            p50_secs: s.p50(),
            p95_secs: s.p95(),
            p99_secs: s.p99(),
            rows_per_sec: s.throughput(),
            mean_occupancy: s.mean_occupancy(),
        })
        .collect();

    let correct = rows
        .iter()
        .all(|r| r.bits_identical && r.artifact_round_trip && r.batched_identical);
    let geomean = if rows.is_empty() {
        0.0
    } else {
        (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let report = ServeReport {
        workers: exec.concurrency,
        batch_rows: exec.batch,
        total_rows_served: telemetry.total_rows(),
        hot_swap_consistent,
        speedup: geomean,
        min_speedup,
        pass: correct && hot_swap_consistent && !rows.is_empty() && geomean >= min_speedup,
        rows,
        slots,
    };

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let storage = flaml_core::disk();
    flaml_core::atomic_write_file(
        storage.as_ref(),
        std::path::Path::new(&out_path),
        json.as_bytes(),
    )
    .expect("write results json");

    println!(
        "serve: {} model/dataset cells, {} rows served over the pool ({} workers, batch {}), \
         {:.2}x geomean batched speedup (need >= {min_speedup}x), correctness={}, hot_swap={}",
        report.rows.len(),
        report.total_rows_served,
        report.workers,
        report.batch_rows,
        report.speedup,
        correct,
        report.hot_swap_consistent,
    );
    eprintln!("[serve] wrote {out_path}");
    if !correct {
        eprintln!("[serve] FAIL: a compiled, reloaded or batched prediction diverged");
    }
    if !report.hot_swap_consistent {
        eprintln!("[serve] FAIL: a reader observed a torn or stale model");
    }
    if !report.pass {
        std::process::exit(1);
    }
}
