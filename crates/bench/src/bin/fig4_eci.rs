//! Figure 4 — ECI-based prioritization: best error per learner vs. AutoML
//! time, and the per-learner ECI trajectory (self-adjusting priorities).
//!
//! ```text
//! cargo run -p flaml-bench --release --bin fig4_eci -- --budget 10
//! ```

use flaml_bench::{journal_stem, render_table, Args, Method};
use flaml_synth::binary_suite;
use std::collections::BTreeMap;

fn main() {
    let args = Args::parse();
    let exec = args.exec();
    let budget = args.f64("budget", 10.0);
    let data = binary_suite(exec.scale())
        .into_iter()
        .find(|d| d.name() == "higgs-like")
        .expect("suite contains higgs-like");

    let mut cfg = exec.run_config(budget, 500);
    cfg.journal = exec.journal_file(&journal_stem(data.name(), "flaml", budget, exec.seed));
    let result = Method::Flaml.run_with(&data, &cfg).expect("flaml runs");

    // Best error per learner over time (the figure's top panel).
    let mut best_per_learner: BTreeMap<String, f64> = BTreeMap::new();
    let mut rows = Vec::new();
    for t in &result.trials {
        let name = t.learner.clone();
        let entry = best_per_learner
            .entry(name.clone())
            .or_insert(f64::INFINITY);
        if t.error < *entry {
            *entry = t.error;
        }
        let mut row = vec![
            t.iter.to_string(),
            format!("{:.2}", t.total_time),
            name.to_string(),
            if entry.is_finite() {
                format!("{:.4}", entry)
            } else {
                "inf".to_string()
            },
        ];
        // ECI of every learner after this trial (the figure's arrows).
        for (l, eci) in &t.eci_snapshot {
            row.push(format!("{l}={eci:.2}"));
        }
        // Pad so all rows have the same width.
        while row.len() < 4 + result.trials[0].eci_snapshot.len() {
            row.push(String::new());
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec![
        "iter".into(),
        "time_s".into(),
        "learner".into(),
        "learner_best_err".into(),
    ];
    for i in 0..result.trials[0].eci_snapshot.len() {
        header.push(format!("eci_{i}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));

    println!("\nFinal best error per learner (top panel end state):");
    for (l, e) in &best_per_learner {
        println!("  {l:12} {e:.4}");
    }
    println!(
        "\nBest overall: {} with {} (error {:.4})",
        result.best_learner, result.best_config_rendered, result.best_error
    );
}
