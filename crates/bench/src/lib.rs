//! Benchmark harness for the FLAML reproduction: everything needed to
//! regenerate the paper's tables and figures on the synthetic workloads.
//!
//! One binary per experiment (see `src/bin/`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_anytime` | Figure 1 (a–c): per-trial regret/cost vs. time |
//! | `fig4_eci` | Figure 4: best error per learner + ECI trajectory |
//! | `table3_case_study` | Table 3: config trace, FLAML vs. BOHB |
//! | `table5_space` | Table 5: the default search space |
//! | `fig5_scores` | Figure 5: scaled scores per dataset x budget |
//! | `fig6_boxplot` | Figure 6: score-difference box plots |
//! | `table9_smaller_budget` | Table 9: % tasks won with smaller budget |
//! | `fig7_ablation` | Figure 7: ablation error curves |
//! | `fig8_ablation_all` | Figure 8: ablation score differences |
//! | `table4_selectivity` | Table 4: selectivity-estimation q-errors |
//! | `journal_tool` | (no figure) inspect / verify-replay / export-csv on trial journals |
//! | `bench_dataplane` | (no figure) prepared-data cache purity + replay throughput gate |
//! | `bench_serve` | (no figure) compiled-artifact bit-exactness, batched-inference identity + throughput gate, hot-swap soak, serving latency JSON |
//! | `bench_blob` | (no figure) binary-artifact bit-exactness per layout, open-to-first-predict speedup gate vs. JSON, cross-process page-sharing probe |
//! | `bench_server` | (no figure) multi-tenant service load generator: mixed fit/predict stream with p99 + rows/sec gates, and `--verify` byte-compares resumed search journals against in-process reference runs |
//!
//! Every binary accepts the shared execution flags parsed by
//! [`cli::ExecArgs`] — `--seed`, `--jobs`, `--virtual`, `--chaos`,
//! `--max-trials`, and `--journal DIR` / `--resume` for crash-safe
//! journaling and continuation of the FLAML runs.
//!
//! The library half provides the shared machinery: a [`Method`] registry
//! over FLAML, its ablations and the baselines; the comparative-study
//! [`grid`] runner with scaled-score calibration; and plain-text
//! [`report`] formatting (tables, box-plot summaries, win percentages).

#![warn(missing_docs)]

pub mod cli;
pub mod csv;
pub mod grid;
pub mod report;
pub mod roster;
pub mod run;

pub use cli::{journal_stem, Args, ExecArgs};
pub use csv::{parse_trials_csv, render_trials_csv, TrialCsvRow, TRIAL_CSV_HEADER};
pub use grid::{paired_scores, run_grid, GridResult, GridSpec};
pub use report::{box_stats, percent_better_or_equal, render_table, BoxStats, TelemetryCollector};
pub use run::{evaluate_scaled, holdout_split, Method, RunConfig};
