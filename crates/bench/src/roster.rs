//! The serving benchmark roster: one fitted model per learner kind the
//! artifact format covers (GBDT, random forest, linear, stacked), plus
//! the request-shaping and timing helpers the serving benchmarks
//! (`bench_serve`, `bench_blob`) share.

use flaml_data::Dataset;
use flaml_learners::{
    fit_meta, meta_features, FittedModel, Forest, ForestParams, Gbdt, GbdtParams, Linear,
    LinearParams, StackedModel,
};
use flaml_metrics::Pred;
use std::time::Instant;

/// The prediction vector as raw bits, for exact comparisons.
pub fn pred_bits(p: &Pred) -> Vec<u64> {
    match p {
        Pred::Values(v) => v.iter().map(|x| x.to_bits()).collect(),
        Pred::Probs { p, .. } => p.iter().map(|x| x.to_bits()).collect(),
    }
}

/// Fits the full learner roster the artifact format covers. Returns an
/// empty roster (after printing the failure) if any fit fails, so
/// callers skip the dataset rather than benchmark a partial roster.
pub fn fit_roster(data: &Dataset, seed: u64) -> Vec<(&'static str, FittedModel)> {
    let gbdt: FittedModel = match Gbdt::fit(
        data,
        &GbdtParams {
            n_trees: 20,
            ..GbdtParams::default()
        },
        seed,
    ) {
        Ok(m) => m.into(),
        Err(e) => {
            eprintln!("[roster] {}: gbdt fit failed: {e}", data.name());
            return Vec::new();
        }
    };
    let forest: FittedModel = match Forest::fit(
        data,
        &ForestParams {
            n_trees: 10,
            ..ForestParams::default()
        },
        seed,
    ) {
        Ok(m) => m.into(),
        Err(e) => {
            eprintln!("[roster] {}: forest fit failed: {e}", data.name());
            return Vec::new();
        }
    };
    let linear: FittedModel = match Linear::fit(data, &LinearParams::default(), seed) {
        Ok(m) => m.into(),
        Err(e) => {
            eprintln!("[roster] {}: linear fit failed: {e}", data.name());
            return Vec::new();
        }
    };
    let members = vec![gbdt.clone(), forest.clone()];
    let oof = meta_features(&members, data, data.target().to_vec());
    let stacked: FittedModel = match fit_meta(&oof, seed) {
        Ok(meta) => StackedModel::new(members, meta, data.task()).into(),
        Err(e) => {
            eprintln!("[roster] {}: meta fit failed: {e}", data.name());
            return Vec::new();
        }
    };
    vec![
        ("gbdt", gbdt),
        ("forest", forest),
        ("linear", linear),
        ("stacked", stacked),
    ]
}

/// Tiles a dataset's rows cyclically up to `rows` — a serving request
/// large enough to amortize chunk dispatch (real services batch many
/// requests over one model; the training matrix alone is far smaller
/// than a steady-state serving window).
pub fn tile_dataset(data: &Dataset, rows: usize) -> Dataset {
    let n = data.n_rows();
    if rows <= n {
        return data.clone();
    }
    let cols: Vec<Vec<f64>> = data
        .columns()
        .iter()
        .map(|c| (0..rows).map(|i| c[i % n]).collect())
        .collect();
    let y: Vec<f64> = (0..rows).map(|i| data.target()[i % n]).collect();
    Dataset::new(data.name(), data.task(), cols, y).expect("tiled dataset")
}

/// Fastest of `cycles` timed runs of `f`, after one untimed warmup.
pub fn fastest(cycles: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..cycles.max(1) {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}
