//! The comparative-study grid (datasets × budgets × methods) behind
//! Figures 5, 6, 8 and Table 9: run every method on every dataset at every
//! budget, evaluate on a held-out test split, and calibrate to the
//! benchmark's scaled score.
//!
//! With [`GridSpec::jobs`] > 1 the independent (dataset, budget, method)
//! cells execute concurrently on a [`flaml_exec::ExecPool`]; results come
//! back in submission order, so the results vector is identical at any
//! job count (stderr progress lines may interleave).

use crate::report::TelemetryCollector;
use crate::run::{evaluate_scaled, holdout_split, Method, RunConfig};
use flaml_baselines::calibration_anchors;
use flaml_core::{ExecPool, TimeSource};
use flaml_data::Dataset;
use flaml_exec::Job;
use flaml_metrics::{Metric, ScaleAnchors};
use serde::{Deserialize, Serialize};

/// One grid cell's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// Dataset name.
    pub dataset: String,
    /// Dataset group ("binary" / "multiclass" / "regression").
    pub group: String,
    /// Method name.
    pub method: String,
    /// Budget in seconds.
    pub budget: f64,
    /// Raw test score (metric-dependent, higher is better).
    pub raw_score: f64,
    /// Benchmark-calibrated scaled score (0 = constant, 1 = tuned RF).
    pub scaled_score: f64,
    /// Number of trials the method completed.
    pub n_trials: usize,
    /// Best learner the method selected.
    pub best_learner: String,
    /// Trials that ran past their cooperative deadline.
    #[serde(default)]
    pub n_timeouts: usize,
    /// Trials whose learner panicked (absorbed as failed trials).
    #[serde(default)]
    pub n_panics: usize,
    /// Retries spent on transient failures across all trials.
    #[serde(default)]
    pub n_retries: usize,
    /// Learner quarantine episodes during the run.
    #[serde(default)]
    pub n_quarantined: usize,
}

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Budgets in seconds, ascending (the paper's 1m / 10m / 1h, scaled).
    pub budgets: Vec<f64>,
    /// Methods to compare.
    pub methods: Vec<Method>,
    /// Test-set fraction per dataset.
    pub test_ratio: f64,
    /// Seed.
    pub seed: u64,
    /// FLAML's initial sample size / the bandit baselines' fidelity floor.
    pub sample_init: usize,
    /// Wall or virtual budget accounting.
    pub time_source: TimeSource,
    /// Budget for tuning the reference random forest of the calibration.
    pub rf_budget: f64,
    /// Optional per-run trial cap (keeps smoke runs fast).
    pub max_trials: Option<usize>,
    /// Grid cells to execute concurrently (1 = sequential).
    pub jobs: usize,
    /// Optional deterministic fault injection (`--chaos seed:rate`),
    /// applied to the FLAML methods' trial execution.
    pub chaos: Option<flaml_core::FaultPlan>,
    /// Optional directory receiving one crash-safe trial journal per
    /// FLAML cell, named `<dataset>_<method>_<budget>s_seed<seed>.jsonl`
    /// (see [`crate::journal_stem`]).
    pub journal_dir: Option<std::path::PathBuf>,
    /// With `journal_dir` set: cells whose journal already exists resume
    /// from it (replaying committed trials) instead of starting over.
    pub resume: bool,
    /// Whether the FLAML cells use the cross-trial boosting tree cache
    /// (search traces are bit-identical either way).
    pub tree_cache: bool,
    /// Tree-cache byte budget per FLAML cell.
    pub tree_cache_bytes: usize,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            budgets: vec![0.5, 2.0, 8.0],
            methods: Method::COMPARATIVE.to_vec(),
            test_ratio: 0.2,
            seed: 0,
            sample_init: 500,
            time_source: TimeSource::Wall,
            rf_budget: 2.0,
            max_trials: None,
            jobs: 1,
            chaos: None,
            journal_dir: None,
            resume: false,
            tree_cache: true,
            tree_cache_bytes: crate::run::DEFAULT_TREE_CACHE_BYTES,
        }
    }
}

/// A dataset prepared for its grid cells: the shared split and the
/// shared calibration anchors.
struct Prepared {
    train: Dataset,
    test: Dataset,
    metric: Metric,
    anchors: ScaleAnchors,
}

/// Runs the grid over `(group, datasets)` pairs, printing one progress
/// line per cell to stderr.
///
/// [`GridSpec::jobs`] independent cells run concurrently; the results
/// vector is in cell submission order (dataset, then budget, then
/// method) regardless of the job count.
pub fn run_grid(groups: &[(&str, Vec<Dataset>)], spec: &GridSpec) -> Vec<GridResult> {
    let pool = ExecPool::new(spec.jobs.max(1));

    // Stage 1: one train/test split and one calibration per dataset,
    // shared across all of its (budget, method) cells. Datasets are
    // independent, so preparation itself runs on the pool.
    let flat: Vec<(&str, &Dataset)> = groups
        .iter()
        .flat_map(|(g, ds)| ds.iter().map(move |d| (*g, d)))
        .collect();
    let prep_jobs: Vec<Job<'_, Option<Prepared>>> = flat
        .iter()
        .map(|&(_, data)| {
            Job::new(move |_ctx| {
                let (train, test) = holdout_split(data, spec.test_ratio, spec.seed);
                let metric = Metric::default_for(data.task());
                match calibration_anchors(
                    &train,
                    &test,
                    metric,
                    spec.rf_budget,
                    spec.seed,
                    spec.time_source,
                    spec.max_trials,
                ) {
                    Ok(anchors) => Some(Prepared {
                        train,
                        test,
                        metric,
                        anchors,
                    }),
                    Err(e) => {
                        eprintln!("[grid] {}: calibration failed: {e}", data.name());
                        None
                    }
                }
            })
            .label(data.name())
        })
        .collect();
    let prepared: Vec<Option<Prepared>> = pool
        .run_batch(prep_jobs, None)
        .into_iter()
        .map(|r| r.status.into_value().flatten())
        .collect();

    // Stage 2: every (dataset, budget, method) cell is an independent
    // pool job. Submission order fixes the output order.
    let mut cells: Vec<(usize, f64, Method)> = Vec::new();
    for (i, prep) in prepared.iter().enumerate() {
        if prep.is_some() {
            for &budget in &spec.budgets {
                for &method in &spec.methods {
                    cells.push((i, budget, method));
                }
            }
        }
    }
    let flat_ref = &flat;
    let prepared_ref = &prepared;
    let cell_jobs: Vec<Job<'_, Option<GridResult>>> = cells
        .iter()
        .map(|&(i, budget, method)| {
            Job::new(move |_ctx| {
                let (group, data) = flat_ref[i];
                let prep = prepared_ref[i]
                    .as_ref()
                    .expect("only prepared cells queued");
                let collector = TelemetryCollector::new();
                let journal = spec.journal_dir.as_ref().map(|dir| {
                    dir.join(format!(
                        "{}.jsonl",
                        crate::journal_stem(data.name(), method.name(), budget, spec.seed)
                    ))
                });
                let result = match method.run_with(
                    &prep.train,
                    &RunConfig {
                        budget_secs: budget,
                        seed: spec.seed,
                        sample_init: spec.sample_init,
                        time_source: spec.time_source,
                        max_trials: spec.max_trials,
                        workers: 1,
                        event_sink: Some(collector.sink()),
                        fault_plan: spec.chaos,
                        journal,
                        resume: spec.resume,
                        tree_cache: spec.tree_cache,
                        tree_cache_bytes: spec.tree_cache_bytes,
                    },
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("[grid] {} / {method} @ {budget}s failed: {e}", data.name());
                        return None;
                    }
                };
                let telemetry = collector.finish();
                let (raw, scaled) = match evaluate_scaled(
                    &result,
                    &prep.train,
                    &prep.test,
                    prep.metric,
                    Some(prep.anchors),
                    spec.rf_budget,
                    spec.seed,
                    spec.time_source,
                ) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("[grid] {} eval failed: {e}", data.name());
                        return None;
                    }
                };
                eprintln!(
                    "[grid] {group}/{} {method} @ {budget}s: scaled {scaled:.3} ({} trials)",
                    data.name(),
                    result.trials.len()
                );
                // The baseline drivers don't emit events; fall back to the
                // flags their trial records carry.
                let n_timeouts = telemetry
                    .timed_out
                    .max(result.trials.iter().filter(|t| t.timed_out).count());
                let n_panics = telemetry
                    .panicked
                    .max(result.trials.iter().filter(|t| t.panicked).count());
                let n_retries = telemetry.retried.max(result.n_retries);
                let n_quarantined = telemetry.quarantined.max(result.n_quarantined);
                Some(GridResult {
                    dataset: data.name().to_string(),
                    group: group.to_string(),
                    method: method.name().to_string(),
                    budget,
                    raw_score: raw,
                    scaled_score: scaled,
                    n_trials: result.trials.len(),
                    best_learner: result.best_learner.clone(),
                    n_timeouts,
                    n_panics,
                    n_retries,
                    n_quarantined,
                })
            })
            .label(format!("{}/{method}@{budget}", flat_ref[i].1.name()))
        })
        .collect();
    pool.run_batch(cell_jobs, None)
        .into_iter()
        .filter_map(|r| r.status.into_value().flatten())
        .collect()
}

/// Serializes grid results to a JSON file (pretty-printed, stable
/// order). The file is published atomically, so a crashed run never
/// leaves a torn results file for a later `--results` load to choke on.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_results(path: &str, results: &[GridResult]) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = serde_json::to_string_pretty(results)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let storage = flaml_store::disk();
    flaml_store::atomic_write_file(
        storage.as_ref(),
        std::path::Path::new(path),
        json.as_bytes(),
    )
    .map_err(std::io::Error::from)
}

/// Loads grid results saved by [`save_results`]; `None` if the file does
/// not exist or cannot be parsed.
pub fn load_results(path: &str) -> Option<Vec<GridResult>> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// The default grid used by Figures 5/6 and Table 9 when no results file
/// is given: a subset of each suite (or all of it with `full = true`).
pub fn default_groups(
    scale: flaml_synth::SuiteScale,
    per_group: usize,
) -> Vec<(&'static str, Vec<Dataset>)> {
    // Spread the subset across the size-ordered suite so small and large
    // datasets are both represented.
    let take = |v: Vec<Dataset>| -> Vec<Dataset> {
        if per_group >= v.len() {
            return v;
        }
        let n = v.len();
        let mut picked: Vec<usize> = (0..per_group)
            .map(|i| i * (n - 1) / (per_group - 1).max(1))
            .collect();
        picked.dedup();
        let mut v: Vec<Option<Dataset>> = v.into_iter().map(Some).collect();
        picked
            .into_iter()
            .map(|i| v[i].take().expect("unique index"))
            .collect()
    };
    vec![
        ("binary", take(flaml_synth::binary_suite(scale))),
        ("multiclass", take(flaml_synth::multiclass_suite(scale))),
        ("regression", take(flaml_synth::regression_suite(scale))),
    ]
}

/// Extracts the paired scores of `(method, budget)` across datasets, in
/// dataset order, for win-rate and box-plot computations. Only datasets
/// where both sides have results are included.
pub fn paired_scores(
    results: &[GridResult],
    a: (&str, f64),
    b: (&str, f64),
) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let find = |method: &str, budget: f64, dataset: &str| -> Option<f64> {
        results
            .iter()
            .find(|r| {
                r.method == method && (r.budget - budget).abs() < 1e-9 && r.dataset == dataset
            })
            .map(|r| r.scaled_score)
    };
    let mut datasets: Vec<&str> = results.iter().map(|r| r.dataset.as_str()).collect();
    datasets.dedup();
    let mut seen = std::collections::BTreeSet::new();
    for d in datasets {
        if !seen.insert(d) {
            continue;
        }
        if let (Some(x), Some(y)) = (find(a.0, a.1, d), find(b.0, b.1, d)) {
            xs.push(x);
            ys.push(y);
        }
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_core::default_virtual_cost;
    use flaml_synth::{binary_suite, SuiteScale};

    #[test]
    fn tiny_grid_produces_results() {
        let datasets = vec![binary_suite(SuiteScale::Small)[0].clone()];
        let spec = GridSpec {
            budgets: vec![0.3],
            methods: vec![Method::Flaml, Method::Random],
            time_source: TimeSource::Virtual(default_virtual_cost),
            rf_budget: 0.3,
            max_trials: Some(6),
            sample_init: 100,
            ..GridSpec::default()
        };
        let results = run_grid(&[("binary", datasets)], &spec);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.scaled_score.is_finite());
            assert!(r.n_trials > 0);
        }
    }

    #[test]
    fn parallel_grid_matches_sequential() {
        let datasets = vec![binary_suite(SuiteScale::Small)[0].clone()];
        let spec = GridSpec {
            budgets: vec![0.2, 0.4],
            methods: vec![Method::Flaml, Method::Random],
            time_source: TimeSource::Virtual(default_virtual_cost),
            rf_budget: 0.3,
            max_trials: Some(5),
            sample_init: 100,
            ..GridSpec::default()
        };
        let groups = [("binary", datasets)];
        let sequential = run_grid(&groups, &spec);
        let parallel = run_grid(
            &groups,
            &GridSpec {
                jobs: 4,
                ..spec.clone()
            },
        );
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.dataset, p.dataset);
            assert_eq!(s.method, p.method);
            assert_eq!(s.budget, p.budget);
            // Virtual clock: identical cells must score identically.
            assert_eq!(s.scaled_score.to_bits(), p.scaled_score.to_bits());
            assert_eq!(s.n_trials, p.n_trials);
        }
    }

    #[test]
    fn paired_scores_align_by_dataset() {
        let results = vec![
            GridResult {
                dataset: "a".into(),
                group: "binary".into(),
                method: "flaml".into(),
                budget: 1.0,
                raw_score: 0.9,
                scaled_score: 1.1,
                n_trials: 5,
                best_learner: "lightgbm".into(),
                n_timeouts: 0,
                n_panics: 0,
                n_retries: 0,
                n_quarantined: 0,
            },
            GridResult {
                dataset: "a".into(),
                group: "binary".into(),
                method: "bohb".into(),
                budget: 1.0,
                raw_score: 0.8,
                scaled_score: 0.7,
                n_trials: 5,
                best_learner: "xgboost".into(),
                n_timeouts: 0,
                n_panics: 0,
                n_retries: 0,
                n_quarantined: 0,
            },
            GridResult {
                dataset: "b".into(),
                group: "binary".into(),
                method: "flaml".into(),
                budget: 1.0,
                raw_score: 0.5,
                scaled_score: 0.4,
                n_trials: 5,
                best_learner: "rf".into(),
                n_timeouts: 0,
                n_panics: 0,
                n_retries: 0,
                n_quarantined: 0,
            },
        ];
        let (xs, ys) = paired_scores(&results, ("flaml", 1.0), ("bohb", 1.0));
        assert_eq!(xs, vec![1.1]);
        assert_eq!(ys, vec![0.7]);
    }
}
