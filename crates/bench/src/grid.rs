//! The comparative-study grid (datasets × budgets × methods) behind
//! Figures 5, 6, 8 and Table 9: run every method on every dataset at every
//! budget, evaluate on a held-out test split, and calibrate to the
//! benchmark's scaled score.

use crate::run::{evaluate_scaled, holdout_split, Method};
use flaml_baselines::calibration_anchors;
use flaml_core::TimeSource;
use flaml_data::Dataset;
use flaml_metrics::Metric;
use serde::{Deserialize, Serialize};

/// One grid cell's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// Dataset name.
    pub dataset: String,
    /// Dataset group ("binary" / "multiclass" / "regression").
    pub group: String,
    /// Method name.
    pub method: String,
    /// Budget in seconds.
    pub budget: f64,
    /// Raw test score (metric-dependent, higher is better).
    pub raw_score: f64,
    /// Benchmark-calibrated scaled score (0 = constant, 1 = tuned RF).
    pub scaled_score: f64,
    /// Number of trials the method completed.
    pub n_trials: usize,
    /// Best learner the method selected.
    pub best_learner: String,
}

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Budgets in seconds, ascending (the paper's 1m / 10m / 1h, scaled).
    pub budgets: Vec<f64>,
    /// Methods to compare.
    pub methods: Vec<Method>,
    /// Test-set fraction per dataset.
    pub test_ratio: f64,
    /// Seed.
    pub seed: u64,
    /// FLAML's initial sample size / the bandit baselines' fidelity floor.
    pub sample_init: usize,
    /// Wall or virtual budget accounting.
    pub time_source: TimeSource,
    /// Budget for tuning the reference random forest of the calibration.
    pub rf_budget: f64,
    /// Optional per-run trial cap (keeps smoke runs fast).
    pub max_trials: Option<usize>,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            budgets: vec![0.5, 2.0, 8.0],
            methods: Method::COMPARATIVE.to_vec(),
            test_ratio: 0.2,
            seed: 0,
            sample_init: 500,
            time_source: TimeSource::Wall,
            rf_budget: 2.0,
            max_trials: None,
        }
    }
}

/// Runs the grid over `(group, datasets)` pairs, printing one progress
/// line per cell to stderr.
pub fn run_grid(groups: &[(&str, Vec<Dataset>)], spec: &GridSpec) -> Vec<GridResult> {
    let mut out = Vec::new();
    for (group, datasets) in groups {
        for data in datasets {
            let (train, test) = holdout_split(data, spec.test_ratio, spec.seed);
            let metric = Metric::default_for(data.task());
            // One calibration per dataset, shared across methods/budgets.
            let anchors = match calibration_anchors(
                &train,
                &test,
                metric,
                spec.rf_budget,
                spec.seed,
                spec.time_source,
                spec.max_trials,
            ) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("[grid] {}: calibration failed: {e}", data.name());
                    continue;
                }
            };
            for &budget in &spec.budgets {
                for &method in &spec.methods {
                    let result = match method.run(
                        &train,
                        budget,
                        spec.seed,
                        spec.sample_init,
                        spec.time_source,
                        spec.max_trials,
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!(
                                "[grid] {} / {} @ {budget}s failed: {e}",
                                data.name(),
                                method
                            );
                            continue;
                        }
                    };
                    let (raw, scaled) = match evaluate_scaled(
                        &result,
                        &train,
                        &test,
                        metric,
                        Some(anchors),
                        spec.rf_budget,
                        spec.seed,
                        spec.time_source,
                    ) {
                        Ok(v) => v,
                        Err(e) => {
                            eprintln!("[grid] {} eval failed: {e}", data.name());
                            continue;
                        }
                    };
                    eprintln!(
                        "[grid] {group}/{} {} @ {budget}s: scaled {scaled:.3} ({} trials)",
                        data.name(),
                        method,
                        result.trials.len()
                    );
                    out.push(GridResult {
                        dataset: data.name().to_string(),
                        group: group.to_string(),
                        method: method.name().to_string(),
                        budget,
                        raw_score: raw,
                        scaled_score: scaled,
                        n_trials: result.trials.len(),
                        best_learner: result.best_learner.clone(),
                    });
                }
            }
        }
    }
    out
}

/// Serializes grid results to a JSON file (pretty-printed, stable order).
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_results(path: &str, results: &[GridResult]) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = serde_json::to_string_pretty(results)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Loads grid results saved by [`save_results`]; `None` if the file does
/// not exist or cannot be parsed.
pub fn load_results(path: &str) -> Option<Vec<GridResult>> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// The default grid used by Figures 5/6 and Table 9 when no results file
/// is given: a subset of each suite (or all of it with `full = true`).
pub fn default_groups(
    scale: flaml_synth::SuiteScale,
    per_group: usize,
) -> Vec<(&'static str, Vec<Dataset>)> {
    // Spread the subset across the size-ordered suite so small and large
    // datasets are both represented.
    let take = |v: Vec<Dataset>| -> Vec<Dataset> {
        if per_group >= v.len() {
            return v;
        }
        let n = v.len();
        let mut picked: Vec<usize> = (0..per_group)
            .map(|i| i * (n - 1) / (per_group - 1).max(1))
            .collect();
        picked.dedup();
        let mut v: Vec<Option<Dataset>> = v.into_iter().map(Some).collect();
        picked.into_iter().map(|i| v[i].take().expect("unique index")).collect()
    };
    vec![
        ("binary", take(flaml_synth::binary_suite(scale))),
        ("multiclass", take(flaml_synth::multiclass_suite(scale))),
        ("regression", take(flaml_synth::regression_suite(scale))),
    ]
}

/// Extracts the paired scores of `(method, budget)` across datasets, in
/// dataset order, for win-rate and box-plot computations. Only datasets
/// where both sides have results are included.
pub fn paired_scores(
    results: &[GridResult],
    a: (&str, f64),
    b: (&str, f64),
) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let find = |method: &str, budget: f64, dataset: &str| -> Option<f64> {
        results
            .iter()
            .find(|r| r.method == method && (r.budget - budget).abs() < 1e-9 && r.dataset == dataset)
            .map(|r| r.scaled_score)
    };
    let mut datasets: Vec<&str> = results.iter().map(|r| r.dataset.as_str()).collect();
    datasets.dedup();
    let mut seen = std::collections::BTreeSet::new();
    for d in datasets {
        if !seen.insert(d) {
            continue;
        }
        if let (Some(x), Some(y)) = (find(a.0, a.1, d), find(b.0, b.1, d)) {
            xs.push(x);
            ys.push(y);
        }
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_core::default_virtual_cost;
    use flaml_synth::{binary_suite, SuiteScale};

    #[test]
    fn tiny_grid_produces_results() {
        let datasets = vec![binary_suite(SuiteScale::Small)[0].clone()];
        let spec = GridSpec {
            budgets: vec![0.3],
            methods: vec![Method::Flaml, Method::Random],
            time_source: TimeSource::Virtual(default_virtual_cost),
            rf_budget: 0.3,
            max_trials: Some(6),
            sample_init: 100,
            ..GridSpec::default()
        };
        let results = run_grid(&[("binary", datasets)], &spec);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.scaled_score.is_finite());
            assert!(r.n_trials > 0);
        }
    }

    #[test]
    fn paired_scores_align_by_dataset() {
        let results = vec![
            GridResult {
                dataset: "a".into(),
                group: "binary".into(),
                method: "flaml".into(),
                budget: 1.0,
                raw_score: 0.9,
                scaled_score: 1.1,
                n_trials: 5,
                best_learner: "lightgbm".into(),
            },
            GridResult {
                dataset: "a".into(),
                group: "binary".into(),
                method: "bohb".into(),
                budget: 1.0,
                raw_score: 0.8,
                scaled_score: 0.7,
                n_trials: 5,
                best_learner: "xgboost".into(),
            },
            GridResult {
                dataset: "b".into(),
                group: "binary".into(),
                method: "flaml".into(),
                budget: 1.0,
                raw_score: 0.5,
                scaled_score: 0.4,
                n_trials: 5,
                best_learner: "rf".into(),
            },
        ];
        let (xs, ys) = paired_scores(&results, ("flaml", 1.0), ("bohb", 1.0));
        assert_eq!(xs, vec![1.1]);
        assert_eq!(ys, vec![0.7]);
    }
}
