//! Histogram-based gradient-boosted decision trees.
//!
//! One boosting core with three tree-growth policies stands in for the
//! three boosting libraries in the paper's ML layer:
//!
//! * [`Growth::LeafWise`] — best-first growth bounded by `max_leaves`
//!   (LightGBM's strategy);
//! * [`Growth::DepthWise`] — level-by-level growth (XGBoost's classic
//!   strategy), still bounded by `max_leaves`;
//! * [`Growth::Oblivious`] — one shared split per level (CatBoost's
//!   symmetric trees), typically combined with
//!   [`GbdtParams::early_stop_rounds`].
//!
//! Split gains use the second-order formulation with L1/L2 regularization
//! (`reg_alpha`, `reg_lambda`) and `min_child_weight` on the hessian sum;
//! rows and columns can be subsampled (`subsample`, `colsample_bytree`,
//! `colsample_bylevel`). All of these are searched by FLAML (Table 5).

use crate::binning::{BinMapper, BinnedDataset, PreparedBins};
use crate::link::{sigmoid, softmax_in_place};
use crate::FitError;
use flaml_data::{DatasetView, Task};
use flaml_metrics::Pred;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tree growth policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Growth {
    /// Best-first (leaf-wise) growth: repeatedly split the leaf with the
    /// highest gain until `max_leaves` is reached.
    LeafWise,
    /// Level-by-level (depth-wise) growth until `max_leaves` is reached.
    DepthWise,
    /// Oblivious (symmetric) trees: all leaves of a level share one split.
    Oblivious,
}

/// Hyperparameters of the [`Gbdt`] learner, mirroring the paper's Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds ("tree num").
    pub n_trees: usize,
    /// Maximum leaves per tree ("leaf num").
    pub max_leaves: usize,
    /// Minimum hessian sum required in each child.
    pub min_child_weight: f64,
    /// Shrinkage applied to each tree's leaf values.
    pub learning_rate: f64,
    /// Row subsample fraction per tree, in `(0, 1]`.
    pub subsample: f64,
    /// L1 regularization on leaf values.
    pub reg_alpha: f64,
    /// L2 regularization on leaf values.
    pub reg_lambda: f64,
    /// Column subsample fraction per tree, in `(0, 1]`.
    pub colsample_bytree: f64,
    /// Column subsample fraction per level, in `(0, 1]`.
    pub colsample_bylevel: f64,
    /// Maximum histogram bins per feature.
    pub max_bin: usize,
    /// Tree growth policy.
    pub growth: Growth,
    /// If set, hold out 10% of the training rows and stop after this many
    /// rounds without validation improvement (CatBoost-style).
    pub early_stop_rounds: Option<usize>,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 100,
            max_leaves: 31,
            min_child_weight: 1e-3,
            learning_rate: 0.1,
            subsample: 1.0,
            reg_alpha: 1e-10,
            reg_lambda: 1.0,
            colsample_bytree: 1.0,
            colsample_bylevel: 1.0,
            max_bin: 255,
            growth: Growth::LeafWise,
            early_stop_rounds: None,
        }
    }
}

impl GbdtParams {
    fn validate(&self) -> Result<(), FitError> {
        if self.n_trees == 0 {
            return Err(FitError::bad_param("n_trees", 0.0, "must be >= 1"));
        }
        if self.max_leaves < 2 {
            return Err(FitError::bad_param(
                "max_leaves",
                self.max_leaves as f64,
                "must be >= 2",
            ));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 2.0) {
            return Err(FitError::bad_param(
                "learning_rate",
                self.learning_rate,
                "must be in (0, 2]",
            ));
        }
        for (name, v) in [
            ("subsample", self.subsample),
            ("colsample_bytree", self.colsample_bytree),
            ("colsample_bylevel", self.colsample_bylevel),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(FitError::bad_param(
                    match name {
                        "subsample" => "subsample",
                        "colsample_bytree" => "colsample_bytree",
                        _ => "colsample_bylevel",
                    },
                    v,
                    "must be in (0, 1]",
                ));
            }
        }
        if self.min_child_weight < 0.0 {
            return Err(FitError::bad_param(
                "min_child_weight",
                self.min_child_weight,
                "must be >= 0",
            ));
        }
        if self.reg_alpha < 0.0 || self.reg_lambda < 0.0 {
            return Err(FitError::bad_param(
                "reg_alpha/reg_lambda",
                self.reg_alpha.min(self.reg_lambda),
                "must be >= 0",
            ));
        }
        Ok(())
    }
}

/// The gradient-boosting learner. Construct models via [`Gbdt::fit`].
#[derive(Debug, Clone, Copy)]
pub struct Gbdt;

#[derive(Debug, Clone)]
struct Node {
    feature: u32,
    threshold: u32,
    left: u32,
    right: u32,
    leaf_value: f64,
    is_leaf: bool,
    /// Objective gain of this node's split (0 for leaves); feeds
    /// gain-weighted feature importance.
    split_gain: f64,
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn leaf(value: f64) -> Tree {
        Tree {
            nodes: vec![Node {
                feature: 0,
                threshold: 0,
                left: 0,
                right: 0,
                leaf_value: value,
                is_leaf: true,
                split_gain: 0.0,
            }],
        }
    }

    fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf).count()
    }

    /// Evaluates the tree on pre-binned feature columns for row `row`.
    fn eval_binned(&self, binned: &BinnedDataset, row: usize) -> f64 {
        let mut at = 0usize;
        loop {
            let node = &self.nodes[at];
            if node.is_leaf {
                return node.leaf_value;
            }
            let bin = binned.column(node.feature as usize)[row];
            at = if bin <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }
}

/// One flattened boosted-tree node, as exported to the serving layer.
/// Thresholds are bin indices (a row goes left when `bin <= threshold`;
/// `NaN` always bins to 0, the leftmost bin); child indices are local to
/// the exporting tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtNode {
    /// Feature column the node splits on (0 for leaves).
    pub feature: u32,
    /// Bin-index split threshold (0 for leaves).
    pub threshold: u32,
    /// Tree-local index of the left child (0 for leaves).
    pub left: u32,
    /// Tree-local index of the right child (0 for leaves).
    pub right: u32,
    /// Leaf value (0 for internal nodes).
    pub leaf_value: f64,
    /// Whether the node is a leaf.
    pub is_leaf: bool,
}

/// A trained gradient-boosting model.
#[derive(Debug, Clone)]
pub struct GbdtModel {
    mapper: BinMapper,
    /// Trees grouped by round: `trees[round * n_groups + class]`.
    trees: Vec<Tree>,
    n_groups: usize,
    init_scores: Vec<f64>,
    task: Task,
    n_features: usize,
}

impl GbdtModel {
    /// The fitted bin mapper (serving artifacts store its cut points).
    pub fn mapper(&self) -> &BinMapper {
        &self.mapper
    }

    /// Number of score groups per row: 1 for regression/binary, `k` for
    /// `k`-class tasks.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Per-group initial scores added to every row before boosting.
    pub fn init_scores(&self) -> &[f64] {
        &self.init_scores
    }

    /// The task the model was trained for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of feature columns the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Flattened per-tree node lists in boosting order (tree `t` scores
    /// group `t % n_groups`), for compilation into a serving artifact.
    pub fn export_trees(&self) -> Vec<Vec<GbdtNode>> {
        self.trees
            .iter()
            .map(|tree| {
                tree.nodes
                    .iter()
                    .map(|n| GbdtNode {
                        feature: n.feature,
                        threshold: n.threshold,
                        left: n.left,
                        right: n.right,
                        leaf_value: n.leaf_value,
                        is_leaf: n.is_leaf,
                    })
                    .collect()
            })
            .collect()
    }
    /// Number of boosting rounds actually kept (after early stopping).
    pub fn n_rounds(&self) -> usize {
        self.trees.len() / self.n_groups
    }

    /// Total number of leaves across all trees.
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(Tree::n_leaves).sum()
    }

    /// Gain-weighted feature importance, normalized to sum to 1 (all
    /// zeros if no tree ever split). Weighting by objective gain rather
    /// than split count keeps the tie-break splits of already-pure nodes
    /// (whose gain is ~0 but positive under L2 regularization) from
    /// diluting the features that actually reduce the loss.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_features];
        for tree in &self.trees {
            for node in &tree.nodes {
                if !node.is_leaf {
                    counts[node.feature as usize] += node.split_gain.max(0.0);
                }
            }
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    /// Raw (margin) scores per row and group, before the link function.
    ///
    /// Rows are binned once up front and every tree is evaluated on the
    /// pre-binned matrix, instead of re-binning each feature value at
    /// every tree traversal; `bin` is deterministic per value, so the
    /// scores are identical to per-row re-binning.
    pub fn raw_scores(&self, data: impl Into<DatasetView>) -> Vec<f64> {
        let data: DatasetView = data.into();
        assert_eq!(
            data.n_features(),
            self.n_features,
            "predicting with a different feature count"
        );
        let n = data.n_rows();
        let k = self.n_groups;
        let binned = self.mapper.transform(&data);
        let mut scores = vec![0.0; n * k];
        for i in 0..n {
            for (c, init) in self.init_scores.iter().enumerate() {
                scores[i * k + c] = *init;
            }
        }
        for (t, tree) in self.trees.iter().enumerate() {
            let c = t % k;
            for (i, slot) in scores.chunks_exact_mut(k).enumerate() {
                slot[c] += tree.eval_binned(&binned, i);
            }
        }
        scores
    }

    /// Predicts class probabilities (classification) or values
    /// (regression).
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different number of features than the
    /// training data.
    pub fn predict(&self, data: impl Into<DatasetView>) -> Pred {
        let raw = self.raw_scores(data);
        match self.task {
            Task::Regression => Pred::from_values(raw),
            Task::Binary => {
                let pos = raw.iter().map(|&f| sigmoid(f)).collect();
                Pred::binary_probs(pos)
            }
            Task::MultiClass(k) => {
                let mut p = raw;
                for row in p.chunks_exact_mut(k) {
                    softmax_in_place(row);
                }
                Pred::Probs { n_classes: k, p }
            }
        }
    }
}

impl Gbdt {
    /// Fits a boosting model. Accepts anything convertible into a
    /// [`DatasetView`] (`&Dataset`, `&DatasetView`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for out-of-range hyperparameters or unusable
    /// data (single-class classification training set).
    pub fn fit(
        data: impl Into<DatasetView>,
        params: &GbdtParams,
        seed: u64,
    ) -> Result<GbdtModel, FitError> {
        Self::fit_bounded(data, params, seed, None)
    }

    /// Like [`Gbdt::fit`] but stops adding trees once `budget` elapses,
    /// returning the model built so far (at least one round). This mirrors
    /// FLAML passing the remaining time budget into each trial.
    ///
    /// # Errors
    ///
    /// Same as [`Gbdt::fit`].
    pub fn fit_bounded(
        data: impl Into<DatasetView>,
        params: &GbdtParams,
        seed: u64,
        budget: Option<Duration>,
    ) -> Result<GbdtModel, FitError> {
        Self::fit_prepared(data, params, seed, budget, None)
    }

    /// Like [`Gbdt::fit_bounded`] but reuses a [`PreparedBins`] artifact
    /// (shared bin cuts plus the pre-binned feature matrix) when one is
    /// supplied for the same `max_bin`; a mismatched or absent artifact
    /// falls back to binning in place. The fitted model is bit-identical
    /// either way — [`PreparedBins::prepare`] produces exactly what
    /// [`BinMapper::fit`] + [`BinMapper::transform`] would.
    ///
    /// # Errors
    ///
    /// Same as [`Gbdt::fit`].
    pub fn fit_prepared(
        data: impl Into<DatasetView>,
        params: &GbdtParams,
        seed: u64,
        budget: Option<Duration>,
        prepared: Option<&PreparedBins>,
    ) -> Result<GbdtModel, FitError> {
        // `start` is captured before binning so the budget covers the
        // whole fit, exactly as the pre-staged monolithic loop did.
        let start = Instant::now();
        let mut state = Self::fit_start(data, params, seed, prepared)?;
        state.advance(params.n_trees, budget, start);
        Ok(state.into_model())
    }

    /// Stage 0 of a resumable fit: validates, bins (or adopts `prepared`
    /// when its `max_bin` matches), gathers targets, splits off the
    /// early-stopping holdout and initializes scores — everything up to,
    /// but not including, the first boosting round. The returned
    /// [`GbdtFitState`] has zero rounds; grow it with
    /// [`Gbdt::fit_continue`].
    ///
    /// # Errors
    ///
    /// Same as [`Gbdt::fit`].
    pub fn fit_start(
        data: impl Into<DatasetView>,
        params: &GbdtParams,
        seed: u64,
        prepared: Option<&PreparedBins>,
    ) -> Result<GbdtFitState, FitError> {
        let data: DatasetView = data.into();
        params.validate()?;
        let n = data.n_rows();
        let n_groups = match data.task() {
            Task::Regression | Task::Binary => 1,
            Task::MultiClass(k) => k,
        };
        let (mapper, binned): (BinMapper, Arc<BinnedDataset>) =
            match prepared.filter(|p| p.max_bin() == params.max_bin) {
                Some(p) => (p.mapper().clone(), p.binned_arc()),
                None => {
                    let m = BinMapper::fit(&data, params.max_bin);
                    let b = Arc::new(m.transform(&data));
                    (m, b)
                }
            };
        let y: Arc<[f64]> = data.gather_target().into();

        // Early-stopping holdout: every 10th row (the controller shuffles
        // data, so a stride is a random sample).
        let (train_rows, valid_rows): (Vec<u32>, Vec<u32>) =
            if params.early_stop_rounds.is_some() && n >= 20 {
                let mut tr = Vec::with_capacity(n - n / 10);
                let mut va = Vec::with_capacity(n / 10);
                for i in 0..n {
                    if i % 10 == 9 {
                        va.push(i as u32);
                    } else {
                        tr.push(i as u32);
                    }
                }
                (tr, va)
            } else {
                ((0..n as u32).collect(), Vec::new())
            };

        let init_scores = init_scores(data.task(), &y, &train_rows)?;
        let mut scores = vec![0.0; n * n_groups];
        for slot in scores.chunks_exact_mut(n_groups) {
            slot.copy_from_slice(&init_scores);
        }

        Ok(GbdtFitState {
            params: params.clone(),
            mapper,
            binned,
            y,
            task: data.task(),
            n_features: data.n_features(),
            n_groups,
            train_rows,
            valid_rows,
            init_scores,
            scores,
            grad: vec![0.0; n],
            hess: vec![0.0; n],
            rng: StdRng::seed_from_u64(seed),
            trees: Vec::new(),
            rounds_done: 0,
            best_valid: f64::INFINITY,
            best_round: 0,
            rounds_since_best: 0,
        })
    }

    /// Adds `extra_trees` boosting rounds to a paused fit state. A fresh
    /// `fit` at `n` rounds and `fit_start` + `fit_continue(k)` +
    /// `fit_continue(n - k)` produce bit-identical models for every `k`:
    /// the per-round floating-point accumulation order, the RNG draw
    /// sequence and the early-stopping bookkeeping are all part of the
    /// state, so a continuation resumes mid-stream exactly where a
    /// monolithic run would have been.
    pub fn fit_continue(state: &mut GbdtFitState, extra_trees: usize) {
        Self::fit_continue_bounded(state, extra_trees, None);
    }

    /// Like [`Gbdt::fit_continue`] but stops adding rounds once `budget`
    /// elapses (measured from this call), always completing at least one
    /// round when any were requested. A budget-truncated continuation
    /// leaves a valid state: the completed prefix can be snapshotted with
    /// [`GbdtFitState::model`] and continued again later.
    pub fn fit_continue_bounded(
        state: &mut GbdtFitState,
        extra_trees: usize,
        budget: Option<Duration>,
    ) {
        let target = state.rounds_done.saturating_add(extra_trees);
        state.advance(target, budget, Instant::now());
    }
}

/// A paused, resumable boosting run: everything `Gbdt::fit` keeps on its
/// stack between rounds, lifted into a value. The state owns the trees
/// grown so far, the per-row raw scores, the gradient/hessian scratch,
/// the RNG mid-stream, and the binning identity (mapper + `Arc`-shared
/// binned matrix), so continuing it is bit-identical to never having
/// paused.
///
/// Because no boosting round reads `params.n_trees`, the tree sequence
/// is *prefix-stable*: the first `r` rounds of any run equal the `r`
/// rounds of a shorter run with the same inputs, which is what makes
/// cross-trial prefix caching (the core crate's `TreeCache`) exact.
#[derive(Debug, Clone)]
pub struct GbdtFitState {
    params: GbdtParams,
    mapper: BinMapper,
    binned: Arc<BinnedDataset>,
    y: Arc<[f64]>,
    task: Task,
    n_features: usize,
    n_groups: usize,
    train_rows: Vec<u32>,
    valid_rows: Vec<u32>,
    init_scores: Vec<f64>,
    scores: Vec<f64>,
    grad: Vec<f64>,
    hess: Vec<f64>,
    rng: StdRng,
    trees: Vec<Tree>,
    rounds_done: usize,
    best_valid: f64,
    best_round: usize,
    rounds_since_best: usize,
}

impl GbdtFitState {
    /// Boosting rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Score groups per row (1 for regression/binary, `k` for `k`-class).
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// The parameters the state was started with (`n_trees` is advisory
    /// here — continuation targets come from the `fit_continue` calls).
    pub fn params(&self) -> &GbdtParams {
        &self.params
    }

    /// Whether early stopping has fired: the patience is exhausted and
    /// further continuation would add no rounds.
    pub fn stopped_early(&self) -> bool {
        match self.params.early_stop_rounds {
            // `max(1)` because `rounds_since_best == 0` can mean "the
            // last round improved", which never stops the monolithic
            // loop (it only breaks on the non-improving branch).
            Some(p) => !self.valid_rows.is_empty() && self.rounds_since_best >= p.max(1),
            None => false,
        }
    }

    /// Approximate owned heap footprint in bytes, for cache budgeting.
    /// The `Arc`-shared binned matrix is *excluded*: it is owned (and
    /// budgeted) by the data plane's `PreparedBins` cache entry.
    pub fn heap_bytes(&self) -> usize {
        let f8 = std::mem::size_of::<f64>();
        let tree_bytes: usize = self
            .trees
            .iter()
            .map(|t| t.nodes.len() * std::mem::size_of::<Node>())
            .sum();
        let cut_bytes: usize = self.mapper.cuts().iter().map(|c| c.len() * f8).sum();
        tree_bytes
            + cut_bytes
            + (self.scores.len()
                + self.grad.len()
                + self.hess.len()
                + self.init_scores.len()
                + self.y.len())
                * f8
            + (self.train_rows.len() + self.valid_rows.len()) * std::mem::size_of::<u32>()
    }

    /// Runs boosting rounds until `target` rounds are done, the budget
    /// elapses, or early stopping fires. Bit-identical to the rounds the
    /// pre-staged monolithic loop ran: the budget is checked before every
    /// round except the first of this call (the monolithic loop skipped
    /// the check at round 0), and the patience break is re-checked at the
    /// top of each iteration (side-effect-free, so checking it one
    /// iteration later than the inline `break` observes the same state).
    fn advance(&mut self, target: usize, budget: Option<Duration>, start: Instant) {
        let entry = self.rounds_done;
        while self.rounds_done < target {
            if self.stopped_early() {
                break;
            }
            if self.rounds_done > entry {
                if let Some(b) = budget {
                    if start.elapsed() >= b {
                        break;
                    }
                }
            }
            let round = self.rounds_done;
            // Row subsample for this round (shared across groups).
            let rows: Vec<u32> = if self.params.subsample < 1.0 {
                let sampled: Vec<u32> = self
                    .train_rows
                    .iter()
                    .copied()
                    .filter(|_| self.rng.gen::<f64>() < self.params.subsample)
                    .collect();
                if sampled.is_empty() {
                    self.train_rows.clone()
                } else {
                    sampled
                }
            } else {
                self.train_rows.clone()
            };

            let n = self.grad.len();
            for c in 0..self.n_groups {
                compute_gradients(
                    self.task,
                    &self.y,
                    &self.scores,
                    self.n_groups,
                    c,
                    &mut self.grad,
                    &mut self.hess,
                );
                let tree = build_tree(
                    &self.binned,
                    &rows,
                    &self.grad,
                    &self.hess,
                    &self.params,
                    &mut self.rng,
                );
                // Update scores on all rows (train + valid) for the group.
                for i in 0..n {
                    let v = tree.eval_binned(&self.binned, i);
                    self.scores[i * self.n_groups + c] += v;
                }
                self.trees.push(tree);
            }
            self.rounds_done = round + 1;

            // Early stopping on the internal holdout.
            if self.params.early_stop_rounds.is_some() && !self.valid_rows.is_empty() {
                let loss = holdout_loss(
                    self.task,
                    &self.y,
                    &self.scores,
                    self.n_groups,
                    &self.valid_rows,
                );
                if loss < self.best_valid - 1e-12 {
                    self.best_valid = loss;
                    self.best_round = round;
                    self.rounds_since_best = 0;
                } else {
                    self.rounds_since_best += 1;
                }
            }
        }
    }

    /// Snapshots the current state into a model without consuming it
    /// (trees are cloned). Applies the early-stopping truncation exactly
    /// as a finished fit would.
    pub fn model(&self) -> GbdtModel {
        self.clone().into_model()
    }

    /// Converts the state into its model, consuming it.
    pub fn into_model(mut self) -> GbdtModel {
        // Truncate to the best round when early stopping was active.
        if self.params.early_stop_rounds.is_some() && !self.valid_rows.is_empty() {
            self.trees.truncate((self.best_round + 1) * self.n_groups);
        }
        if self.trees.is_empty() {
            self.trees.push(Tree::leaf(0.0));
        }
        GbdtModel {
            mapper: self.mapper,
            trees: self.trees,
            n_groups: self.n_groups,
            init_scores: self.init_scores,
            task: self.task,
            n_features: self.n_features,
        }
    }

    /// The model after exactly `rounds` rounds — a *backward* snapshot of
    /// a longer state, valid because the tree sequence is prefix-stable.
    /// Only available without early stopping (early stopping truncates to
    /// the best validation round, which is not a pure prefix function).
    ///
    /// # Panics
    ///
    /// Panics if early stopping is configured, `rounds == 0`, or `rounds`
    /// exceeds [`GbdtFitState::rounds_done`].
    pub fn model_at(&self, rounds: usize) -> GbdtModel {
        assert!(
            self.params.early_stop_rounds.is_none(),
            "backward snapshots require early_stop_rounds = None"
        );
        assert!(
            rounds >= 1 && rounds <= self.rounds_done,
            "rounds {rounds} out of range 1..={}",
            self.rounds_done
        );
        GbdtModel {
            mapper: self.mapper.clone(),
            trees: self.trees[..rounds * self.n_groups].to_vec(),
            n_groups: self.n_groups,
            init_scores: self.init_scores.clone(),
            task: self.task,
            n_features: self.n_features,
        }
    }
}

fn init_scores(task: Task, y: &[f64], rows: &[u32]) -> Result<Vec<f64>, FitError> {
    match task {
        Task::Regression => {
            let mean = rows.iter().map(|&i| y[i as usize]).sum::<f64>() / rows.len() as f64;
            Ok(vec![mean])
        }
        Task::Binary => {
            let pos = rows.iter().filter(|&&i| y[i as usize] == 1.0).count();
            if pos == 0 || pos == rows.len() {
                return Err(FitError::BadData(
                    "binary training sample contains a single class".into(),
                ));
            }
            let p = pos as f64 / rows.len() as f64;
            Ok(vec![(p / (1.0 - p)).ln()])
        }
        Task::MultiClass(k) => {
            let mut counts = vec![0usize; k];
            for &i in rows {
                counts[y[i as usize] as usize] += 1;
            }
            // Laplace smoothing keeps init finite for absent classes.
            let total = rows.len() as f64 + k as f64;
            Ok(counts
                .iter()
                .map(|&c| ((c as f64 + 1.0) / total).ln())
                .collect())
        }
    }
}

fn compute_gradients(
    task: Task,
    y: &[f64],
    scores: &[f64],
    n_groups: usize,
    class: usize,
    grad: &mut [f64],
    hess: &mut [f64],
) {
    match task {
        Task::Regression => {
            for i in 0..y.len() {
                grad[i] = scores[i] - y[i];
                hess[i] = 1.0;
            }
        }
        Task::Binary => {
            for i in 0..y.len() {
                let p = sigmoid(scores[i]);
                grad[i] = p - y[i];
                hess[i] = (p * (1.0 - p)).max(1e-16);
            }
        }
        Task::MultiClass(k) => {
            for i in 0..y.len() {
                let row = &scores[i * n_groups..i * n_groups + k];
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let denom: f64 = row.iter().map(|&v| (v - max).exp()).sum();
                let p = (row[class] - max).exp() / denom;
                let target = f64::from(y[i] as usize == class);
                grad[i] = p - target;
                hess[i] = (2.0 * p * (1.0 - p)).max(1e-16);
            }
        }
    }
}

fn holdout_loss(task: Task, y: &[f64], scores: &[f64], n_groups: usize, rows: &[u32]) -> f64 {
    let mut total = 0.0;
    match task {
        Task::Regression => {
            for &i in rows {
                let d = scores[i as usize] - y[i as usize];
                total += d * d;
            }
        }
        Task::Binary => {
            for &i in rows {
                let p = sigmoid(scores[i as usize]).clamp(1e-15, 1.0 - 1e-15);
                total -= if y[i as usize] == 1.0 {
                    p.ln()
                } else {
                    (1.0 - p).ln()
                };
            }
        }
        Task::MultiClass(k) => {
            for &i in rows {
                let row = &scores[i as usize * n_groups..i as usize * n_groups + k];
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let denom: f64 = row.iter().map(|&v| (v - max).exp()).sum();
                let c = y[i as usize] as usize;
                let p = ((row[c] - max).exp() / denom).clamp(1e-15, 1.0 - 1e-15);
                total -= p.ln();
            }
        }
    }
    total / rows.len() as f64
}

/// Soft-thresholded gradient sum for L1 regularization.
fn thresholded(g: f64, alpha: f64) -> f64 {
    if g > alpha {
        g - alpha
    } else if g < -alpha {
        g + alpha
    } else {
        0.0
    }
}

fn leaf_objective(g: f64, h: f64, alpha: f64, lambda: f64) -> f64 {
    let t = thresholded(g, alpha);
    t * t / (h + lambda)
}

fn leaf_weight(g: f64, h: f64, alpha: f64, lambda: f64) -> f64 {
    -thresholded(g, alpha) / (h + lambda)
}

#[derive(Debug, Clone, Copy, Default)]
struct BinStats {
    g: f64,
    h: f64,
    n: u32,
}

#[derive(Debug, Clone, Copy)]
struct Split {
    feature: u32,
    threshold: u32,
    gain: f64,
    left_g: f64,
    left_h: f64,
    right_g: f64,
    right_h: f64,
}

struct NodeTask {
    node: usize,
    rows: Vec<u32>,
    g_sum: f64,
    h_sum: f64,
    depth: usize,
}

/// Finds the best split for a node over the given features.
#[allow(clippy::too_many_arguments)]
fn best_split(
    binned: &BinnedDataset,
    rows: &[u32],
    grad: &[f64],
    hess: &[f64],
    features: &[u32],
    g_sum: f64,
    h_sum: f64,
    params: &GbdtParams,
) -> Option<Split> {
    let parent_obj = leaf_objective(g_sum, h_sum, params.reg_alpha, params.reg_lambda);
    let mut best: Option<Split> = None;
    let mut hist: Vec<BinStats> = Vec::new();
    for &j in features {
        let n_bins = binned.n_bins(j as usize);
        hist.clear();
        hist.resize(n_bins, BinStats::default());
        let col = binned.column(j as usize);
        for &r in rows {
            let b = col[r as usize] as usize;
            let s = &mut hist[b];
            s.g += grad[r as usize];
            s.h += hess[r as usize];
            s.n += 1;
        }
        let total_n = rows.len() as u32;
        let mut lg = 0.0;
        let mut lh = 0.0;
        let mut ln = 0u32;
        for (t, h) in hist.iter().enumerate().take(n_bins - 1) {
            lg += h.g;
            lh += h.h;
            ln += h.n;
            if ln == 0 {
                continue;
            }
            if ln == total_n {
                break;
            }
            let rg = g_sum - lg;
            let rh = h_sum - lh;
            if lh < params.min_child_weight || rh < params.min_child_weight {
                continue;
            }
            let gain = leaf_objective(lg, lh, params.reg_alpha, params.reg_lambda)
                + leaf_objective(rg, rh, params.reg_alpha, params.reg_lambda)
                - parent_obj;
            if gain > 1e-12 && best.is_none_or(|b| gain > b.gain) {
                best = Some(Split {
                    feature: j,
                    threshold: t as u32,
                    gain,
                    left_g: lg,
                    left_h: lh,
                    right_g: rg,
                    right_h: rh,
                });
            }
        }
    }
    best
}

fn sample_features(all: &[u32], fraction: f64, rng: &mut StdRng) -> Vec<u32> {
    if fraction >= 1.0 {
        return all.to_vec();
    }
    let want = ((all.len() as f64 * fraction).ceil() as usize).clamp(1, all.len());
    // Partial Fisher-Yates over a copy.
    let mut pool = all.to_vec();
    for i in 0..want {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(want);
    pool
}

fn build_tree(
    binned: &BinnedDataset,
    rows: &[u32],
    grad: &[f64],
    hess: &[f64],
    params: &GbdtParams,
    rng: &mut StdRng,
) -> Tree {
    let all_features: Vec<u32> = (0..binned.n_features() as u32).collect();
    let tree_features = sample_features(&all_features, params.colsample_bytree, rng);

    let g_sum: f64 = rows.iter().map(|&r| grad[r as usize]).sum();
    let h_sum: f64 = rows.iter().map(|&r| hess[r as usize]).sum();
    let root_value =
        params.learning_rate * leaf_weight(g_sum, h_sum, params.reg_alpha, params.reg_lambda);
    let mut tree = Tree::leaf(root_value);
    let root_task = NodeTask {
        node: 0,
        rows: rows.to_vec(),
        g_sum,
        h_sum,
        depth: 0,
    };

    match params.growth {
        Growth::LeafWise => grow_leaf_wise(
            binned,
            grad,
            hess,
            params,
            rng,
            &tree_features,
            &mut tree,
            root_task,
        ),
        Growth::DepthWise => grow_depth_wise(
            binned,
            grad,
            hess,
            params,
            rng,
            &tree_features,
            &mut tree,
            root_task,
        ),
        Growth::Oblivious => grow_oblivious(
            binned,
            grad,
            hess,
            params,
            rng,
            &tree_features,
            &mut tree,
            root_task,
        ),
    }
    tree
}

/// Applies `split` to `task`'s node, pushing two children onto the tree.
/// Returns the two child tasks.
fn apply_split(
    tree: &mut Tree,
    binned: &BinnedDataset,
    task: NodeTask,
    split: Split,
    lr: f64,
    alpha: f64,
    lambda: f64,
) -> (NodeTask, NodeTask) {
    let col = binned.column(split.feature as usize);
    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = task
        .rows
        .iter()
        .partition(|&&r| col[r as usize] <= split.threshold);
    let left_id = tree.nodes.len() as u32;
    let right_id = left_id + 1;
    tree.nodes.push(Node {
        feature: 0,
        threshold: 0,
        left: 0,
        right: 0,
        leaf_value: lr * leaf_weight(split.left_g, split.left_h, alpha, lambda),
        is_leaf: true,
        split_gain: 0.0,
    });
    tree.nodes.push(Node {
        feature: 0,
        threshold: 0,
        left: 0,
        right: 0,
        leaf_value: lr * leaf_weight(split.right_g, split.right_h, alpha, lambda),
        is_leaf: true,
        split_gain: 0.0,
    });
    let parent = &mut tree.nodes[task.node];
    parent.is_leaf = false;
    parent.feature = split.feature;
    parent.split_gain = split.gain;
    parent.threshold = split.threshold;
    parent.left = left_id;
    parent.right = right_id;
    (
        NodeTask {
            node: left_id as usize,
            rows: left_rows,
            g_sum: split.left_g,
            h_sum: split.left_h,
            depth: task.depth + 1,
        },
        NodeTask {
            node: right_id as usize,
            rows: right_rows,
            g_sum: split.right_g,
            h_sum: split.right_h,
            depth: task.depth + 1,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn grow_leaf_wise(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    params: &GbdtParams,
    rng: &mut StdRng,
    tree_features: &[u32],
    tree: &mut Tree,
    root: NodeTask,
) {
    // Candidate leaves with their best splits; pick the max gain greedily.
    let mut candidates: Vec<(NodeTask, Split)> = Vec::new();
    let feats = sample_features(tree_features, params.colsample_bylevel, rng);
    if let Some(s) = best_split(
        binned, &root.rows, grad, hess, &feats, root.g_sum, root.h_sum, params,
    ) {
        candidates.push((root, s));
    }
    let mut n_leaves = 1usize;
    while n_leaves < params.max_leaves && !candidates.is_empty() {
        let best_idx = candidates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.gain.partial_cmp(&b.1 .1.gain).unwrap())
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        let (task, split) = candidates.swap_remove(best_idx);
        let (left, right) = apply_split(
            tree,
            binned,
            task,
            split,
            params.learning_rate,
            params.reg_alpha,
            params.reg_lambda,
        );
        n_leaves += 1;
        for child in [left, right] {
            if child.rows.len() >= 2 {
                let feats = sample_features(tree_features, params.colsample_bylevel, rng);
                if let Some(s) = best_split(
                    binned,
                    &child.rows,
                    grad,
                    hess,
                    &feats,
                    child.g_sum,
                    child.h_sum,
                    params,
                ) {
                    candidates.push((child, s));
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn grow_depth_wise(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    params: &GbdtParams,
    rng: &mut StdRng,
    tree_features: &[u32],
    tree: &mut Tree,
    root: NodeTask,
) {
    let mut level = vec![root];
    let mut n_leaves = 1usize;
    while !level.is_empty() && n_leaves < params.max_leaves {
        let feats = sample_features(tree_features, params.colsample_bylevel, rng);
        let mut next = Vec::new();
        for task in level {
            if n_leaves >= params.max_leaves || task.rows.len() < 2 {
                continue;
            }
            if let Some(split) = best_split(
                binned, &task.rows, grad, hess, &feats, task.g_sum, task.h_sum, params,
            ) {
                let (l, r) = apply_split(
                    tree,
                    binned,
                    task,
                    split,
                    params.learning_rate,
                    params.reg_alpha,
                    params.reg_lambda,
                );
                n_leaves += 1;
                next.push(l);
                next.push(r);
            }
        }
        level = next;
    }
}

#[allow(clippy::too_many_arguments)]
fn grow_oblivious(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    params: &GbdtParams,
    rng: &mut StdRng,
    tree_features: &[u32],
    tree: &mut Tree,
    root: NodeTask,
) {
    let depth_cap = (params.max_leaves as f64).log2().ceil().max(1.0) as usize;
    let mut level = vec![root];
    for _ in 0..depth_cap {
        let feats = sample_features(tree_features, params.colsample_bylevel, rng);
        // Choose the single (feature, threshold) with the best *total* gain
        // across all leaves of the level, using per-leaf histograms so the
        // cost is O(leaves x (rows + bins)) per feature.
        let mut best_total: Option<(u32, u32, f64)> = None;
        let mut hist: Vec<BinStats> = Vec::new();
        for &j in &feats {
            let n_bins = binned.n_bins(j as usize);
            let col = binned.column(j as usize);
            // gains[t] accumulates the level's total gain at threshold t;
            // a NaN marks thresholds invalidated by min_child_weight.
            let mut gains = vec![0.0f64; n_bins.saturating_sub(1)];
            let mut any_valid = vec![false; n_bins.saturating_sub(1)];
            for task in &level {
                hist.clear();
                hist.resize(n_bins, BinStats::default());
                for &r in &task.rows {
                    let b = col[r as usize] as usize;
                    let s = &mut hist[b];
                    s.g += grad[r as usize];
                    s.h += hess[r as usize];
                    s.n += 1;
                }
                let parent_obj =
                    leaf_objective(task.g_sum, task.h_sum, params.reg_alpha, params.reg_lambda);
                let total_n = task.rows.len() as u32;
                let mut lg = 0.0;
                let mut lh = 0.0;
                let mut ln = 0u32;
                for t in 0..n_bins.saturating_sub(1) {
                    lg += hist[t].g;
                    lh += hist[t].h;
                    ln += hist[t].n;
                    if ln == 0 || ln == total_n {
                        continue;
                    }
                    let rg = task.g_sum - lg;
                    let rh = task.h_sum - lh;
                    if lh < params.min_child_weight || rh < params.min_child_weight {
                        continue;
                    }
                    let gain = leaf_objective(lg, lh, params.reg_alpha, params.reg_lambda)
                        + leaf_objective(rg, rh, params.reg_alpha, params.reg_lambda)
                        - parent_obj;
                    gains[t] += gain;
                    any_valid[t] = true;
                }
            }
            for (t, (&g, &valid)) in gains.iter().zip(&any_valid).enumerate() {
                if valid && g > 1e-12 && best_total.is_none_or(|(_, _, b)| g > b) {
                    best_total = Some((j, t as u32, g));
                }
            }
        }
        let Some((feature, threshold, _)) = best_total else {
            break;
        };
        let mut next = Vec::new();
        for task in level {
            // Recompute the per-leaf stats for the shared condition.
            let col = binned.column(feature as usize);
            let mut lg = 0.0;
            let mut lh = 0.0;
            for &r in &task.rows {
                if col[r as usize] <= threshold {
                    lg += grad[r as usize];
                    lh += hess[r as usize];
                }
            }
            let rg = task.g_sum - lg;
            let rh = task.h_sum - lh;
            // This leaf's share of the level's total gain (can be
            // negative for leaves the shared condition fits poorly).
            let gain = leaf_objective(lg, lh, params.reg_alpha, params.reg_lambda)
                + leaf_objective(rg, rh, params.reg_alpha, params.reg_lambda)
                - leaf_objective(task.g_sum, task.h_sum, params.reg_alpha, params.reg_lambda);
            let split = Split {
                feature,
                threshold,
                gain,
                left_g: lg,
                left_h: lh,
                right_g: rg,
                right_h: rh,
            };
            let (l, r) = apply_split(
                tree,
                binned,
                task,
                split,
                params.learning_rate,
                params.reg_alpha,
                params.reg_lambda,
            );
            next.push(l);
            next.push(r);
        }
        level = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::Dataset;
    use flaml_metrics::Metric;
    use rand::Rng;

    fn step_data(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| f64::from(v > 0.5)).collect();
        Dataset::new("step", Task::Binary, vec![x], y).unwrap()
    }

    fn xor_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = x0
            .iter()
            .zip(&x1)
            .map(|(&a, &b)| f64::from((a > 0.5) != (b > 0.5)))
            .collect();
        Dataset::new("xor", Task::Binary, vec![x0, x1], y).unwrap()
    }

    fn sine_regression(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 * 6.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| v.sin() * 3.0 + 1.0).collect();
        Dataset::new("sine", Task::Regression, vec![x], y).unwrap()
    }

    #[test]
    fn learns_step_function() {
        let d = step_data(400);
        let m = Gbdt::fit(&d, &GbdtParams::default(), 0).unwrap();
        let loss = Metric::RocAuc.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.01, "auc regret {loss} too high");
    }

    #[test]
    fn learns_xor_all_growth_policies() {
        let d = xor_data(800, 1);
        for growth in [Growth::LeafWise, Growth::DepthWise, Growth::Oblivious] {
            let params = GbdtParams {
                growth,
                n_trees: 60,
                ..GbdtParams::default()
            };
            let m = Gbdt::fit(&d, &params, 0).unwrap();
            let loss = Metric::Accuracy.loss(&m.predict(&d), d.target()).unwrap();
            assert!(loss < 0.06, "{growth:?} train error {loss} too high");
        }
    }

    #[test]
    fn regression_fits_sine() {
        let d = sine_regression(500);
        let params = GbdtParams {
            n_trees: 150,
            ..GbdtParams::default()
        };
        let m = Gbdt::fit(&d, &params, 0).unwrap();
        let r2_loss = Metric::R2.loss(&m.predict(&d), d.target()).unwrap();
        assert!(r2_loss < 0.02, "1 - r2 = {r2_loss}");
    }

    #[test]
    fn multiclass_probabilities_sum_to_one() {
        let n = 300;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| (v * 3.0).floor().min(2.0)).collect();
        let d = Dataset::new("3c", Task::MultiClass(3), vec![x], y).unwrap();
        let m = Gbdt::fit(&d, &GbdtParams::default(), 0).unwrap();
        let pred = m.predict(&d);
        let (k, p) = pred.probs().unwrap();
        assert_eq!(k, 3);
        for row in p.chunks_exact(3) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let loss = Metric::Accuracy.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.05);
    }

    #[test]
    fn more_leaves_fit_training_data_better() {
        let d = xor_data(600, 3);
        let small = Gbdt::fit(
            &d,
            &GbdtParams {
                max_leaves: 2,
                n_trees: 20,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        let large = Gbdt::fit(
            &d,
            &GbdtParams {
                max_leaves: 64,
                n_trees: 20,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        let l_small = Metric::LogLoss
            .loss(&small.predict(&d), d.target())
            .unwrap();
        let l_large = Metric::LogLoss
            .loss(&large.predict(&d), d.target())
            .unwrap();
        assert!(
            l_large < l_small,
            "64-leaf trees ({l_large}) must beat stumps ({l_small}) on train"
        );
    }

    #[test]
    fn heavy_regularization_shrinks_leaf_values() {
        let d = sine_regression(200);
        let free = Gbdt::fit(
            &d,
            &GbdtParams {
                n_trees: 5,
                reg_lambda: 1e-10,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        let reg = Gbdt::fit(
            &d,
            &GbdtParams {
                n_trees: 5,
                reg_lambda: 1000.0,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        let spread = |m: &GbdtModel, d: &Dataset| {
            let v = m.raw_scores(d);
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - mean).abs()).fold(0.0, f64::max)
        };
        assert!(spread(&reg, &d) < spread(&free, &d));
    }

    #[test]
    fn min_child_weight_limits_splits() {
        let d = xor_data(200, 5);
        let m = Gbdt::fit(
            &d,
            &GbdtParams {
                min_child_weight: 1e9,
                n_trees: 3,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        // No split can satisfy the hessian constraint => all trees are
        // single leaves.
        assert_eq!(m.total_leaves(), 3);
    }

    #[test]
    fn early_stopping_truncates_rounds() {
        // 20% label noise: past some round the validation loss can only
        // get worse, so patience must fire well before the round cap.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 500;
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = x0
            .iter()
            .zip(&x1)
            .map(|(&a, &b)| {
                let clean = f64::from((a > 0.5) != (b > 0.5));
                if rng.gen::<f64>() < 0.2 {
                    1.0 - clean
                } else {
                    clean
                }
            })
            .collect();
        let d = Dataset::new("noisy-xor", Task::Binary, vec![x0, x1], y).unwrap();
        let m = Gbdt::fit(
            &d,
            &GbdtParams {
                n_trees: 400,
                early_stop_rounds: Some(5),
                growth: Growth::Oblivious,
                max_leaves: 16,
                learning_rate: 0.3,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        assert!(
            m.n_rounds() < 400,
            "early stopping should cut {} rounds",
            m.n_rounds()
        );
    }

    #[test]
    fn nan_features_are_handled() {
        let mut x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        for i in (0..200).step_by(7) {
            x[i] = f64::NAN;
        }
        let y: Vec<f64> = (0..200).map(|i| f64::from(i >= 100)).collect();
        let d = Dataset::new("nan", Task::Binary, vec![x], y).unwrap();
        let m = Gbdt::fit(&d, &GbdtParams::default(), 0).unwrap();
        let pred = m.predict(&d);
        for &p in &pred.positive_scores().unwrap() {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn validates_params() {
        let d = step_data(50);
        for bad in [
            GbdtParams {
                n_trees: 0,
                ..GbdtParams::default()
            },
            GbdtParams {
                max_leaves: 1,
                ..GbdtParams::default()
            },
            GbdtParams {
                learning_rate: 0.0,
                ..GbdtParams::default()
            },
            GbdtParams {
                subsample: 0.0,
                ..GbdtParams::default()
            },
            GbdtParams {
                reg_alpha: -1.0,
                ..GbdtParams::default()
            },
        ] {
            assert!(Gbdt::fit(&d, &bad, 0).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn single_class_binary_is_bad_data() {
        let d = Dataset::new(
            "one",
            Task::Binary,
            vec![vec![1.0, 2.0, 3.0]],
            vec![1.0, 1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            Gbdt::fit(&d, &GbdtParams::default(), 0),
            Err(FitError::BadData(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let d = xor_data(300, 11);
        let params = GbdtParams {
            subsample: 0.8,
            colsample_bytree: 0.9,
            n_trees: 10,
            ..GbdtParams::default()
        };
        let a = Gbdt::fit(&d, &params, 42).unwrap().raw_scores(&d);
        let b = Gbdt::fit(&d, &params, 42).unwrap().raw_scores(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_bound_caps_rounds() {
        let d = xor_data(2000, 13);
        let params = GbdtParams {
            n_trees: 100_000,
            max_leaves: 64,
            ..GbdtParams::default()
        };
        let m = Gbdt::fit_bounded(&d, &params, 0, Some(Duration::from_millis(50))).unwrap();
        assert!(m.n_rounds() < 100_000);
        assert!(m.n_rounds() >= 1);
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        // Feature 0 carries the label; feature 1 is noise.
        let mut rng = StdRng::seed_from_u64(23);
        let n = 400;
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = x0.iter().map(|&v| f64::from(v > 0.5)).collect();
        let d = Dataset::new("imp", Task::Binary, vec![x0, x1], y).unwrap();
        let m = Gbdt::fit(
            &d,
            &GbdtParams {
                n_trees: 20,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        let imp = m.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "signal feature importance {imp:?}");
    }

    #[test]
    fn oblivious_trees_are_symmetric() {
        let d = xor_data(400, 17);
        let m = Gbdt::fit(
            &d,
            &GbdtParams {
                growth: Growth::Oblivious,
                max_leaves: 8,
                n_trees: 3,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        // With max_leaves = 8 an oblivious tree has at most 3 levels, and
        // every tree has 2^depth leaves (or 1 if no split found).
        for tree in &m.trees {
            let leaves = tree.n_leaves();
            assert!(
                [1, 2, 4, 8].contains(&leaves),
                "oblivious tree must have power-of-two leaves, got {leaves}"
            );
        }
    }
}
