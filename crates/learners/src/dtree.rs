//! A classic (non-boosted) decision tree over raw feature values, shared
//! by the random-forest and extra-trees learners.
//!
//! Splits minimize gini impurity, entropy, or variance; the extra-trees
//! variant replaces the threshold search with a single uniformly random
//! threshold per candidate feature (Geurts et al.), which is what the
//! paper's `extra trees` learner does. Missing values travel to the left
//! child.

use flaml_data::DatasetView;
use rand::rngs::StdRng;
use rand::Rng;

/// Split quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Gini impurity (classification).
    Gini,
    /// Information gain / entropy (classification).
    Entropy,
    /// Variance reduction (regression).
    Variance,
}

/// Parameters of a single decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Fraction of features considered at each split, in `(0, 1]`.
    pub max_features: f64,
    /// Split criterion.
    pub criterion: SplitCriterion,
    /// Extra-trees mode: one uniformly random threshold per feature
    /// instead of an exhaustive threshold search.
    pub random_threshold: bool,
    /// Minimum rows in each leaf.
    pub min_samples_leaf: usize,
    /// Optional depth cap.
    pub max_depth: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_features: 1.0,
            criterion: SplitCriterion::Gini,
            random_threshold: false,
            min_samples_leaf: 1,
            max_depth: None,
        }
    }
}

#[derive(Debug, Clone)]
struct DNode {
    feature: u32,
    threshold: f64,
    left: u32,
    right: u32,
    is_leaf: bool,
    /// Class distribution (classification) or `[mean]` (regression).
    value: Vec<f64>,
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<DNode>,
    n_classes: usize,
}

/// One flattened decision-tree node, as exported to the serving layer.
/// Thresholds are raw feature values; a row goes left when
/// [`goes_left`] holds; child indices are local to the exporting tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DTreeNode {
    /// Feature column the node splits on (0 for leaves).
    pub feature: u32,
    /// Raw-value split threshold (0 for leaves).
    pub threshold: f64,
    /// Tree-local index of the left child (0 for leaves).
    pub left: u32,
    /// Tree-local index of the right child (0 for leaves).
    pub right: u32,
    /// Whether the node is a leaf.
    pub is_leaf: bool,
    /// Class distribution (classification) or `[mean]` (regression).
    pub value: Vec<f64>,
}

/// Whether row value `v` goes to the left child of a split at `threshold`.
/// Missing values always go left. Public because the compiled serving
/// layer must traverse with exactly these semantics.
pub fn goes_left(v: f64, threshold: f64) -> bool {
    v.is_nan() || v <= threshold
}

impl DecisionTree {
    /// Fits a tree on the view-local rows `rows` of `data` (duplicates
    /// allowed, which is how forests pass bootstrap samples). Accepts
    /// anything convertible into a [`DatasetView`] (`&Dataset`,
    /// `&DatasetView`, ...).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or contains out-of-range indices.
    pub fn fit(
        data: impl Into<DatasetView>,
        rows: &[usize],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Self {
        let data: DatasetView = data.into();
        assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
        let n_classes = data.task().n_classes().unwrap_or(0);
        // Map the view-local rows to root-storage coordinates once; tree
        // growth then indexes the shared column storage directly, with no
        // per-node indirection through the view. Row order is preserved,
        // so every accumulation below visits values in the same order the
        // copy-based path did.
        let rows: Vec<usize> = rows.iter().map(|&r| data.root_row(r)).collect();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
        };
        tree.nodes.push(DNode {
            feature: 0,
            threshold: 0.0,
            left: 0,
            right: 0,
            is_leaf: true,
            value: leaf_value(&data, &rows, n_classes),
        });
        tree.grow(&data, 0, rows, 0, params, rng);
        tree
    }

    fn grow(
        &mut self,
        data: &DatasetView,
        node: usize,
        rows: Vec<usize>,
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) {
        if rows.len() < 2 * params.min_samples_leaf.max(1) {
            return;
        }
        if let Some(cap) = params.max_depth {
            if depth >= cap {
                return;
            }
        }
        if is_pure(data, &rows) {
            return;
        }
        let Some((feature, threshold)) = self.find_split(data, &rows, params, rng) else {
            return;
        };
        let col = data.root_column(feature as usize);
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .into_iter()
            .partition(|&r| goes_left(col[r], threshold));
        if left_rows.len() < params.min_samples_leaf || right_rows.len() < params.min_samples_leaf {
            return;
        }
        let left_id = self.nodes.len() as u32;
        let right_id = left_id + 1;
        self.nodes.push(DNode {
            feature: 0,
            threshold: 0.0,
            left: 0,
            right: 0,
            is_leaf: true,
            value: leaf_value(data, &left_rows, self.n_classes),
        });
        self.nodes.push(DNode {
            feature: 0,
            threshold: 0.0,
            left: 0,
            right: 0,
            is_leaf: true,
            value: leaf_value(data, &right_rows, self.n_classes),
        });
        {
            let parent = &mut self.nodes[node];
            parent.is_leaf = false;
            parent.feature = feature;
            parent.threshold = threshold;
            parent.left = left_id;
            parent.right = right_id;
        }
        self.grow(data, left_id as usize, left_rows, depth + 1, params, rng);
        self.grow(data, right_id as usize, right_rows, depth + 1, params, rng);
    }

    fn find_split(
        &self,
        data: &DatasetView,
        rows: &[usize],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Option<(u32, f64)> {
        let d = data.n_features();
        let want = ((d as f64 * params.max_features).ceil() as usize).clamp(1, d);
        let mut features: Vec<u32> = (0..d as u32).collect();
        for i in 0..want {
            let j = rng.gen_range(i..features.len());
            features.swap(i, j);
        }
        features.truncate(want);

        let parent_impurity = impurity(data, rows, params.criterion, self.n_classes);
        let mut best: Option<(u32, f64, f64)> = None; // (feature, threshold, score)
        for &j in &features {
            let col = data.root_column(j as usize);
            let candidates = if params.random_threshold {
                random_threshold(col, rows, rng).into_iter().collect()
            } else {
                candidate_thresholds(col, rows)
            };
            for t in candidates {
                let (li, ln, ri, rn) =
                    split_impurities(data, rows, j as usize, t, params.criterion, self.n_classes);
                if ln < params.min_samples_leaf || rn < params.min_samples_leaf {
                    continue;
                }
                let total = (ln + rn) as f64;
                let weighted = (ln as f64 * li + rn as f64 * ri) / total;
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((j, t, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    /// The leaf value vector for view row `row` of `data`: class
    /// distribution for classification, `[mean]` for regression.
    pub fn eval(&self, data: &DatasetView, row: usize) -> &[f64] {
        let mut at = 0usize;
        loop {
            let node = &self.nodes[at];
            if node.is_leaf {
                return &node.value;
            }
            let v = data.value(row, node.feature as usize);
            at = if goes_left(v, node.threshold) {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Like [`DecisionTree::eval`], but over pre-gathered feature columns
    /// (`cols[j][row]` is the value of feature `j` at row `row`). Gathering
    /// once per predict call and traversing every tree against the plain
    /// slices replaces a per-value row-selection dispatch through the view;
    /// the values are identical, so the leaf reached is identical.
    pub fn eval_cols(&self, cols: &[Vec<f64>], row: usize) -> &[f64] {
        let mut at = 0usize;
        loop {
            let node = &self.nodes[at];
            if node.is_leaf {
                return &node.value;
            }
            let v = cols[node.feature as usize][row];
            at = if goes_left(v, node.threshold) {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Number of classes the tree predicts (0 for regression).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Flattened node list for compilation into a serving artifact.
    pub fn export_nodes(&self) -> Vec<DTreeNode> {
        self.nodes
            .iter()
            .map(|n| DTreeNode {
                feature: n.feature,
                threshold: n.threshold,
                left: n.left,
                right: n.right,
                is_leaf: n.is_leaf,
                value: n.value.clone(),
            })
            .collect()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf).count()
    }

    /// Adds one count per internal node to `counts[feature]`.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is shorter than the largest split feature index.
    pub fn accumulate_split_counts(&self, counts: &mut [f64]) {
        for node in &self.nodes {
            if !node.is_leaf {
                counts[node.feature as usize] += 1.0;
            }
        }
    }

    /// Maximum depth of the tree.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[DNode], at: usize) -> usize {
            let n = &nodes[at];
            if n.is_leaf {
                0
            } else {
                1 + rec(nodes, n.left as usize).max(rec(nodes, n.right as usize))
            }
        }
        rec(&self.nodes, 0)
    }
}

/// All helpers below receive *root-coordinate* rows and index the shared
/// storage directly.
fn leaf_value(data: &DatasetView, rows: &[usize], n_classes: usize) -> Vec<f64> {
    let y = data.root_target();
    if n_classes == 0 {
        let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len() as f64;
        vec![mean]
    } else {
        let mut dist = vec![0.0; n_classes];
        for &r in rows {
            dist[y[r] as usize] += 1.0;
        }
        let total = rows.len() as f64;
        for v in &mut dist {
            *v /= total;
        }
        dist
    }
}

fn is_pure(data: &DatasetView, rows: &[usize]) -> bool {
    let y = data.root_target();
    let first = y[rows[0]];
    rows.iter().all(|&r| y[r] == first)
}

fn impurity(
    data: &DatasetView,
    rows: &[usize],
    criterion: SplitCriterion,
    n_classes: usize,
) -> f64 {
    let y = data.root_target();
    match criterion {
        SplitCriterion::Variance => {
            let n = rows.len() as f64;
            let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / n;
            rows.iter()
                .map(|&r| (y[r] - mean) * (y[r] - mean))
                .sum::<f64>()
                / n
        }
        SplitCriterion::Gini | SplitCriterion::Entropy => {
            let mut counts = vec![0usize; n_classes];
            for &r in rows {
                counts[y[r] as usize] += 1;
            }
            class_impurity(&counts, rows.len(), criterion)
        }
    }
}

fn class_impurity(counts: &[usize], total: usize, criterion: SplitCriterion) -> f64 {
    let total = total as f64;
    match criterion {
        SplitCriterion::Gini => {
            1.0 - counts
                .iter()
                .map(|&c| {
                    let p = c as f64 / total;
                    p * p
                })
                .sum::<f64>()
        }
        SplitCriterion::Entropy => -counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                p * p.ln()
            })
            .sum::<f64>(),
        SplitCriterion::Variance => unreachable!("variance handled separately"),
    }
}

/// Impurities and sizes of the two sides of a split.
fn split_impurities(
    data: &DatasetView,
    rows: &[usize],
    feature: usize,
    threshold: f64,
    criterion: SplitCriterion,
    n_classes: usize,
) -> (f64, usize, f64, usize) {
    let col = data.root_column(feature);
    let y = data.root_target();
    if criterion == SplitCriterion::Variance {
        // Single pass Welford-free: accumulate sums and squared sums.
        let (mut ls, mut lss, mut ln) = (0.0, 0.0, 0usize);
        let (mut rs, mut rss, mut rn) = (0.0, 0.0, 0usize);
        for &r in rows {
            let t = y[r];
            if goes_left(col[r], threshold) {
                ls += t;
                lss += t * t;
                ln += 1;
            } else {
                rs += t;
                rss += t * t;
                rn += 1;
            }
        }
        let var = |s: f64, ss: f64, n: usize| {
            if n == 0 {
                0.0
            } else {
                let nf = n as f64;
                (ss / nf - (s / nf) * (s / nf)).max(0.0)
            }
        };
        (var(ls, lss, ln), ln, var(rs, rss, rn), rn)
    } else {
        let mut lc = vec![0usize; n_classes];
        let mut rc = vec![0usize; n_classes];
        let (mut ln, mut rn) = (0usize, 0usize);
        for &r in rows {
            if goes_left(col[r], threshold) {
                lc[y[r] as usize] += 1;
                ln += 1;
            } else {
                rc[y[r] as usize] += 1;
                rn += 1;
            }
        }
        let li = if ln == 0 {
            0.0
        } else {
            class_impurity(&lc, ln, criterion)
        };
        let ri = if rn == 0 {
            0.0
        } else {
            class_impurity(&rc, rn, criterion)
        };
        (li, ln, ri, rn)
    }
}

/// Up to 15 quantile thresholds of the node's non-missing values
/// (midpoints between consecutive distinct values when few).
fn candidate_thresholds(col: &[f64], rows: &[usize]) -> Vec<f64> {
    let mut values: Vec<f64> = rows
        .iter()
        .map(|&r| col[r])
        .filter(|v| !v.is_nan())
        .collect();
    if values.len() < 2 {
        return Vec::new();
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
    values.dedup();
    if values.len() < 2 {
        return Vec::new();
    }
    const MAX_CANDIDATES: usize = 15;
    if values.len() <= MAX_CANDIDATES + 1 {
        return values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    }
    let mut out = Vec::with_capacity(MAX_CANDIDATES);
    for q in 1..=MAX_CANDIDATES {
        let pos = (q * values.len() / (MAX_CANDIDATES + 1)).clamp(1, values.len() - 1);
        let cut = (values[pos - 1] + values[pos]) / 2.0;
        if out.last().is_none_or(|&last| cut > last) {
            out.push(cut);
        }
    }
    out
}

/// One uniformly random threshold strictly inside the node's value range
/// (extra-trees), or `None` for constant/missing-only columns.
fn random_threshold(col: &[f64], rows: &[usize], rng: &mut StdRng) -> Option<f64> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &r in rows {
        let v = col[r];
        if !v.is_nan() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo >= hi {
        return None;
    }
    // Uniform in (lo, hi): values equal to hi go right, so the split is
    // never trivial on the value range.
    let t = rng.gen_range(lo..hi);
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::{Dataset, Task};
    use rand::SeedableRng;

    fn checkerboard(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0).collect();
        let y: Vec<f64> = x0
            .iter()
            .zip(&x1)
            .map(|(&a, &b)| f64::from((a.floor() as i64 + b.floor() as i64) % 2 == 0))
            .collect();
        Dataset::new("cb", Task::Binary, vec![x0, x1], y).unwrap()
    }

    #[test]
    fn overfits_training_data_without_limits() {
        let d = checkerboard(300, 0);
        let rows: Vec<usize> = (0..300).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(&d, &rows, &TreeParams::default(), &mut rng);
        for i in 0..300 {
            let dist = t.eval(&d.view(), i);
            let pred = f64::from(dist[1] > dist[0]);
            assert_eq!(pred, d.target()[i], "row {i}");
        }
    }

    #[test]
    fn depth_cap_respected() {
        let d = checkerboard(300, 1);
        let rows: Vec<usize> = (0..300).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(
            &d,
            &rows,
            &TreeParams {
                max_depth: Some(3),
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(t.depth() <= 3);
        assert!(t.n_leaves() <= 8);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = checkerboard(200, 2);
        let rows: Vec<usize> = (0..200).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(
            &d,
            &rows,
            &TreeParams {
                min_samples_leaf: 50,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(t.n_leaves() <= 4, "{} leaves", t.n_leaves());
    }

    #[test]
    fn regression_variance_split() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 50.0 { 1.0 } else { 9.0 })
            .collect();
        let d = Dataset::new("r", Task::Regression, vec![x], y).unwrap();
        let rows: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(
            &d,
            &rows,
            &TreeParams {
                criterion: SplitCriterion::Variance,
                max_depth: Some(1),
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!((t.eval(&d.view(), 0)[0] - 1.0).abs() < 1e-9);
        assert!((t.eval(&d.view(), 99)[0] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_and_gini_both_split_informative_feature() {
        let x0: Vec<f64> = (0..100).map(|i| f64::from(i >= 50)).collect();
        let x1: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| f64::from(i >= 50)).collect();
        let d = Dataset::new("inf", Task::Binary, vec![x0, x1], y).unwrap();
        let rows: Vec<usize> = (0..100).collect();
        for criterion in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            let mut rng = StdRng::seed_from_u64(0);
            let t = DecisionTree::fit(
                &d,
                &rows,
                &TreeParams {
                    criterion,
                    max_depth: Some(1),
                    ..TreeParams::default()
                },
                &mut rng,
            );
            assert_eq!(t.nodes[0].feature, 0, "{criterion:?} must pick feature 0");
        }
    }

    #[test]
    fn random_threshold_mode_still_learns() {
        let d = checkerboard(400, 4);
        let rows: Vec<usize> = (0..400).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(
            &d,
            &rows,
            &TreeParams {
                random_threshold: true,
                ..TreeParams::default()
            },
            &mut rng,
        );
        let mut correct = 0;
        for i in 0..400 {
            let dist = t.eval(&d.view(), i);
            if f64::from(dist[1] > dist[0]) == d.target()[i] {
                correct += 1;
            }
        }
        assert!(correct > 380, "{correct}/400");
    }

    #[test]
    fn nan_rows_go_left_and_predict() {
        let x = vec![f64::NAN, 1.0, 2.0, 3.0, f64::NAN, 5.0, 6.0, 7.0];
        let y = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let d = Dataset::new("nan", Task::Binary, vec![x], y).unwrap();
        let rows: Vec<usize> = (0..8).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(&d, &rows, &TreeParams::default(), &mut rng);
        for i in 0..8 {
            let dist = t.eval(&d.view(), i);
            assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_node_stays_leaf() {
        let d = Dataset::new(
            "pure",
            Task::Binary,
            vec![vec![1.0, 2.0, 3.0, 4.0]],
            vec![1.0, 1.0, 1.0, 0.0],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(&d, &[0, 1, 2], &TreeParams::default(), &mut rng);
        assert_eq!(t.n_leaves(), 1, "all-ones subset must not split");
    }
}
