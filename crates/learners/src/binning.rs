//! Histogram binning shared by the gradient-boosting learners.
//!
//! Feature values are discretized into at most `max_bin` bins using
//! quantile cut points, the construction used by LightGBM (whose `max_bin`
//! is itself a searched hyperparameter in the paper's Table 5). Bin `0` is
//! reserved for missing values (`NaN`); a split at threshold `t` sends bins
//! `<= t` left, so missing values always travel with the leftmost bin.

use flaml_data::DatasetView;
use std::sync::Arc;

/// The per-feature sorted-unique non-NaN values of one data view: the
/// expensive part of quantile binning, computed once and shared.
///
/// [`BinMapper`]'s cut points are a pure function of this sorted-unique
/// set (the seed path sorts then dedups before deriving cuts), so a
/// mapper built via [`BinMapper::from_sorted`] for any `max_bin` is
/// bit-identical to one built directly from the raw columns — the sort
/// is paid once per view instead of once per trial.
#[derive(Debug, Clone)]
pub struct PreparedSort {
    /// `columns[j]` holds feature `j`'s distinct non-NaN values, sorted.
    columns: Vec<Vec<f64>>,
}

impl PreparedSort {
    /// Sorts and dedups every feature column of `data`.
    pub fn compute(data: impl Into<DatasetView>) -> PreparedSort {
        let data: DatasetView = data.into();
        let columns = (0..data.n_features())
            .map(|j| sorted_uniques(data.column_values(j)))
            .collect();
        PreparedSort { columns }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Approximate heap footprint in bytes (for cache budgeting).
    pub fn heap_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.len() * std::mem::size_of::<f64>())
            .sum()
    }
}

fn sorted_uniques(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut values: Vec<f64> = values.filter(|v| !v.is_nan()).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
    values.dedup();
    values
}

/// Per-feature quantile cut points mapping raw values to bin indices.
#[derive(Debug, Clone)]
pub struct BinMapper {
    /// `cuts[j]` holds the sorted cut points of feature `j`.
    cuts: Vec<Vec<f64>>,
}

impl BinMapper {
    /// Builds a mapper with at most `max_bin` value bins per feature
    /// (missing-value bin excluded). Accepts anything convertible into a
    /// [`DatasetView`] (`&Dataset`, `&DatasetView`, ...).
    ///
    /// `max_bin` is clamped to at least 2.
    pub fn fit(data: impl Into<DatasetView>, max_bin: usize) -> BinMapper {
        let data: DatasetView = data.into();
        let max_bin = max_bin.max(2);
        let cuts = (0..data.n_features())
            .map(|j| Self::cuts_from_sorted(&sorted_uniques(data.column_values(j)), max_bin))
            .collect();
        BinMapper { cuts }
    }

    /// Builds a mapper from a precomputed [`PreparedSort`], skipping the
    /// per-trial sort. Produces exactly the cuts [`BinMapper::fit`] would
    /// for the same view and `max_bin`.
    ///
    /// `max_bin` is clamped to at least 2.
    pub fn from_sorted(sort: &PreparedSort, max_bin: usize) -> BinMapper {
        let max_bin = max_bin.max(2);
        let cuts = sort
            .columns
            .iter()
            .map(|values| Self::cuts_from_sorted(values, max_bin))
            .collect();
        BinMapper { cuts }
    }

    /// Derives quantile cuts from a column's sorted-unique value set.
    fn cuts_from_sorted(values: &[f64], max_bin: usize) -> Vec<f64> {
        if values.is_empty() {
            return Vec::new();
        }
        if values.len() <= max_bin {
            // One bin per distinct value: cuts at midpoints.
            return values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
        }
        // Quantile cuts: max_bin bins need max_bin - 1 interior cuts.
        let mut cuts = Vec::with_capacity(max_bin - 1);
        for q in 1..max_bin {
            let pos = q * values.len() / max_bin;
            let pos = pos.min(values.len() - 1).max(1);
            let cut = (values[pos - 1] + values[pos]) / 2.0;
            if cuts.last().is_none_or(|&last| cut > last) {
                cuts.push(cut);
            }
        }
        cuts
    }

    /// Rebuilds a mapper from stored cut points — e.g. the cuts embedded
    /// in a compiled serving artifact. A mapper built from the cuts of an
    /// existing mapper bins every value identically to the original.
    pub fn from_cuts(cuts: Vec<Vec<f64>>) -> BinMapper {
        BinMapper { cuts }
    }

    /// The per-feature sorted cut points.
    pub fn cuts(&self) -> &[Vec<f64>] {
        &self.cuts
    }

    /// Number of features the mapper was fit on.
    pub fn n_features(&self) -> usize {
        self.cuts.len()
    }

    /// Number of bins of feature `j`, including the missing-value bin 0.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn n_bins(&self, j: usize) -> usize {
        self.cuts[j].len() + 2
    }

    /// The bin index of raw value `v` for feature `j`: 0 for `NaN`,
    /// otherwise `1 + #cuts below v`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn bin(&self, j: usize, v: f64) -> u32 {
        if v.is_nan() {
            return 0;
        }
        1 + self.cuts[j].partition_point(|&c| c < v) as u32
    }

    /// Bins an entire dataset or view (must have the same number of
    /// features), row-ordered as the view iterates.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fit-time dataset.
    pub fn transform(&self, data: impl Into<DatasetView>) -> BinnedDataset {
        let data: DatasetView = data.into();
        assert_eq!(
            data.n_features(),
            self.n_features(),
            "binning a dataset with a different feature count"
        );
        let bins = (0..data.n_features())
            .map(|j| data.column_values(j).map(|v| self.bin(j, v)).collect())
            .collect();
        BinnedDataset {
            bins,
            n_bins: (0..self.n_features()).map(|j| self.n_bins(j)).collect(),
        }
    }
}

/// The build-once, reuse-everywhere binning artifact of one training
/// view at one `max_bin`: the fitted [`BinMapper`] plus the pre-binned
/// `u32` feature matrix. Sharing it across trials removes the per-trial
/// sort + quantize + transform from `Gbdt::fit`'s critical path.
#[derive(Debug, Clone)]
pub struct PreparedBins {
    mapper: BinMapper,
    /// `Arc`-shared so fit states ([`crate::GbdtFitState`]) can hold the
    /// matrix without copying it; cloning a `PreparedBins` stays cheap.
    binned: Arc<BinnedDataset>,
    max_bin: usize,
}

impl PreparedBins {
    /// Bins `data` with cuts derived from `sort` (which must have been
    /// computed over the same view). `max_bin` is recorded unclamped so
    /// callers can match a prepared artifact to a trial's configuration.
    pub fn prepare(
        sort: &PreparedSort,
        data: impl Into<DatasetView>,
        max_bin: usize,
    ) -> PreparedBins {
        let data: DatasetView = data.into();
        let mapper = BinMapper::from_sorted(sort, max_bin);
        let binned = Arc::new(mapper.transform(&data));
        PreparedBins {
            mapper,
            binned,
            max_bin,
        }
    }

    /// Bins `data` with an already-fitted `mapper` (e.g. one rebuilt from
    /// a serving artifact's stored cuts). The recorded `max_bin` is the
    /// mapper's own bin budget, so the artifact matches itself on lookup.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different feature count than the mapper.
    pub fn from_mapper(mapper: BinMapper, data: impl Into<DatasetView>) -> PreparedBins {
        let data: DatasetView = data.into();
        let max_bin = (0..mapper.n_features())
            .map(|j| mapper.n_bins(j).saturating_sub(1))
            .max()
            .unwrap_or(2);
        let binned = Arc::new(mapper.transform(&data));
        PreparedBins {
            mapper,
            binned,
            max_bin,
        }
    }

    /// The requested (unclamped) `max_bin` this artifact was built for.
    pub fn max_bin(&self) -> usize {
        self.max_bin
    }

    /// The fitted mapper.
    pub fn mapper(&self) -> &BinMapper {
        &self.mapper
    }

    /// The pre-binned training matrix.
    pub fn binned(&self) -> &BinnedDataset {
        &self.binned
    }

    /// The pre-binned training matrix as a shared handle (what a
    /// resumable fit state holds, so continuing a fit never copies the
    /// matrix).
    pub fn binned_arc(&self) -> Arc<BinnedDataset> {
        self.binned.clone()
    }

    /// Approximate heap footprint in bytes (for cache budgeting).
    pub fn heap_bytes(&self) -> usize {
        let cuts: usize = self
            .mapper
            .cuts
            .iter()
            .map(|c| c.len() * std::mem::size_of::<f64>())
            .sum();
        let bins: usize = self
            .binned
            .bins
            .iter()
            .map(|c| c.len() * std::mem::size_of::<u32>())
            .sum();
        cuts + bins
    }
}

/// A dataset discretized by a [`BinMapper`]: column-major bin indices.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    bins: Vec<Vec<u32>>,
    n_bins: Vec<usize>,
}

impl BinnedDataset {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.bins.first().map_or(0, Vec::len)
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.bins.len()
    }

    /// The bin indices of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> &[u32] {
        &self.bins[j]
    }

    /// The number of bins of feature `j` (missing-value bin included).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn n_bins(&self, j: usize) -> usize {
        self.n_bins[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::{Dataset, Task};

    fn data(cols: Vec<Vec<f64>>) -> Dataset {
        let n = cols[0].len();
        Dataset::new(
            "t",
            Task::Regression,
            cols,
            vec![0.5; n]
                .iter()
                .enumerate()
                .map(|(i, _)| i as f64)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let d = data(vec![vec![1.0, 2.0, 1.0, 3.0, 2.0]]);
        let m = BinMapper::fit(&d, 255);
        // Distinct values 1, 2, 3 => cuts at 1.5, 2.5 => bins 1, 2, 3.
        assert_eq!(m.bin(0, 1.0), 1);
        assert_eq!(m.bin(0, 2.0), 2);
        assert_eq!(m.bin(0, 3.0), 3);
        assert_eq!(m.n_bins(0), 4);
    }

    #[test]
    fn nan_maps_to_bin_zero() {
        let d = data(vec![vec![1.0, f64::NAN, 3.0]]);
        let m = BinMapper::fit(&d, 255);
        assert_eq!(m.bin(0, f64::NAN), 0);
        assert!(m.bin(0, 1.0) >= 1);
    }

    #[test]
    fn all_nan_column_has_single_bin() {
        let d = data(vec![vec![f64::NAN, f64::NAN]]);
        let m = BinMapper::fit(&d, 255);
        assert_eq!(m.n_bins(0), 2);
        assert_eq!(m.bin(0, f64::NAN), 0);
        assert_eq!(m.bin(0, 7.0), 1);
    }

    #[test]
    fn bins_are_monotone_in_value() {
        let col: Vec<f64> = (0..1000).map(|i| (i as f64 * 17.0) % 101.0).collect();
        let d = data(vec![col.clone()]);
        let m = BinMapper::fit(&d, 16);
        let mut pairs: Vec<(f64, u32)> = col.iter().map(|&v| (v, m.bin(0, v))).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "bin must be monotone in value");
        }
    }

    #[test]
    fn max_bin_respected() {
        let col: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let d = data(vec![col]);
        let m = BinMapper::fit(&d, 32);
        assert!(m.n_bins(0) <= 34, "32 value bins + NaN bin + overflow bin");
        // Bins should be roughly balanced for uniform data.
        let binned = m.transform(&d);
        let mut counts = vec![0usize; m.n_bins(0)];
        for &b in binned.column(0) {
            counts[b as usize] += 1;
        }
        let nonzero: Vec<usize> = counts.into_iter().filter(|&c| c > 0).collect();
        let max = *nonzero.iter().max().unwrap() as f64;
        let min = *nonzero.iter().min().unwrap() as f64;
        assert!(max / min < 2.5, "quantile bins stay balanced: {min}..{max}");
    }

    #[test]
    fn transform_round_trips_bin_of_value() {
        let col = vec![5.0, 1.0, 9.0, f64::NAN, 2.0];
        let d = data(vec![col.clone()]);
        let m = BinMapper::fit(&d, 8);
        let binned = m.transform(&d);
        for (i, &v) in col.iter().enumerate() {
            assert_eq!(binned.column(0)[i], m.bin(0, v));
        }
        assert_eq!(binned.n_rows(), 5);
        assert_eq!(binned.n_features(), 1);
    }

    #[test]
    fn constant_column_single_value_bin() {
        let d = data(vec![vec![4.0; 10]]);
        let m = BinMapper::fit(&d, 255);
        assert_eq!(m.n_bins(0), 2);
        assert_eq!(m.bin(0, 4.0), 1);
    }

    #[test]
    fn from_sorted_matches_direct_fit_for_every_max_bin() {
        let col: Vec<f64> = (0..500)
            .map(|i| {
                if i % 7 == 0 {
                    f64::NAN
                } else {
                    (i as f64 * 37.0) % 113.0
                }
            })
            .collect();
        let d = data(vec![col]);
        let sort = PreparedSort::compute(&d);
        for max_bin in [2usize, 3, 8, 16, 64, 255, 1024] {
            let direct = BinMapper::fit(&d, max_bin);
            let shared = BinMapper::from_sorted(&sort, max_bin);
            assert_eq!(direct.cuts.len(), shared.cuts.len());
            for (a, b) in direct.cuts.iter().zip(&shared.cuts) {
                let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a_bits, b_bits, "max_bin={max_bin}");
            }
        }
    }

    #[test]
    fn prepared_bins_match_fit_plus_transform() {
        let col: Vec<f64> = (0..300).map(|i| (i as f64 * 17.0) % 101.0).collect();
        let d = data(vec![col]);
        let sort = PreparedSort::compute(&d);
        let prepared = PreparedBins::prepare(&sort, &d, 16);
        let mapper = BinMapper::fit(&d, 16);
        let binned = mapper.transform(&d);
        assert_eq!(prepared.max_bin(), 16);
        assert_eq!(prepared.binned().column(0), binned.column(0));
        assert!(prepared.heap_bytes() > 0);
        assert!(sort.heap_bytes() > 0);
    }

    #[test]
    fn view_transform_matches_materialized_transform() {
        let col: Vec<f64> = (0..100).map(|i| ((i * 31) % 19) as f64).collect();
        let d = data(vec![col]);
        let view = d.view().select(&[90, 5, 5, 40, 77]);
        let copy = view.materialize();
        let m_view = BinMapper::fit(&view, 8);
        let m_copy = BinMapper::fit(&copy, 8);
        assert_eq!(
            m_view.transform(&view).column(0),
            m_copy.transform(&copy).column(0)
        );
    }
}
