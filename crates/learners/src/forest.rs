//! Random forests and extra-trees, built on [`crate::DecisionTree`].
//!
//! The paper's Table 5 searches `tree num`, `max features` and the split
//! criterion for both `sklearn random forest` and `sklearn extra trees`;
//! the two differ in bootstrap (RF resamples rows, ET uses all rows) and
//! threshold selection (ET draws one random threshold per feature).

use crate::dtree::{DecisionTree, SplitCriterion, TreeParams};
use crate::FitError;
use flaml_data::{DatasetView, Task};
use flaml_metrics::Pred;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Hyperparameters of the [`Forest`] learner.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees ("tree num").
    pub n_trees: usize,
    /// Fraction of features considered per split ("max features").
    pub max_features: f64,
    /// Split criterion; ignored (forced to variance) on regression tasks.
    pub criterion: SplitCriterion,
    /// Extra-trees mode: no bootstrap, random thresholds.
    pub extra: bool,
    /// Depth cap per tree (`None` grows to purity, sklearn's default).
    pub max_depth: Option<usize>,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 100,
            max_features: 0.5,
            criterion: SplitCriterion::Gini,
            extra: false,
            max_depth: None,
        }
    }
}

/// The forest learner. Construct models via [`Forest::fit`].
#[derive(Debug, Clone, Copy)]
pub struct Forest;

/// A fitted forest.
#[derive(Debug, Clone)]
pub struct ForestModel {
    trees: Vec<DecisionTree>,
    task: Task,
    n_features: usize,
}

impl Forest {
    /// Fits a forest. Accepts anything convertible into a
    /// [`DatasetView`] (`&Dataset`, `&DatasetView`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for out-of-range hyperparameters.
    pub fn fit(
        data: impl Into<DatasetView>,
        params: &ForestParams,
        seed: u64,
    ) -> Result<ForestModel, FitError> {
        Self::fit_bounded(data, params, seed, None)
    }

    /// Like [`Forest::fit`] but stops adding trees when `budget` elapses
    /// (at least one tree is always built).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for out-of-range hyperparameters.
    pub fn fit_bounded(
        data: impl Into<DatasetView>,
        params: &ForestParams,
        seed: u64,
        budget: Option<Duration>,
    ) -> Result<ForestModel, FitError> {
        let data: DatasetView = data.into();
        if params.n_trees == 0 {
            return Err(FitError::bad_param("n_trees", 0.0, "must be >= 1"));
        }
        if !(params.max_features > 0.0 && params.max_features <= 1.0) {
            return Err(FitError::bad_param(
                "max_features",
                params.max_features,
                "must be in (0, 1]",
            ));
        }
        let start = Instant::now();
        let n = data.n_rows();
        let criterion = if data.task() == Task::Regression {
            SplitCriterion::Variance
        } else {
            params.criterion
        };
        let tree_params = TreeParams {
            max_features: params.max_features,
            criterion,
            random_threshold: params.extra,
            min_samples_leaf: 1,
            max_depth: params.max_depth,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for t in 0..params.n_trees {
            if t > 0 {
                if let Some(b) = budget {
                    if start.elapsed() >= b {
                        break;
                    }
                }
            }
            let rows: Vec<usize> = if params.extra {
                (0..n).collect()
            } else {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            };
            trees.push(DecisionTree::fit(&data, &rows, &tree_params, &mut rng));
        }
        Ok(ForestModel {
            trees,
            task: data.task(),
            n_features: data.n_features(),
        })
    }
}

impl ForestModel {
    /// Number of trees actually built.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-count feature importance, normalized to sum to 1 (all zeros
    /// if no tree ever split).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_features];
        for tree in &self.trees {
            tree.accumulate_split_counts(&mut counts);
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    /// Predicts by averaging per-tree leaf distributions (classification)
    /// or leaf means (regression).
    ///
    /// The eval matrix is gathered into plain column slices once up front
    /// and every tree traverses those slices, instead of re-dispatching
    /// each value lookup through the view's row selection at every tree
    /// visit; the gathered values are identical, so the predictions are
    /// identical. The same column path serves compiled artifacts.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different feature count than training data.
    pub fn predict(&self, data: impl Into<DatasetView>) -> Pred {
        let data: DatasetView = data.into();
        assert_eq!(
            data.n_features(),
            self.n_features,
            "predicting with a different feature count"
        );
        let cols: Vec<Vec<f64>> = (0..data.n_features())
            .map(|j| data.column_values(j).collect())
            .collect();
        self.predict_cols(&cols, data.n_rows())
    }

    /// Predicts from pre-gathered feature columns (`cols[j][i]` is the
    /// value of feature `j` at row `i`). This is the code path
    /// [`ForestModel::predict`] uses after gathering its view once.
    ///
    /// # Panics
    ///
    /// Panics if `cols` has a different feature count than training data.
    pub fn predict_cols(&self, cols: &[Vec<f64>], n: usize) -> Pred {
        assert_eq!(
            cols.len(),
            self.n_features,
            "predicting with a different feature count"
        );
        let m = self.trees.len() as f64;
        match self.task {
            Task::Regression => {
                let mut out = vec![0.0; n];
                for tree in &self.trees {
                    for (i, o) in out.iter_mut().enumerate() {
                        *o += tree.eval_cols(cols, i)[0];
                    }
                }
                for o in &mut out {
                    *o /= m;
                }
                Pred::from_values(out)
            }
            Task::Binary | Task::MultiClass(_) => {
                let k = self.task.n_classes().expect("classification");
                let mut p = vec![0.0; n * k];
                for tree in &self.trees {
                    for i in 0..n {
                        let dist = tree.eval_cols(cols, i);
                        for c in 0..k {
                            p[i * k + c] += dist[c];
                        }
                    }
                }
                for v in &mut p {
                    *v /= m;
                }
                Pred::Probs { n_classes: k, p }
            }
        }
    }

    /// The fitted trees, for compilation into a serving artifact.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The task the model was trained for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of feature columns the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::Dataset;
    use flaml_metrics::Metric;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x0 = Vec::with_capacity(n);
        let mut x1 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.0 } else { 1.0 };
            x0.push(center + rng.gen::<f64>() - 0.5);
            x1.push(center + rng.gen::<f64>() - 0.5);
            y.push(c as f64);
        }
        Dataset::new("blobs", Task::Binary, vec![x0, x1], y).unwrap()
    }

    #[test]
    fn rf_separates_blobs() {
        let d = blobs(300, 0);
        let m = Forest::fit(
            &d,
            &ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
            0,
        )
        .unwrap();
        let loss = Metric::Accuracy.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.02, "train error {loss}");
    }

    #[test]
    fn extra_trees_separate_blobs() {
        let d = blobs(300, 1);
        let m = Forest::fit(
            &d,
            &ForestParams {
                n_trees: 20,
                extra: true,
                ..ForestParams::default()
            },
            0,
        )
        .unwrap();
        let loss = Metric::Accuracy.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.03, "train error {loss}");
    }

    #[test]
    fn regression_forest_uses_variance() {
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| v * v).collect();
        let d = Dataset::new("sq", Task::Regression, vec![x], y).unwrap();
        let m = Forest::fit(
            &d,
            &ForestParams {
                n_trees: 30,
                criterion: SplitCriterion::Gini, // overridden internally
                ..ForestParams::default()
            },
            0,
        )
        .unwrap();
        let loss = Metric::R2.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.01, "1 - r2 = {loss}");
    }

    #[test]
    fn probabilities_normalized() {
        let d = blobs(100, 2);
        let m = Forest::fit(&d, &ForestParams::default(), 0).unwrap();
        let pred = m.predict(&d);
        let (_, p) = pred.probs().unwrap();
        for row in p.chunks_exact(2) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn budget_caps_tree_count() {
        let d = blobs(3000, 3);
        let m = Forest::fit_bounded(
            &d,
            &ForestParams {
                n_trees: 10_000,
                ..ForestParams::default()
            },
            0,
            Some(Duration::from_millis(60)),
        )
        .unwrap();
        assert!(m.n_trees() >= 1);
        assert!(m.n_trees() < 10_000);
    }

    #[test]
    fn validates_params() {
        let d = blobs(50, 4);
        assert!(Forest::fit(
            &d,
            &ForestParams {
                n_trees: 0,
                ..ForestParams::default()
            },
            0
        )
        .is_err());
        assert!(Forest::fit(
            &d,
            &ForestParams {
                max_features: 0.0,
                ..ForestParams::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        let n = 300;
        let mut rng = StdRng::seed_from_u64(31);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = x0.iter().map(|&v| f64::from(v > 0.5)).collect();
        let d = Dataset::new("imp", Task::Binary, vec![x0, x1], y).unwrap();
        // Shallow exhaustive trees: split counts concentrate on the
        // signal (deep fully-grown trees spend many splits cleaning up
        // noise partitions, diluting split-count importance).
        let m = Forest::fit(
            &d,
            &ForestParams {
                n_trees: 10,
                max_features: 1.0,
                max_depth: Some(2),
                ..ForestParams::default()
            },
            0,
        )
        .unwrap();
        let imp = m.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.6, "signal feature importance {imp:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(200, 5);
        let params = ForestParams {
            n_trees: 5,
            ..ForestParams::default()
        };
        let a = Forest::fit(&d, &params, 9).unwrap().predict(&d);
        let b = Forest::fit(&d, &params, 9).unwrap().predict(&d);
        assert_eq!(a, b);
    }
}
