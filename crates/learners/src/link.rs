//! Link functions shared by the training predict paths and the compiled
//! serving layer. Keeping one implementation is what makes compiled
//! artifacts bit-identical to the interpreted models: both sides apply
//! exactly these operations, in exactly this order.

/// The logistic function `1 / (1 + e^-x)`.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// In-place max-subtracted softmax over one row of margins.
pub fn softmax_in_place(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        total += *v;
    }
    for v in row.iter_mut() {
        *v /= total;
    }
}
