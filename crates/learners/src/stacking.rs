//! Stacked ensembles — the optional post-processing step described in the
//! paper's appendix ("Stacked ensemble can be added as a post-processing
//! step like existing libraries... FLAML does not do it by default to
//! keep the overhead low, but it offers the option").
//!
//! A [`StackedModel`] holds base members plus a linear meta-learner
//! trained on their out-of-fold predictions. This module provides the
//! model container and the feature plumbing; the AutoML layer assembles
//! it from the best configuration of each searched learner.

use crate::linear::{Linear, LinearModel, LinearParams};
use crate::{FitError, FittedModel};
use flaml_data::{Dataset, DatasetView, Task};
use flaml_metrics::Pred;

/// A stacked ensemble: base members and a linear meta-learner over their
/// predictions.
#[derive(Debug, Clone)]
pub struct StackedModel {
    members: Vec<FittedModel>,
    meta: LinearModel,
    task: Task,
}

/// The meta-feature columns for `data`: one column per member and class
/// (probabilities, last class dropped as redundant) or per member
/// (regression values). This is the single extraction both [`meta_features`]
/// (training) and [`StackedModel::predict`] (serving) run, so the two
/// paths see bit-identical features.
///
/// # Panics
///
/// Panics if `members` is empty or a member predicts the wrong row count.
pub fn member_columns(members: &[FittedModel], data: &DatasetView) -> Vec<Vec<f64>> {
    assert!(!members.is_empty(), "stacking needs at least one member");
    let n = data.n_rows();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for member in members {
        match member.predict(data) {
            Pred::Values(v) => {
                assert_eq!(v.len(), n);
                columns.push(v);
            }
            Pred::Probs { n_classes, p } => {
                // Skip the last class: its probability is redundant.
                for c in 0..n_classes.saturating_sub(1) {
                    columns.push(p.chunks_exact(n_classes).map(|row| row[c]).collect());
                }
            }
        }
    }
    columns
}

/// Builds the meta-feature dataset for `data`: one column per member and
/// class (probabilities) or per member (regression values), with `target`
/// as the label.
///
/// # Panics
///
/// Panics if `members` is empty or a member produces the wrong prediction
/// kind for the task.
pub fn meta_features(
    members: &[FittedModel],
    data: impl Into<DatasetView>,
    target: Vec<f64>,
) -> Dataset {
    let data: DatasetView = data.into();
    let columns = member_columns(members, &data);
    Dataset::new("meta", data.task(), columns, target).expect("consistent meta features")
}

impl StackedModel {
    /// Assembles a stacked model from trained members and a meta-learner
    /// that was fit on [`meta_features`] of out-of-fold predictions.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<FittedModel>, meta: LinearModel, task: Task) -> StackedModel {
        assert!(!members.is_empty(), "stacking needs at least one member");
        StackedModel {
            members,
            meta,
            task,
        }
    }

    /// Number of base members.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// The base members.
    pub fn members(&self) -> &[FittedModel] {
        &self.members
    }

    /// The linear meta-learner.
    pub fn meta(&self) -> &LinearModel {
        &self.meta
    }

    /// The task the ensemble was assembled for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Predicts by feeding every member's prediction into the
    /// meta-learner. The member columns go straight into the meta-model's
    /// column predict path — no intermediate dataset is built — which is
    /// bit-identical to the dataset route because the design matrix is
    /// constructed by the same code over the same values.
    pub fn predict(&self, data: impl Into<DatasetView>) -> Pred {
        let data: DatasetView = data.into();
        let columns = member_columns(&self.members, &data);
        self.meta.predict_columns(&columns, data.n_rows())
    }
}

/// Trains a linear meta-learner on out-of-fold member predictions.
///
/// `oof` must be the meta-feature dataset built from *out-of-fold*
/// predictions (so the meta-learner does not overfit member train error).
///
/// # Errors
///
/// Returns [`FitError`] if the meta fit fails (e.g. a single-class fold).
pub fn fit_meta(oof: &Dataset, seed: u64) -> Result<LinearModel, FitError> {
    Linear::fit(
        oof,
        &LinearParams {
            // Light regularization: member predictions are already
            // well-scaled probabilities/values.
            c: 10.0,
            max_iter: 25,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Forest, ForestParams, Gbdt, GbdtParams};
    use flaml_metrics::Metric;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_binary(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let p = if (x0[i] - 0.5) * (x1[i] - 0.5) > 0.0 {
                    0.9
                } else {
                    0.1
                };
                f64::from(rng.gen::<f64>() < p)
            })
            .collect();
        Dataset::new("xor-ish", Task::Binary, vec![x0, x1], y).unwrap()
    }

    fn members_for(data: &Dataset) -> Vec<FittedModel> {
        vec![
            Gbdt::fit(
                data,
                &GbdtParams {
                    n_trees: 20,
                    ..GbdtParams::default()
                },
                0,
            )
            .unwrap()
            .into(),
            Forest::fit(
                data,
                &ForestParams {
                    n_trees: 10,
                    ..ForestParams::default()
                },
                0,
            )
            .unwrap()
            .into(),
        ]
    }

    #[test]
    fn meta_features_shape() {
        let data = noisy_binary(200, 0);
        let members = members_for(&data);
        let meta = meta_features(&members, &data, data.target().to_vec());
        // Binary: one probability column per member.
        assert_eq!(meta.n_features(), 2);
        assert_eq!(meta.n_rows(), 200);
    }

    #[test]
    fn stacked_predicts_probabilities() {
        let data = noisy_binary(400, 1);
        let members = members_for(&data);
        let oof = meta_features(&members, &data, data.target().to_vec());
        let meta = fit_meta(&oof, 0).unwrap();
        let stacked = StackedModel::new(members, meta, data.task());
        assert_eq!(stacked.n_members(), 2);
        let pred = stacked.predict(&data);
        for p in pred.positive_scores().unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
        let loss = Metric::RocAuc.loss(&pred, data.target()).unwrap();
        assert!(loss < 0.2, "stacked auc regret {loss}");
    }

    #[test]
    fn stacked_not_worse_than_worst_member() {
        let data = noisy_binary(600, 2);
        let members = members_for(&data);
        let worst_loss = members
            .iter()
            .map(|m| {
                Metric::RocAuc
                    .loss(&m.predict(&data), data.target())
                    .unwrap()
            })
            .fold(0.0, f64::max);
        let oof = meta_features(&members, &data, data.target().to_vec());
        let meta = fit_meta(&oof, 0).unwrap();
        let stacked = StackedModel::new(members, meta, data.task());
        let loss = Metric::RocAuc
            .loss(&stacked.predict(&data), data.target())
            .unwrap();
        assert!(
            loss <= worst_loss + 0.02,
            "stacked {loss} worse than worst member {worst_loss}"
        );
    }

    #[test]
    fn regression_stacking_works() {
        let n = 300;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| (v * 8.0).sin() + v * 2.0).collect();
        let data = Dataset::new("reg", Task::Regression, vec![x], y).unwrap();
        let members: Vec<FittedModel> = vec![
            Gbdt::fit(
                &data,
                &GbdtParams {
                    n_trees: 30,
                    ..GbdtParams::default()
                },
                0,
            )
            .unwrap()
            .into(),
            Forest::fit(
                &data,
                &ForestParams {
                    n_trees: 10,
                    ..ForestParams::default()
                },
                0,
            )
            .unwrap()
            .into(),
        ];
        let oof = meta_features(&members, &data, data.target().to_vec());
        let meta = fit_meta(&oof, 0).unwrap();
        let stacked = StackedModel::new(members, meta, data.task());
        let loss = Metric::R2
            .loss(&stacked.predict(&data), data.target())
            .unwrap();
        assert!(loss < 0.05, "1 - r2 = {loss}");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_members_panic() {
        let data = noisy_binary(50, 3);
        let _ = meta_features(&[], &data, data.target().to_vec());
    }
}
