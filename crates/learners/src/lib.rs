//! The ML layer of the FLAML reproduction: every learner of the paper's
//! Table 5 search space, implemented from scratch.
//!
//! * [`Gbdt`] — histogram-based gradient-boosted decision trees with three
//!   growth policies standing in for the three boosting libraries the paper
//!   searches over: leaf-wise ([`Growth::LeafWise`], LightGBM-style),
//!   depth-wise ([`Growth::DepthWise`], XGBoost-style) and oblivious trees
//!   with early stopping ([`Growth::Oblivious`], CatBoost-style).
//! * [`Forest`] — bagged decision trees (random forest) and
//!   extremely-randomized trees (extra-trees), sharing one tree core.
//! * [`Linear`] — L2-regularized logistic regression (classification) and
//!   ridge regression (regression tasks), trained with averaged SGD.
//!
//! All learners consume anything convertible into a zero-copy
//! [`flaml_data::DatasetView`] (an owned [`flaml_data::Dataset`], a
//! subsample view, a fold view, ...) and produce a [`FittedModel`] whose
//! [`FittedModel::predict`] returns a [`flaml_metrics::Pred`] ready for
//! metric evaluation. [`PreparedSort`] and [`PreparedBins`] let callers
//! hoist the per-fit binning work of [`Gbdt`] out of repeated trials, and
//! [`GbdtFitState`] makes a boosting run resumable: [`Gbdt::fit_start`]
//! plus [`Gbdt::fit_continue`] grow a model in stages bit-identical to a
//! single monolithic fit, so callers can cache and extend tree prefixes
//! across trials.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use flaml_data::{Dataset, Task};
//! use flaml_learners::{Gbdt, GbdtParams};
//!
//! let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
//! let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 0.5)).collect();
//! let data = Dataset::new("step", Task::Binary, vec![x], y)?;
//! let model = Gbdt::fit(&data, &GbdtParams::default(), 0)?;
//! let pred = model.predict(&data);
//! # let _ = pred;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod binning;
mod dtree;
mod error;
mod forest;
mod gbdt;
mod linear;
pub mod link;
mod stacking;

pub use binning::{BinMapper, BinnedDataset, PreparedBins, PreparedSort};
pub use dtree::{goes_left, DTreeNode, DecisionTree, SplitCriterion, TreeParams};
pub use error::FitError;
pub use forest::{Forest, ForestModel, ForestParams};
pub use gbdt::{Gbdt, GbdtFitState, GbdtModel, GbdtNode, GbdtParams, Growth};
pub use linear::{Encoding, Linear, LinearModel, LinearParams};
pub use stacking::{fit_meta, member_columns, meta_features, StackedModel};

use flaml_data::DatasetView;
use flaml_metrics::Pred;
use std::sync::Arc;

/// Object-safe model trait for user-defined learners: anything that can
/// predict on a dataset can be wrapped into [`FittedModel::Custom`].
pub trait DynModel: std::fmt::Debug + Send + Sync {
    /// Predicts on `data` (probabilities for classification, values for
    /// regression).
    fn predict_dyn(&self, data: &DatasetView) -> Pred;
}

/// A trained model from any learner in the ML layer.
#[derive(Debug, Clone)]
pub enum FittedModel {
    /// Gradient-boosted decision trees.
    Gbdt(GbdtModel),
    /// Random forest or extra-trees ensemble.
    Forest(ForestModel),
    /// Logistic or ridge regression.
    Linear(LinearModel),
    /// A stacked ensemble of other fitted models.
    Stacked(Box<StackedModel>),
    /// A user-defined model (see [`DynModel`]).
    Custom(Arc<dyn DynModel>),
}

impl FittedModel {
    /// Predicts on `data` (class probabilities for classification tasks,
    /// values for regression).
    pub fn predict(&self, data: impl Into<DatasetView>) -> Pred {
        let data: DatasetView = data.into();
        match self {
            FittedModel::Gbdt(m) => m.predict(&data),
            FittedModel::Forest(m) => m.predict(&data),
            FittedModel::Linear(m) => m.predict(&data),
            FittedModel::Stacked(m) => m.predict(&data),
            FittedModel::Custom(m) => m.predict_dyn(&data),
        }
    }

    /// Split-count feature importance for tree models, `None` for models
    /// without a per-feature split notion (linear, stacked, custom).
    pub fn feature_importance(&self) -> Option<Vec<f64>> {
        match self {
            FittedModel::Gbdt(m) => Some(m.feature_importance()),
            FittedModel::Forest(m) => Some(m.feature_importance()),
            _ => None,
        }
    }
}

impl From<GbdtModel> for FittedModel {
    fn from(m: GbdtModel) -> Self {
        FittedModel::Gbdt(m)
    }
}

impl From<ForestModel> for FittedModel {
    fn from(m: ForestModel) -> Self {
        FittedModel::Forest(m)
    }
}

impl From<LinearModel> for FittedModel {
    fn from(m: LinearModel) -> Self {
        FittedModel::Linear(m)
    }
}

impl From<StackedModel> for FittedModel {
    fn from(m: StackedModel) -> Self {
        FittedModel::Stacked(Box::new(m))
    }
}
