use std::error::Error;
use std::fmt;

/// Error raised when a learner cannot be fit.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// A hyperparameter value is outside its valid range.
    BadParam {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The dataset is unusable for this learner (e.g. a classification
    /// learner fit on a regression task).
    BadData(String),
}

impl FitError {
    pub(crate) fn bad_param(name: &'static str, value: f64, constraint: &'static str) -> Self {
        FitError::BadParam {
            name,
            value,
            constraint,
        }
    }
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::BadParam {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} violates: {constraint}"),
            FitError::BadData(msg) => write!(f, "unusable dataset: {msg}"),
        }
    }
}

impl Error for FitError {}
