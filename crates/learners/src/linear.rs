//! Linear models: L2-regularized logistic regression (the paper's
//! `sklearn lr` learner, hyperparameter `C`) and ridge regression for
//! regression tasks.
//!
//! Features are standardized; categorical columns are one-hot encoded;
//! missing values are mean-imputed (zero after standardization). Binary
//! classification is solved by IRLS (Newton) with a ridge term, multiclass
//! by one-vs-rest, ridge regression by normal equations — all via a small
//! in-crate Cholesky solver, so convergence is fast and deterministic.

use crate::link::sigmoid;
use crate::FitError;
use flaml_data::{DatasetView, FeatureKind, Task};
use flaml_metrics::Pred;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Hyperparameters of the [`Linear`] learner.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearParams {
    /// Inverse regularization strength, as in scikit-learn: larger `C`
    /// means weaker regularization. Table 5 range: `[0.03125, 32768]`.
    pub c: f64,
    /// Maximum IRLS iterations for classification.
    pub max_iter: usize,
}

impl Default for LinearParams {
    fn default() -> Self {
        LinearParams {
            c: 1.0,
            max_iter: 25,
        }
    }
}

/// The linear learner. Construct models via [`Linear::fit`].
#[derive(Debug, Clone, Copy)]
pub struct Linear;

/// How each raw feature column is embedded into the design matrix.
/// Public (and serializable) so serving artifacts can store the fitted
/// encodings and rebuild an identical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Encoding {
    /// Standardized numeric column: `(value - mean) / std`.
    Numeric {
        /// Mean of the finite training values.
        mean: f64,
        /// Standard deviation of the finite training values (floored).
        std: f64,
    },
    /// One-hot over `cardinality` categories.
    OneHot {
        /// Number of categories (one design column each).
        cardinality: usize,
    },
}

/// A fitted linear model.
#[derive(Debug, Clone)]
pub struct LinearModel {
    encodings: Vec<Encoding>,
    /// Weight matrix: `weights[g]` has one weight per design column plus a
    /// trailing intercept; one group for regression/binary, `k` for
    /// multiclass one-vs-rest.
    weights: Vec<Vec<f64>>,
    task: Task,
    /// Label standardization for regression targets.
    y_mean: f64,
    y_std: f64,
}

impl Linear {
    /// Fits a linear model. Accepts anything convertible into a
    /// [`DatasetView`] (`&Dataset`, `&DatasetView`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for non-positive `C` or unusable data.
    pub fn fit(
        data: impl Into<DatasetView>,
        params: &LinearParams,
        seed: u64,
    ) -> Result<LinearModel, FitError> {
        Self::fit_bounded(data, params, seed, None)
    }

    /// Like [`Linear::fit`] but stops IRLS refinement when `budget`
    /// elapses. The seed is accepted for interface uniformity; the solver
    /// is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for non-positive `C` or unusable data.
    pub fn fit_bounded(
        data: impl Into<DatasetView>,
        params: &LinearParams,
        _seed: u64,
        budget: Option<Duration>,
    ) -> Result<LinearModel, FitError> {
        let data: DatasetView = data.into();
        if params.c <= 0.0 || params.c.is_nan() {
            return Err(FitError::bad_param("c", params.c, "must be > 0"));
        }
        if params.max_iter == 0 {
            return Err(FitError::bad_param("max_iter", 0.0, "must be >= 1"));
        }
        let start = Instant::now();
        let encodings = build_encodings(&data);
        let x = design_matrix(&data, &encodings);
        let d = x.n_cols; // includes intercept
        let n = data.n_rows();
        let lambda = 1.0 / (params.c * n as f64);

        match data.task() {
            Task::Regression => {
                let y = data.gather_target();
                let y_mean = y.iter().sum::<f64>() / n as f64;
                let y_std = {
                    let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
                    var.sqrt().max(1e-12)
                };
                let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
                let w = ridge_solve(&x, &ys, lambda)?;
                Ok(LinearModel {
                    encodings,
                    weights: vec![w],
                    task: Task::Regression,
                    y_mean,
                    y_std,
                })
            }
            Task::Binary => {
                let targets: Vec<f64> = data.gather_target();
                let w = irls(&x, &targets, lambda, params.max_iter, budget, start)?;
                Ok(LinearModel {
                    encodings,
                    weights: vec![w],
                    task: Task::Binary,
                    y_mean: 0.0,
                    y_std: 1.0,
                })
            }
            Task::MultiClass(k) => {
                let mut weights = Vec::with_capacity(k);
                let y = data.gather_target();
                for c in 0..k {
                    let targets: Vec<f64> = y.iter().map(|&y| f64::from(y as usize == c)).collect();
                    // A class can be absent from a subsample; a zero model
                    // (uniform probability) is the sensible fallback.
                    let w = if targets.iter().all(|&t| t == 0.0) {
                        vec![0.0; d]
                    } else {
                        irls(&x, &targets, lambda, params.max_iter, budget, start)?
                    };
                    weights.push(w);
                }
                Ok(LinearModel {
                    encodings,
                    weights,
                    task: Task::MultiClass(k),
                    y_mean: 0.0,
                    y_std: 1.0,
                })
            }
        }
    }
}

impl LinearModel {
    /// Reassembles a model from its fitted parts (e.g. a deserialized
    /// serving artifact). A model rebuilt from the accessors of an
    /// existing model predicts identically.
    pub fn from_parts(
        encodings: Vec<Encoding>,
        weights: Vec<Vec<f64>>,
        task: Task,
        y_mean: f64,
        y_std: f64,
    ) -> LinearModel {
        LinearModel {
            encodings,
            weights,
            task,
            y_mean,
            y_std,
        }
    }

    /// The fitted per-feature encodings.
    pub fn encodings(&self) -> &[Encoding] {
        &self.encodings
    }

    /// The fitted weight groups (design columns + intercept each).
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// The task the model was trained for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Regression target mean (0 for classification).
    pub fn y_mean(&self) -> f64 {
        self.y_mean
    }

    /// Regression target standard deviation (1 for classification).
    pub fn y_std(&self) -> f64 {
        self.y_std
    }

    /// Predicts class probabilities (classification) or values
    /// (regression).
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different feature count than training data.
    pub fn predict(&self, data: impl Into<DatasetView>) -> Pred {
        let data: DatasetView = data.into();
        assert_eq!(
            data.n_features(),
            self.encodings.len(),
            "predicting with a different feature count"
        );
        let x = design_matrix(&data, &self.encodings);
        self.predict_design(&x)
    }

    /// Predicts from raw feature columns (`columns[j][i]` is the value of
    /// feature `j` at row `i`), bypassing dataset construction. The design
    /// matrix is built by the same code over the same values in the same
    /// order as [`LinearModel::predict`], so the output is bit-identical
    /// to predicting on a dataset holding these columns.
    ///
    /// # Panics
    ///
    /// Panics if `columns` has a different feature count than training
    /// data.
    pub fn predict_columns(&self, columns: &[Vec<f64>], n_rows: usize) -> Pred {
        assert_eq!(
            columns.len(),
            self.encodings.len(),
            "predicting with a different feature count"
        );
        let x = design_from(n_rows, &self.encodings, |i, j| columns[j][i]);
        self.predict_design(&x)
    }

    fn predict_design(&self, x: &Design) -> Pred {
        match self.task {
            Task::Regression => {
                let margins = x.matvec(&self.weights[0]);
                Pred::from_values(
                    margins
                        .into_iter()
                        .map(|m| m * self.y_std + self.y_mean)
                        .collect(),
                )
            }
            Task::Binary => {
                let margins = x.matvec(&self.weights[0]);
                Pred::binary_probs(margins.into_iter().map(sigmoid).collect())
            }
            Task::MultiClass(k) => {
                let n = x.n_rows;
                let mut p = vec![0.0; n * k];
                for (c, w) in self.weights.iter().enumerate() {
                    for (i, m) in x.matvec(w).into_iter().enumerate() {
                        p[i * k + c] = sigmoid(m);
                    }
                }
                // One-vs-rest: normalize the per-class sigmoids.
                for row in p.chunks_exact_mut(k) {
                    let total: f64 = row.iter().sum();
                    if total > 0.0 {
                        for v in row.iter_mut() {
                            *v /= total;
                        }
                    } else {
                        for v in row.iter_mut() {
                            *v = 1.0 / k as f64;
                        }
                    }
                }
                Pred::Probs { n_classes: k, p }
            }
        }
    }

    /// Number of design-matrix columns (including intercept).
    pub fn n_weights(&self) -> usize {
        self.weights[0].len()
    }
}

fn build_encodings(data: &DatasetView) -> Vec<Encoding> {
    (0..data.n_features())
        .map(|j| match data.feature_kind(j) {
            FeatureKind::Categorical { cardinality } if cardinality <= 64 => {
                Encoding::OneHot { cardinality }
            }
            _ => {
                let finite: Vec<f64> = data.column_values(j).filter(|v| !v.is_nan()).collect();
                if finite.is_empty() {
                    Encoding::Numeric {
                        mean: 0.0,
                        std: 1.0,
                    }
                } else {
                    let mean = finite.iter().sum::<f64>() / finite.len() as f64;
                    let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                        / finite.len() as f64;
                    Encoding::Numeric {
                        mean,
                        std: var.sqrt().max(1e-12),
                    }
                }
            }
        })
        .collect()
}

/// Row-major dense design matrix with a trailing all-ones intercept column.
struct Design {
    rows: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl Design {
    fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.n_cols..(i + 1) * self.n_cols]
    }

    fn matvec(&self, w: &[f64]) -> Vec<f64> {
        (0..self.n_rows)
            .map(|i| self.row(i).iter().zip(w).map(|(a, b)| a * b).sum())
            .collect()
    }
}

fn design_matrix(data: &DatasetView, encodings: &[Encoding]) -> Design {
    design_from(data.n_rows(), encodings, |i, j| data.value(i, j))
}

/// Builds the design matrix from any value source; the view-based and
/// column-based predict paths share this exact construction so their
/// outputs agree bit-for-bit.
fn design_from(n: usize, encodings: &[Encoding], value: impl Fn(usize, usize) -> f64) -> Design {
    let n_cols: usize = encodings
        .iter()
        .map(|e| match e {
            Encoding::Numeric { .. } => 1,
            Encoding::OneHot { cardinality } => *cardinality,
        })
        .sum::<usize>()
        + 1;
    let mut rows = vec![0.0; n * n_cols];
    for i in 0..n {
        let out = &mut rows[i * n_cols..(i + 1) * n_cols];
        let mut at = 0usize;
        for (j, enc) in encodings.iter().enumerate() {
            let v = value(i, j);
            match enc {
                Encoding::Numeric { mean, std } => {
                    out[at] = if v.is_nan() { 0.0 } else { (v - mean) / std };
                    at += 1;
                }
                Encoding::OneHot { cardinality } => {
                    if !v.is_nan() {
                        let c = v as usize;
                        if c < *cardinality {
                            out[at + c] = 1.0;
                        }
                    }
                    at += cardinality;
                }
            }
        }
        out[n_cols - 1] = 1.0; // intercept
    }
    Design {
        rows,
        n_rows: n,
        n_cols,
    }
}

/// Solves `A w = b` for symmetric positive-definite `A` (row-major, d x d)
/// by Cholesky decomposition, adding jitter on near-singularity.
fn cholesky_solve(mut a: Vec<f64>, mut b: Vec<f64>, d: usize) -> Result<Vec<f64>, FitError> {
    // Add escalating jitter until the factorization succeeds.
    for attempt in 0..6 {
        let jitter = if attempt == 0 {
            0.0
        } else {
            1e-10 * 10f64.powi(attempt)
        };
        let mut l = a.clone();
        if jitter > 0.0 {
            for i in 0..d {
                l[i * d + i] += jitter;
            }
        }
        if let Some(l) = try_cholesky(&mut l, d) {
            // Forward solve L z = b, back solve L^T w = z.
            let mut z = b.clone();
            for i in 0..d {
                let mut s = z[i];
                for k in 0..i {
                    s -= l[i * d + k] * z[k];
                }
                z[i] = s / l[i * d + i];
            }
            let mut w = z;
            for i in (0..d).rev() {
                let mut s = w[i];
                for k in i + 1..d {
                    s -= l[k * d + i] * w[k];
                }
                w[i] = s / l[i * d + i];
            }
            return Ok(w);
        }
    }
    // Should be unreachable with jitter; degrade to a zero model.
    a.clear();
    b.clear();
    Err(FitError::BadData(
        "normal equations not positive definite even with jitter".into(),
    ))
}

/// In-place lower Cholesky; returns `None` if not positive definite.
fn try_cholesky(a: &mut [f64], d: usize) -> Option<&[f64]> {
    for i in 0..d {
        for j in 0..=i {
            let mut s = a[i * d + j];
            for k in 0..j {
                s -= a[i * d + k] * a[j * d + k];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                a[i * d + j] = s.sqrt();
            } else {
                a[i * d + j] = s / a[j * d + j];
            }
        }
    }
    Some(a)
}

/// Ridge regression by normal equations; the intercept column is not
/// regularized.
fn ridge_solve(x: &Design, y: &[f64], lambda: f64) -> Result<Vec<f64>, FitError> {
    let d = x.n_cols;
    let n = x.n_rows;
    let mut a = vec![0.0; d * d];
    let mut b = vec![0.0; d];
    for (i, &yi) in y.iter().enumerate().take(n) {
        let row = x.row(i);
        for p in 0..d {
            b[p] += row[p] * yi;
            for q in 0..=p {
                a[p * d + q] += row[p] * row[q];
            }
        }
    }
    // Symmetrize and regularize (skip the intercept at index d-1).
    for p in 0..d {
        for q in p + 1..d {
            a[p * d + q] = a[q * d + p];
        }
    }
    let reg = lambda * n as f64;
    for p in 0..d - 1 {
        a[p * d + p] += reg;
    }
    cholesky_solve(a, b, d)
}

/// IRLS (Newton) for L2-regularized logistic regression on 0/1 targets.
fn irls(
    x: &Design,
    targets: &[f64],
    lambda: f64,
    max_iter: usize,
    budget: Option<Duration>,
    start: Instant,
) -> Result<Vec<f64>, FitError> {
    let d = x.n_cols;
    let n = x.n_rows;
    let reg = lambda * n as f64;
    let mut w = vec![0.0; d];
    for iter in 0..max_iter {
        if iter > 0 {
            if let Some(b) = budget {
                if start.elapsed() >= b {
                    break;
                }
            }
        }
        let margins = x.matvec(&w);
        // Gradient and Hessian of the penalized log-loss.
        let mut grad = vec![0.0; d];
        let mut hess = vec![0.0; d * d];
        for i in 0..n {
            let p = sigmoid(margins[i]);
            let g = p - targets[i];
            let h = (p * (1.0 - p)).max(1e-9);
            let row = x.row(i);
            for a in 0..d {
                grad[a] += g * row[a];
                let ha = h * row[a];
                for b in 0..=a {
                    hess[a * d + b] += ha * row[b];
                }
            }
        }
        for a in 0..d {
            for b in a + 1..d {
                hess[a * d + b] = hess[b * d + a];
            }
        }
        for a in 0..d - 1 {
            grad[a] += reg * w[a];
            hess[a * d + a] += reg;
        }
        let step = cholesky_solve(hess, grad.clone(), d)?;
        let mut max_change = 0.0f64;
        for a in 0..d {
            w[a] -= step[a];
            max_change = max_change.max(step[a].abs());
        }
        if max_change < 1e-8 {
            break;
        }
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::Dataset;
    use flaml_metrics::Metric;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_binary(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let y: Vec<f64> = x0
            .iter()
            .zip(&x1)
            .map(|(&a, &b)| f64::from(2.0 * a - b + 0.3 > 0.0))
            .collect();
        Dataset::new("lin", Task::Binary, vec![x0, x1], y).unwrap()
    }

    #[test]
    fn logistic_separates_linear_data() {
        let d = linear_binary(400, 0);
        let m = Linear::fit(&d, &LinearParams::default(), 0).unwrap();
        let loss = Metric::Accuracy.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.02, "train error {loss}");
    }

    #[test]
    fn ridge_recovers_linear_function() {
        let n = 300;
        let mut rng = StdRng::seed_from_u64(1);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = x0
            .iter()
            .zip(&x1)
            .map(|(&a, &b)| 3.0 * a - 2.0 * b + 1.0)
            .collect();
        let d = Dataset::new("rr", Task::Regression, vec![x0, x1], y).unwrap();
        let m = Linear::fit(
            &d,
            &LinearParams {
                c: 1e6,
                ..LinearParams::default()
            },
            0,
        )
        .unwrap();
        let loss = Metric::R2.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 1e-6, "1 - r2 = {loss}");
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let d = linear_binary(200, 2);
        let free = Linear::fit(
            &d,
            &LinearParams {
                c: 1e4,
                ..LinearParams::default()
            },
            0,
        )
        .unwrap();
        let tight = Linear::fit(
            &d,
            &LinearParams {
                c: 1e-3,
                ..LinearParams::default()
            },
            0,
        )
        .unwrap();
        let norm = |m: &LinearModel| {
            m.weights[0][..m.weights[0].len() - 1]
                .iter()
                .map(|w| w * w)
                .sum::<f64>()
        };
        assert!(norm(&tight) < norm(&free) / 10.0);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let n = 300;
        let mut rng = StdRng::seed_from_u64(3);
        let mut x0 = Vec::new();
        let mut x1 = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 3;
            let (cx, cy) = [(0.0, 0.0), (3.0, 0.0), (0.0, 3.0)][c];
            x0.push(cx + rng.gen::<f64>() - 0.5);
            x1.push(cy + rng.gen::<f64>() - 0.5);
            y.push(c as f64);
        }
        let d = Dataset::new("3c", Task::MultiClass(3), vec![x0, x1], y).unwrap();
        let m = Linear::fit(&d, &LinearParams::default(), 0).unwrap();
        let loss = Metric::Accuracy.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.02, "train error {loss}");
        let pred = m.predict(&d);
        let (_, p) = pred.probs().unwrap();
        for row in p.chunks_exact(3) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn one_hot_encoding_used_for_categoricals() {
        let n = 120;
        let cat: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let y: Vec<f64> = cat.iter().map(|&c| f64::from(c == 1.0)).collect();
        let d = Dataset::with_kinds(
            "cat",
            Task::Binary,
            vec![cat],
            vec![FeatureKind::Categorical { cardinality: 3 }],
            y,
        )
        .unwrap();
        let m = Linear::fit(&d, &LinearParams::default(), 0).unwrap();
        // A purely numeric treatment cannot separate class 1 (middle
        // category); one-hot can.
        let loss = Metric::Accuracy.loss(&m.predict(&d), d.target()).unwrap();
        assert!(loss < 0.01, "train error {loss}");
        assert_eq!(m.n_weights(), 4, "3 one-hot columns + intercept");
    }

    #[test]
    fn nan_features_are_imputed() {
        let mut x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        x[3] = f64::NAN;
        x[77] = f64::NAN;
        let y: Vec<f64> = (0..100).map(|i| f64::from(i >= 50)).collect();
        let d = Dataset::new("nan", Task::Binary, vec![x], y).unwrap();
        let m = Linear::fit(&d, &LinearParams::default(), 0).unwrap();
        for p in m.predict(&d).positive_scores().unwrap() {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn validates_params() {
        let d = linear_binary(50, 4);
        assert!(Linear::fit(
            &d,
            &LinearParams {
                c: 0.0,
                ..LinearParams::default()
            },
            0
        )
        .is_err());
        assert!(Linear::fit(
            &d,
            &LinearParams {
                max_iter: 0,
                ..LinearParams::default()
            },
            0
        )
        .is_err());
    }
}
