//! Property-based tests of the ML layer: binning invariants, probability
//! normalization, and prediction-bound guarantees under arbitrary data.

use flaml_data::{Dataset, Task};
use flaml_learners::{BinMapper, Forest, ForestParams, Gbdt, GbdtParams, Linear, LinearParams};
use proptest::prelude::*;

fn arb_binary_dataset() -> impl Strategy<Value = Dataset> {
    (20usize..120).prop_flat_map(|n| {
        (
            proptest::collection::vec(-100f64..100.0, n),
            proptest::collection::vec(-1f64..1.0, n),
            proptest::collection::vec(0u8..2, n),
        )
            .prop_filter("both classes", |(_, _, y)| y.contains(&0) && y.contains(&1))
            .prop_map(|(c0, c1, y)| {
                Dataset::new(
                    "p",
                    Task::Binary,
                    vec![c0, c1],
                    y.into_iter().map(f64::from).collect(),
                )
                .unwrap()
            })
    })
}

fn arb_regression_dataset() -> impl Strategy<Value = Dataset> {
    (20usize..120).prop_flat_map(|n| {
        (
            proptest::collection::vec(-100f64..100.0, n),
            proptest::collection::vec(-50f64..50.0, n),
        )
            .prop_map(|(c0, y)| Dataset::new("p", Task::Regression, vec![c0], y).unwrap())
    })
}

/// A dataset of any task kind whose features mix ordinary values with
/// NaN (missing) and subnormal magnitudes — the awkward inputs the
/// binning layer must absorb without breaking continuation exactness.
fn arb_messy_dataset() -> impl Strategy<Value = Dataset> {
    // The stub's `prop_oneof!` draws arms uniformly; repeating the
    // numeric arm biases features toward ordinary values.
    let feature = |n: usize| {
        proptest::collection::vec(
            prop_oneof![
                -100f64..100.0,
                -100f64..100.0,
                -100f64..100.0,
                -100f64..100.0,
                -100f64..100.0,
                -100f64..100.0,
                Just(f64::NAN),
                Just(2.5e-310f64),
                Just(-4.0e-320f64),
            ],
            n,
        )
    };
    (0usize..3, 24usize..90).prop_flat_map(move |(kind, n)| {
        let labels = match kind {
            0 => proptest::collection::vec(0u8..2, n)
                .prop_filter("both classes", |y| y.contains(&0) && y.contains(&1))
                .boxed(),
            1 => proptest::collection::vec(0u8..3, n)
                .prop_filter("all classes", |y| {
                    y.contains(&0) && y.contains(&1) && y.contains(&2)
                })
                .boxed(),
            _ => proptest::collection::vec(0u8..200, n).boxed(),
        };
        (feature(n), feature(n), labels).prop_map(move |(c0, c1, y)| {
            let task = match kind {
                0 => Task::Binary,
                1 => Task::MultiClass(3),
                _ => Task::Regression,
            };
            let y = y.into_iter().map(f64::from).collect();
            Dataset::new("messy", task, vec![c0, c1], y).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn binning_is_monotone_and_bounded(
        col in proptest::collection::vec(-1e6f64..1e6, 2..300),
        max_bin in 2usize..64,
    ) {
        let n = col.len();
        let data = Dataset::new(
            "b",
            Task::Regression,
            vec![col.clone()],
            (0..n).map(|i| i as f64).collect(),
        ).unwrap();
        let mapper = BinMapper::fit(&data, max_bin);
        prop_assert!(mapper.n_bins(0) <= max_bin + 2);
        let mut pairs: Vec<(f64, u32)> = col.iter().map(|&v| (v, mapper.bin(0, v))).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn gbdt_probabilities_are_normalized(data in arb_binary_dataset(), seed in 0u64..20) {
        let params = GbdtParams { n_trees: 5, ..GbdtParams::default() };
        let model = Gbdt::fit(&data, &params, seed).unwrap();
        let pred = model.predict(&data);
        let (_, p) = pred.probs().unwrap();
        for row in p.chunks_exact(2) {
            prop_assert!((row[0] + row[1] - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn forest_probabilities_are_normalized(data in arb_binary_dataset(), seed in 0u64..20) {
        let params = ForestParams { n_trees: 5, ..ForestParams::default() };
        let model = Forest::fit(&data, &params, seed).unwrap();
        let pred = model.predict(&data);
        let (_, p) = pred.probs().unwrap();
        for row in p.chunks_exact(2) {
            prop_assert!((row[0] + row[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_regression_stays_in_label_range(data in arb_regression_dataset(), seed in 0u64..20) {
        // Averaged leaf means can never leave the label range.
        let params = ForestParams { n_trees: 5, ..ForestParams::default() };
        let model = Forest::fit(&data, &params, seed).unwrap();
        let lo = data.target().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.target().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in model.predict(&data).values().unwrap() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{} outside [{}, {}]", v, lo, hi);
        }
    }

    #[test]
    fn linear_predictions_are_finite(data in arb_binary_dataset()) {
        let model = Linear::fit(&data, &LinearParams::default(), 0).unwrap();
        for p in model.predict(&data).positive_scores().unwrap() {
            prop_assert!(p.is_finite());
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gbdt_deterministic_for_same_seed(data in arb_binary_dataset(), seed in 0u64..10) {
        let params = GbdtParams { n_trees: 3, subsample: 0.8, ..GbdtParams::default() };
        let a = Gbdt::fit(&data, &params, seed).unwrap().raw_scores(&data);
        let b = Gbdt::fit(&data, &params, seed).unwrap().raw_scores(&data);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gbdt_continuation_is_bit_exact(
        data in arb_messy_dataset(),
        n in 2usize..9,
        ksel in 0usize..4,
        seed in 0u64..5,
    ) {
        // fit(n) == fit(k) + fit_continue(n - k), bit for bit, for every
        // split point — including the k ∈ {0, 1, n-1} edges — across
        // binary/multiclass/regression objectives and features containing
        // NaN and subnormal values.
        let k = [0, 1, n - 1, n / 2][ksel];
        let params = GbdtParams { n_trees: n, ..GbdtParams::default() };
        let full = Gbdt::fit(&data, &params, seed).unwrap();

        let mut state = Gbdt::fit_start(&data, &params, seed, None).unwrap();
        Gbdt::fit_continue(&mut state, k);
        prop_assert_eq!(state.rounds_done(), k);
        Gbdt::fit_continue(&mut state, n - k);
        prop_assert_eq!(state.rounds_done(), n);
        let staged = state.model();

        let full_bits: Vec<u64> =
            full.raw_scores(&data).iter().map(|v| v.to_bits()).collect();
        let staged_bits: Vec<u64> =
            staged.raw_scores(&data).iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(full_bits, staged_bits, "k = {}", k);

        // A backward snapshot at k rounds equals the direct k-round fit.
        if k >= 1 {
            let short = Gbdt::fit(
                &data,
                &GbdtParams { n_trees: k, ..params },
                seed,
            ).unwrap();
            let short_bits: Vec<u64> =
                short.raw_scores(&data).iter().map(|v| v.to_bits()).collect();
            let snap_bits: Vec<u64> = state
                .model_at(k)
                .raw_scores(&data)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(short_bits, snap_bits, "backward snapshot at k = {}", k);
        }
    }
}
