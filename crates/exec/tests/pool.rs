//! Behavioural tests of the execution runtime: ordering, panic
//! isolation, cooperative deadlines, queue injection, and telemetry.

use flaml_exec::{event_channel, ExecPool, Job, JobStatus, LifoQueue, Telemetry, TrialEventKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

#[test]
fn results_come_back_in_submission_order() {
    for workers in [1, 2, 4, 8] {
        let pool = ExecPool::new(workers);
        let jobs = (0..32)
            .map(|i| {
                Job::new(move |_| {
                    // Stagger finish times so completion order differs
                    // from submission order under real parallelism.
                    std::thread::sleep(Duration::from_millis((32 - i) % 7));
                    i
                })
            })
            .collect();
        let results = pool.run_batch(jobs, None);
        let values: Vec<u64> = results
            .into_iter()
            .filter_map(|r| r.status.into_value())
            .collect();
        assert_eq!(values, (0..32).collect::<Vec<u64>>(), "workers={workers}");
    }
}

#[test]
fn single_worker_pool_runs_inline_in_submission_order() {
    // With one worker, jobs run on the caller's thread: side effects
    // happen in exact submission order with no interleaving.
    let pool = ExecPool::sequential();
    assert!(pool.is_sequential());
    let caller = std::thread::current().id();
    let order = std::sync::Mutex::new(Vec::new());
    let jobs = (0..8)
        .map(|i| {
            let order = &order;
            Job::new(move |_| {
                assert_eq!(std::thread::current().id(), caller, "inline execution");
                order.lock().unwrap().push(i);
                i
            })
        })
        .collect();
    let results = pool.run_batch(jobs, None);
    assert_eq!(order.into_inner().unwrap(), (0..8).collect::<Vec<u64>>());
    assert!(results.iter().all(|r| !r.status.panicked()));
}

#[test]
fn panicking_job_is_isolated_and_reported() {
    let pool = ExecPool::new(4);
    let jobs = (0..10)
        .map(|i| {
            Job::new(move |_| {
                if i == 3 {
                    panic!("trial {i} exploded");
                }
                i
            })
            .label(format!("job-{i}"))
        })
        .collect();
    let results = pool.run_batch(jobs, None);
    assert_eq!(results.len(), 10);
    for (i, r) in results.iter().enumerate() {
        if i == 3 {
            match &r.status {
                JobStatus::Panicked(msg) => assert!(msg.contains("exploded"), "{msg}"),
                other => panic!("expected panic status, got {other:?}"),
            }
        } else {
            assert_eq!(r.status.value(), Some(&(i as u64)));
        }
    }
}

#[test]
fn deadline_is_cooperative_and_flags_timeout() {
    let pool = ExecPool::sequential();
    let jobs = vec![
        // Ignores its deadline and overruns: classified TimedOut.
        Job::new(|_| {
            std::thread::sleep(Duration::from_millis(20));
            1u32
        })
        .deadline(Some(Duration::from_millis(1))),
        // Observes its deadline and stops early: Finished.
        Job::new(|ctx| {
            let mut n = 0u32;
            while !ctx.expired() && n < 3 {
                std::thread::sleep(Duration::from_millis(1));
                n += 1;
            }
            n
        })
        .deadline(Some(Duration::from_millis(500))),
        // No deadline: never times out.
        Job::new(|ctx| {
            assert!(ctx.remaining().is_none());
            assert!(!ctx.expired());
            7u32
        }),
    ];
    let results = pool.run_batch(jobs, None);
    assert!(results[0].status.timed_out());
    assert_eq!(results[0].status.value(), Some(&1));
    assert!(matches!(results[1].status, JobStatus::Finished(3)));
    assert!(matches!(results[2].status, JobStatus::Finished(7)));
}

#[test]
fn remaining_counts_down_from_deadline() {
    let pool = ExecPool::sequential();
    let jobs = vec![Job::new(|ctx: &flaml_exec::JobCtx| {
        let before = ctx.remaining().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let after = ctx.remaining().unwrap();
        (before, after)
    })
    .deadline(Some(Duration::from_secs(10)))];
    let (before, after) = pool.run_batch(jobs, None)[0]
        .status
        .value()
        .copied()
        .unwrap();
    assert!(after < before);
    assert!(before <= Duration::from_secs(10));
}

#[test]
fn injected_lifo_queue_changes_dispatch_not_results() {
    let pool = ExecPool::new(2);
    let started = AtomicUsize::new(0);
    let jobs: Vec<Job<'_, usize>> = (0..16)
        .map(|i| {
            let started = &started;
            Job::new(move |_| {
                started.fetch_add(1, Ordering::SeqCst);
                i
            })
        })
        .collect();
    let results = pool.run_batch_with(LifoQueue::new(), jobs, None);
    assert_eq!(started.load(Ordering::SeqCst), 16);
    let values: Vec<usize> = results
        .into_iter()
        .filter_map(|r| r.status.into_value())
        .collect();
    assert_eq!(values, (0..16).collect::<Vec<usize>>());
}

#[test]
fn events_cover_every_job_with_matching_terminals() {
    for workers in [1, 4] {
        let pool = ExecPool::new(workers);
        let (sink, rx) = event_channel();
        let jobs = (0..12)
            .map(|i| {
                Job::new(move |_| {
                    if i % 4 == 0 {
                        panic!("boom");
                    }
                    i
                })
                .label(format!("cell-{i}"))
            })
            .collect();
        let results = pool.run_batch(jobs, Some(&sink));
        drop(sink);
        let telemetry = Telemetry::new().drain(&rx);
        assert_eq!(telemetry.started, 12, "workers={workers}");
        assert_eq!(telemetry.total_terminal(), 12, "workers={workers}");
        assert_eq!(telemetry.panicked, 3, "workers={workers}");
        assert_eq!(telemetry.finished, 9, "workers={workers}");
        let n_panicked = results.iter().filter(|r| r.status.panicked()).count();
        assert_eq!(n_panicked, 3);
    }
}

#[test]
fn event_metadata_echoes_job_meta() {
    let pool = ExecPool::sequential();
    let (sink, rx) = event_channel();
    let meta = flaml_exec::JobMeta {
        label: "bin/flaml @ 2s".into(),
        learner: "lightgbm".into(),
        config: "tree_num=4".into(),
        sample_size: 500,
        ..Default::default()
    };
    let jobs = vec![Job::new(|_| 1u8).meta(meta)];
    pool.run_batch(jobs, Some(&sink));
    drop(sink);
    let events: Vec<_> = rx.iter().collect();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].kind, TrialEventKind::Started);
    assert_eq!(events[1].kind, TrialEventKind::Finished);
    for ev in &events {
        assert_eq!(ev.label, "bin/flaml @ 2s");
        assert_eq!(ev.learner, "lightgbm");
        assert_eq!(ev.config, "tree_num=4");
        assert_eq!(ev.sample_size, 500);
    }
    assert!(events[1].wall_secs.is_some());
}

#[test]
fn pool_parallelism_overlaps_work() {
    // Two workers on two sleeping jobs should take roughly one sleep,
    // not two. Generous bounds keep this robust on loaded CI hosts.
    let pool = ExecPool::new(2);
    let t0 = std::time::Instant::now();
    let jobs = (0..2)
        .map(|_| {
            Job::new(|_| {
                std::thread::sleep(Duration::from_millis(120));
            })
        })
        .collect();
    pool.run_batch::<()>(jobs, None);
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(220),
        "expected overlap, took {elapsed:?}"
    );
}

#[test]
fn zero_requested_workers_clamps_to_one() {
    let pool = ExecPool::new(0);
    assert_eq!(pool.workers(), 1);
    let results = pool.run_batch(vec![Job::new(|_| 42u8)], None);
    assert_eq!(results[0].status.value(), Some(&42));
}

#[test]
fn empty_batch_is_fine() {
    let pool = ExecPool::new(4);
    let results: Vec<flaml_exec::JobResult<u8>> = pool.run_batch(Vec::new(), None);
    assert!(results.is_empty());
}

#[test]
fn jobs_may_borrow_caller_state() {
    // The 'env lifetime: jobs read a stack-allocated dataset without Arc.
    let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    let pool = ExecPool::new(4);
    let jobs = (0..8)
        .map(|chunk: usize| {
            let data = &data;
            Job::new(move |_| data[chunk * 125..(chunk + 1) * 125].iter().sum::<f64>())
        })
        .collect();
    let results = pool.run_batch(jobs, None);
    let total: f64 = results.iter().filter_map(|r| r.status.value()).sum();
    assert_eq!(total, data.iter().sum::<f64>());
}
