//! The worker pool: scoped threads draining an injectable ticket queue.
//!
//! Design points:
//!
//! - **Scoped threads.** Workers are spawned with [`std::thread::scope`]
//!   per batch, so jobs may borrow the caller's data (datasets, spaces)
//!   without `'static` bounds or reference counting.
//! - **Deterministic results.** Whatever the dispatch order, results are
//!   returned in *submission* order. A pool with one worker (or one job)
//!   executes inline on the caller's thread in submission order, which is
//!   the determinism contract the AutoML controller builds on.
//! - **Panic isolation.** A panicking job is caught on its worker and
//!   reported as [`JobStatus::Panicked`]; the worker keeps draining the
//!   queue and the process survives.
//! - **Cooperative deadlines.** Jobs observe their deadline through
//!   [`crate::JobCtx`]; the pool never kills a thread. Jobs returning
//!   past their deadline are classified [`JobStatus::TimedOut`].

use crate::event::{EventSink, TrialEvent, TrialEventKind};
use crate::job::{execute, Job, JobMeta, JobResult, JobStatus};
use crate::queue::{FifoQueue, JobQueue};
use std::sync::Mutex;

/// A fixed-width worker pool. Creating one is free — threads are spawned
/// per batch and joined before [`ExecPool::run_batch`] returns.
#[derive(Debug, Clone, Copy)]
pub struct ExecPool {
    workers: usize,
}

impl ExecPool {
    /// A pool with `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> ExecPool {
        ExecPool {
            workers: workers.max(1),
        }
    }

    /// The single-worker pool: executes every batch inline, in
    /// submission order, on the caller's thread.
    pub fn sequential() -> ExecPool {
        ExecPool::new(1)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether batches run inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.workers == 1
    }

    /// Runs a batch under FIFO dispatch. See [`ExecPool::run_batch_with`].
    pub fn run_batch<T: Send>(
        &self,
        jobs: Vec<Job<'_, T>>,
        events: Option<&EventSink>,
    ) -> Vec<JobResult<T>> {
        self.run_batch_with(FifoQueue::new(), jobs, events)
    }

    /// Runs every job to completion and returns their results in
    /// submission order. `queue` decides dispatch order only. When a
    /// sink is given, the pool emits a `Started` event as each job
    /// begins and a terminal event (`Finished` / `TimedOut` /
    /// `Panicked`) as it ends; terminal events carry wall time and the
    /// panic message but no error/cost, which only the caller knows.
    pub fn run_batch_with<Q: JobQueue, T: Send>(
        &self,
        mut queue: Q,
        jobs: Vec<Job<'_, T>>,
        events: Option<&EventSink>,
    ) -> Vec<JobResult<T>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        if self.workers == 1 || jobs.len() == 1 {
            // Inline fast path: submission order, caller's thread. This
            // is byte-identical to a plain sequential loop (plus panic
            // isolation), independent of the injected queue.
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| run_one(stamp(job, i), events))
                .collect();
        }

        let n = jobs.len();
        let slots: Vec<Mutex<Option<Job<'_, T>>>> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| Mutex::new(Some(stamp(job, i))))
            .collect();
        let results: Vec<Mutex<Option<JobResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        for ticket in 0..n {
            queue.push(ticket);
        }
        let queue = Mutex::new(queue);
        let workers = self.workers.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let ticket = queue.lock().expect("queue lock").pop();
                    let Some(i) = ticket else { break };
                    let job = slots[i]
                        .lock()
                        .expect("slot lock")
                        .take()
                        .expect("each ticket is issued once");
                    let result = run_one(job, events);
                    *results[i].lock().expect("result lock") = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result lock")
                    .expect("every job ran to completion")
            })
            .collect()
    }
}

/// Stamps the submission index into the job's metadata.
fn stamp<T>(mut job: Job<'_, T>, index: usize) -> Job<'_, T> {
    job.meta.id = index as u64;
    job
}

/// Executes one job with optional event emission.
fn run_one<'env, T>(job: Job<'env, T>, events: Option<&EventSink>) -> JobResult<T> {
    if let Some(sink) = events {
        sink.emit(meta_event(TrialEventKind::Started, &job.meta));
    }
    let result = execute(job);
    if let Some(sink) = events {
        let kind = match &result.status {
            JobStatus::Finished(_) => TrialEventKind::Finished,
            JobStatus::TimedOut(_) => TrialEventKind::TimedOut,
            JobStatus::Panicked(_) => TrialEventKind::Panicked,
        };
        let mut ev = meta_event(kind, &result.meta);
        ev.wall_secs = Some(result.wall_secs);
        if let JobStatus::Panicked(msg) = &result.status {
            ev.message = Some(msg.clone());
        }
        sink.emit(ev);
    }
    result
}

/// Builds an event carrying a job's metadata.
fn meta_event(kind: TrialEventKind, meta: &JobMeta) -> TrialEvent {
    let mut ev = TrialEvent::new(kind);
    ev.job_id = meta.id;
    ev.label = meta.label.clone();
    ev.learner = meta.learner.clone();
    ev.config = meta.config.clone();
    ev.sample_size = meta.sample_size;
    ev
}
