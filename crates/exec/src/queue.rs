//! Injectable job queues: the scheduling policy of the pool.
//!
//! The pool stores submitted jobs in slots and pushes their *tickets*
//! (submission indices) through a [`JobQueue`]. Workers pop tickets; the
//! queue's ordering is therefore the dispatch order. Results are always
//! returned in submission order regardless of the queue, so the policy
//! affects wall-clock behaviour only — never the shape of the output.

use std::collections::VecDeque;

/// Orders pending job tickets for dispatch.
pub trait JobQueue: Send {
    /// Enqueues a ticket.
    fn push(&mut self, ticket: usize);
    /// Dequeues the next ticket to run, or `None` when empty.
    fn pop(&mut self) -> Option<usize>;
    /// Number of pending tickets.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// First-in first-out dispatch: jobs start in submission order. The
/// default, and the policy under which a single-worker pool reproduces
/// the sequential trace exactly.
#[derive(Debug, Default)]
pub struct FifoQueue(VecDeque<usize>);

impl FifoQueue {
    /// An empty FIFO queue.
    pub fn new() -> FifoQueue {
        FifoQueue::default()
    }
}

impl JobQueue for FifoQueue {
    fn push(&mut self, ticket: usize) {
        self.0.push_back(ticket);
    }
    fn pop(&mut self) -> Option<usize> {
        self.0.pop_front()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// Last-in first-out dispatch: newest jobs start first. Useful to probe
/// scheduling-order sensitivity in tests — results still come back in
/// submission order.
#[derive(Debug, Default)]
pub struct LifoQueue(Vec<usize>);

impl LifoQueue {
    /// An empty LIFO queue.
    pub fn new() -> LifoQueue {
        LifoQueue::default()
    }
}

impl JobQueue for LifoQueue {
    fn push(&mut self, ticket: usize) {
        self.0.push(ticket);
    }
    fn pop(&mut self) -> Option<usize> {
        self.0.pop()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_by_submission() {
        let mut q = FifoQueue::new();
        q.push(0);
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn lifo_orders_newest_first() {
        let mut q = LifoQueue::new();
        q.push(0);
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }
}
