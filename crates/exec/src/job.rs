//! Jobs: the unit of work the pool executes.
//!
//! A [`Job`] is a one-shot closure plus metadata describing the trial it
//! stands for. The closure receives a [`JobCtx`] exposing the job's
//! *cooperative* deadline: the runtime never kills a running job, it asks
//! the job (and the learners underneath, which already accept a training
//! budget) to stop on its own. A job that returns after its deadline is
//! reported as timed out; a job that panics is caught and reported as
//! panicked, so one bad trial cannot take down the process.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Metadata describing the trial behind a job, carried through to
/// [`JobResult`]s and [`crate::TrialEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobMeta {
    /// Submission index within a batch (set by the pool).
    pub id: u64,
    /// Free-form label (e.g. `"dataset/method @ budget"`).
    pub label: String,
    /// Learner name, when the job evaluates a learner.
    pub learner: String,
    /// Rendered configuration, when applicable.
    pub config: String,
    /// Training sample size, when applicable.
    pub sample_size: usize,
}

/// The execution context handed to a running job.
#[derive(Debug)]
pub struct JobCtx {
    start: Instant,
    deadline: Option<Duration>,
}

impl JobCtx {
    pub(crate) fn begin(deadline: Option<Duration>) -> JobCtx {
        JobCtx {
            start: Instant::now(),
            deadline,
        }
    }

    /// Time since the job started executing.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The job's total cooperative deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Time left before the deadline (saturating at zero); `None` when
    /// the job has no deadline.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_sub(self.start.elapsed()))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        match self.deadline {
            Some(d) => self.start.elapsed() > d,
            None => false,
        }
    }
}

/// A unit of work: metadata, an optional cooperative deadline, and the
/// closure to run. The `'env` lifetime lets jobs borrow from the caller's
/// stack (datasets, search spaces) because the pool runs them on scoped
/// threads.
pub struct Job<'env, T> {
    /// Trial metadata (echoed in results and events).
    pub meta: JobMeta,
    /// Cooperative deadline for the whole job.
    pub deadline: Option<Duration>,
    pub(crate) body: Box<dyn FnOnce(&JobCtx) -> T + Send + 'env>,
}

impl<'env, T> Job<'env, T> {
    /// Wraps a closure into a job with empty metadata and no deadline.
    pub fn new(body: impl FnOnce(&JobCtx) -> T + Send + 'env) -> Job<'env, T> {
        Job {
            meta: JobMeta::default(),
            deadline: None,
            body: Box::new(body),
        }
    }

    /// Sets the display label.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.meta.label = label.into();
        self
    }

    /// Replaces the whole metadata block.
    #[must_use]
    pub fn meta(mut self, meta: JobMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Sets the cooperative deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }
}

impl<T> std::fmt::Debug for Job<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("meta", &self.meta)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus<T> {
    /// Returned within its deadline.
    Finished(T),
    /// Returned, but after its cooperative deadline had passed.
    TimedOut(T),
    /// Panicked; the payload is the panic message. The worker survives.
    Panicked(String),
}

impl<T> JobStatus<T> {
    /// The produced value, if the job did not panic.
    pub fn value(&self) -> Option<&T> {
        match self {
            JobStatus::Finished(v) | JobStatus::TimedOut(v) => Some(v),
            JobStatus::Panicked(_) => None,
        }
    }

    /// Consumes the status into the produced value, if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            JobStatus::Finished(v) | JobStatus::TimedOut(v) => Some(v),
            JobStatus::Panicked(_) => None,
        }
    }

    /// Whether the job completed past its deadline.
    pub fn timed_out(&self) -> bool {
        matches!(self, JobStatus::TimedOut(_))
    }

    /// Whether the job panicked.
    pub fn panicked(&self) -> bool {
        matches!(self, JobStatus::Panicked(_))
    }
}

/// One executed job: its metadata, how it ended, and its wall time.
#[derive(Debug)]
pub struct JobResult<T> {
    /// The job's metadata (with `id` set to the submission index).
    pub meta: JobMeta,
    /// Terminal status.
    pub status: JobStatus<T>,
    /// Measured wall-clock seconds the job ran for.
    pub wall_secs: f64,
}

/// Renders a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job to completion on the current thread: starts the deadline
/// clock, catches panics, and classifies the outcome.
pub(crate) fn execute<T>(job: Job<'_, T>) -> JobResult<T> {
    let Job {
        meta,
        deadline,
        body,
    } = job;
    let ctx = JobCtx::begin(deadline);
    let outcome = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
    let wall_secs = ctx.elapsed().as_secs_f64();
    let status = match outcome {
        Ok(v) if ctx.expired() => JobStatus::TimedOut(v),
        Ok(v) => JobStatus::Finished(v),
        Err(payload) => JobStatus::Panicked(panic_message(payload)),
    };
    JobResult {
        meta,
        status,
        wall_secs,
    }
}
