//! Deterministic fault injection: a seeded [`FaultPlan`] that wraps any
//! [`Job`] and injects panics, artificial slowdowns past the deadline, and
//! poisoned (NaN/Inf) results at configurable per-trial probabilities.
//!
//! The plan is a *pure function* of `(seed, trial, attempt)`: whether a
//! given trial is faulted never depends on worker count, scheduling, or
//! wall time, so a chaos run under a virtual clock produces the same
//! committed trace at any parallelism — the property the controller's
//! failure policy is tested against. Keying on the attempt number means a
//! retry of a faulted trial re-rolls the dice, so transient faults can
//! clear on retry exactly like real flaky trials.

use crate::job::{Job, JobCtx};
use std::time::Duration;

/// A fault the plan injects into one trial attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The job body panics before doing any work.
    Panic,
    /// The job runs normally, then stalls until its cooperative deadline
    /// has passed (a token 1 ms stall when the job has no deadline).
    Slowdown,
    /// The job's reported loss is replaced by a non-finite value (`NaN`
    /// or `INFINITY`). Injected by the *caller* via
    /// [`FaultPlan::poison`], because the poisoned value lives in the
    /// job's typed result, not in the generic execution layer.
    Poison,
}

/// A seeded, deterministic fault-injection plan.
///
/// Build one with [`FaultPlan::new`] plus the rate setters, or
/// [`FaultPlan::uniform`] / [`FaultPlan::parse`] for the bench grid's
/// `--chaos seed:rate` form. Apply it to a job with
/// [`FaultPlan::instrument`] (panics and slowdowns) and to the job's
/// reported loss with [`FaultPlan::poison`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    panic_rate: f64,
    slowdown_rate: f64,
    poison_rate: f64,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix, the standard choice
/// for turning structured integers into uniform hashes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and all fault rates at zero.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            slowdown_rate: 0.0,
            poison_rate: 0.0,
        }
    }

    /// A plan injecting faults at `rate` total probability per attempt,
    /// split evenly across panics, slowdowns, and poisoned results (the
    /// `--chaos seed:rate` semantics).
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        let each = (rate.clamp(0.0, 1.0)) / 3.0;
        FaultPlan {
            seed,
            panic_rate: each,
            slowdown_rate: each,
            poison_rate: each,
        }
    }

    /// Parses the bench grid's `seed:rate` form (e.g. `"7:0.25"`).
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let (seed, rate) = s.split_once(':')?;
        let seed: u64 = seed.trim().parse().ok()?;
        let rate: f64 = rate.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        Some(FaultPlan::uniform(seed, rate))
    }

    /// Sets the per-attempt panic probability.
    #[must_use]
    pub fn panics(mut self, rate: f64) -> FaultPlan {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-attempt slowdown probability.
    #[must_use]
    pub fn slowdowns(mut self, rate: f64) -> FaultPlan {
        self.slowdown_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-attempt poisoned-result probability.
    #[must_use]
    pub fn poisons(mut self, rate: f64) -> FaultPlan {
        self.poison_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Total per-attempt fault probability.
    pub fn total_rate(&self) -> f64 {
        (self.panic_rate + self.slowdown_rate + self.poison_rate).min(1.0)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the fault (if any) for attempt `attempt` of trial `trial`.
    /// Pure: depends only on the plan and its arguments.
    pub fn decide(&self, trial: u64, attempt: u32) -> Option<InjectedFault> {
        let h = mix(self.seed
            ^ mix(trial.wrapping_mul(0xA24B_AED4_963E_E407))
            ^ mix((attempt as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25)));
        // 53 uniform bits -> [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.panic_rate {
            Some(InjectedFault::Panic)
        } else if u < self.panic_rate + self.slowdown_rate {
            Some(InjectedFault::Slowdown)
        } else if u < self.panic_rate + self.slowdown_rate + self.poison_rate {
            Some(InjectedFault::Poison)
        } else {
            None
        }
    }

    /// The poisoned loss for this attempt, when [`FaultPlan::decide`]
    /// says [`InjectedFault::Poison`]: `NaN` or `INFINITY`, chosen by a
    /// second deterministic coin so both non-finite shapes are exercised.
    pub fn poison(&self, trial: u64, attempt: u32) -> Option<f64> {
        if self.decide(trial, attempt) != Some(InjectedFault::Poison) {
            return None;
        }
        let h = mix(self.seed ^ mix(trial) ^ (attempt as u64) ^ 0x5EED_F00D);
        Some(if h & 1 == 0 { f64::NAN } else { f64::INFINITY })
    }

    /// Wraps `job` so that this attempt's panic or slowdown fault (if
    /// any) fires when the job runs. Poison faults leave the job
    /// untouched — the caller applies [`FaultPlan::poison`] to the
    /// reported loss instead. Metadata and deadline are preserved.
    pub fn instrument<'env, T>(&self, job: Job<'env, T>, trial: u64, attempt: u32) -> Job<'env, T>
    where
        T: 'env,
    {
        match self.decide(trial, attempt) {
            Some(InjectedFault::Panic) => {
                let Job { meta, deadline, .. } = job;
                Job {
                    meta,
                    deadline,
                    body: Box::new(move |_ctx: &JobCtx| {
                        panic!("injected fault: panic (trial {trial}, attempt {attempt})")
                    }),
                }
            }
            Some(InjectedFault::Slowdown) => {
                let Job {
                    meta,
                    deadline,
                    body,
                } = job;
                Job {
                    meta,
                    deadline,
                    body: Box::new(move |ctx: &JobCtx| {
                        let v = body(ctx);
                        // Stall just past the cooperative deadline so the
                        // job is reported TimedOut; without a deadline the
                        // stall is a token 1 ms (wall time never enters
                        // virtual-clock accounting, so determinism holds).
                        let stall = match ctx.remaining() {
                            Some(rem) => rem + Duration::from_millis(5),
                            None => Duration::from_millis(1),
                        };
                        std::thread::sleep(stall);
                        v
                    }),
                }
            }
            Some(InjectedFault::Poison) | None => job,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ExecPool;

    #[test]
    fn decide_is_deterministic_and_rate_accurate() {
        let plan = FaultPlan::uniform(42, 0.3);
        let first: Vec<_> = (0..2000).map(|t| plan.decide(t, 0)).collect();
        let second: Vec<_> = (0..2000).map(|t| plan.decide(t, 0)).collect();
        assert_eq!(first, second);
        let faults = first.iter().filter(|f| f.is_some()).count();
        // 2000 draws at p = 0.3: expect ~600, allow a generous band.
        assert!((450..=750).contains(&faults), "{faults}/2000 faults");
    }

    #[test]
    fn attempts_reroll_faults() {
        let plan = FaultPlan::uniform(7, 0.5);
        let cleared = (0..500u64).any(|t| {
            plan.decide(t, 0) == Some(InjectedFault::Panic) && plan.decide(t, 1).is_none()
        });
        assert!(cleared, "some faulted trial must clear on retry");
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let plan = FaultPlan::new(1);
        assert!((0..1000u64).all(|t| plan.decide(t, 0).is_none()));
    }

    #[test]
    fn parse_round_trips() {
        let plan = FaultPlan::parse("7:0.3").expect("valid chaos spec");
        assert_eq!(plan.seed(), 7);
        assert!((plan.total_rate() - 0.3).abs() < 1e-12);
        assert!(FaultPlan::parse("nope").is_none());
        assert!(FaultPlan::parse("1:1.5").is_none());
        assert!(FaultPlan::parse("1:-0.1").is_none());
    }

    #[test]
    fn poison_values_are_non_finite_and_cover_both_shapes() {
        let plan = FaultPlan::new(3).poisons(1.0);
        let mut saw_nan = false;
        let mut saw_inf = false;
        for t in 0..64u64 {
            let v = plan.poison(t, 0).expect("poison rate is 1");
            assert!(!v.is_finite());
            saw_nan |= v.is_nan();
            saw_inf |= v.is_infinite();
        }
        assert!(saw_nan && saw_inf, "both NaN and Inf poisons appear");
    }

    #[test]
    fn instrumented_panic_is_isolated_by_the_pool() {
        let plan = FaultPlan::new(0).panics(1.0);
        let pool = ExecPool::sequential();
        let job = plan.instrument(Job::new(|_ctx| 42u64), 5, 0);
        let result = pool.run_batch(vec![job], None).pop().expect("one result");
        assert!(result.status.panicked());
    }

    #[test]
    fn instrumented_slowdown_times_out_short_deadlines() {
        let plan = FaultPlan::new(0).slowdowns(1.0);
        let pool = ExecPool::sequential();
        let job = plan
            .instrument(
                Job::new(|_ctx| 1u64).deadline(Some(Duration::from_millis(1))),
                0,
                0,
            )
            .deadline(Some(Duration::from_millis(1)));
        let result = pool.run_batch(vec![job], None).pop().expect("one result");
        assert!(result.status.timed_out());
        assert_eq!(result.status.into_value(), Some(1));
    }

    #[test]
    fn unfaulted_jobs_pass_through() {
        let plan = FaultPlan::new(0); // all rates zero
        let pool = ExecPool::sequential();
        let job = plan.instrument(Job::new(|_ctx| 7u64), 0, 0);
        let result = pool.run_batch(vec![job], None).pop().expect("one result");
        assert_eq!(result.status.into_value(), Some(7));
    }
}
