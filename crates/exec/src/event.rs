//! Trial telemetry: structured events emitted as trials start and end,
//! and an aggregator that turns an event stream into counts.
//!
//! Events flow into an [`EventSink`], which is cheap to clone and safe to
//! share across pool workers. A sink is one of three shapes:
//!
//! - a **channel** sink ([`event_channel`]) buffering events on a standard
//!   mpsc channel for later draining (sends to a dropped receiver are
//!   silently discarded so telemetry can never fail a run);
//! - a **callback** sink ([`EventSink::callback`]) invoking a closure
//!   synchronously on the emitting thread — the shape durable consumers
//!   like a journal writer need, because the callback runs *before* the
//!   run proceeds past the commit point;
//! - a **fan-out** sink ([`EventSink::fanout`]) broadcasting every event
//!   to a list of downstream sinks, so one run can feed live telemetry
//!   and a durable journal at once.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;

/// What happened to a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialEventKind {
    /// The trial began executing.
    Started,
    /// The trial completed within its deadline.
    Finished,
    /// The trial completed, but past its cooperative deadline.
    TimedOut,
    /// The trial panicked (and was converted into a failed trial).
    Panicked,
    /// A transient trial failure is being retried (one event per retry
    /// attempt, before the attempt runs).
    Retried,
    /// A learner was quarantined after consecutive failures; the ECI
    /// proposer stops proposing it until a probe succeeds.
    Quarantined,
    /// A quarantined learner's probe succeeded; it rejoins the roster.
    Unquarantined,
    /// The input data was sanitized before the search (e.g. constant or
    /// all-NaN feature columns dropped); details in the message.
    Sanitized,
    /// A serving batch completed: `label` names the registry slot,
    /// `sample_size` carries the row count and `wall_secs` the batch
    /// latency.
    ServeBatch,
    /// A new model version was promoted into a registry slot.
    ServePromoted,
    /// A registry slot was rolled back to an earlier model version.
    ServeRolledBack,
    /// An admission controller rejected a request (e.g. a fit submitted
    /// past the in-flight search cap); `tenant` names the rejected
    /// tenant and the message carries the reason.
    ServeRejected,
    /// A gauge sample of an admission queue's depth: `sample_size`
    /// carries the number of searches queued or running when the event
    /// was emitted (on admit, dequeue, and completion).
    ServeQueueDepth,
    /// One fair-share scheduling slice of a tenant's search completed:
    /// `tenant` names the tenant, `cost` the budget seconds charged to
    /// the slice and `sample_size` the trials it committed.
    TenantSlice,
    /// A corrupt or unreadable durable file was quarantined during
    /// recovery (renamed to `*.corrupt` instead of aborting startup);
    /// the message carries the original path.
    StorageQuarantined,
    /// A durable-storage operation failed (`ENOSPC`, failed fsync, torn
    /// write, failed marker write); the message carries the typed error.
    StorageFault,
    /// An HTTP connection was dropped after a socket read/write timeout
    /// — a stalled client that can no longer pin a connection thread.
    ServeTimedOut,
}

impl TrialEventKind {
    /// Stable lowercase name (used in logs and reports).
    pub fn name(&self) -> &'static str {
        match self {
            TrialEventKind::Started => "started",
            TrialEventKind::Finished => "finished",
            TrialEventKind::TimedOut => "timed-out",
            TrialEventKind::Panicked => "panicked",
            TrialEventKind::Retried => "retried",
            TrialEventKind::Quarantined => "quarantined",
            TrialEventKind::Unquarantined => "unquarantined",
            TrialEventKind::Sanitized => "sanitized",
            TrialEventKind::ServeBatch => "serve-batch",
            TrialEventKind::ServePromoted => "serve-promoted",
            TrialEventKind::ServeRolledBack => "serve-rolled-back",
            TrialEventKind::ServeRejected => "serve-rejected",
            TrialEventKind::ServeQueueDepth => "serve-queue-depth",
            TrialEventKind::TenantSlice => "tenant-slice",
            TrialEventKind::StorageQuarantined => "storage-quarantined",
            TrialEventKind::StorageFault => "storage-fault",
            TrialEventKind::ServeTimedOut => "serve-timed-out",
        }
    }
}

/// Extended per-trial metadata attached to *committed* terminal events.
///
/// Live displays only need the event's headline fields; durable consumers
/// (the `flaml-journal` writer) need everything required to later replay
/// the trial through the controller bit-for-bit. The emitting controller
/// fills this on the one terminal event per committed trial.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrialMeta {
    /// Trial mode: `"search"` or `"sample-up"`.
    pub mode: String,
    /// Final-attempt status name (`"ok"`, `"failed"`, `"timed-out"`,
    /// `"panicked"`, `"non-finite-loss"`).
    pub status: String,
    /// Retry attempts the trial consumed (0 = first attempt was final).
    pub attempts: usize,
    /// Budget cost charged per attempt, in charge order. Replaying these
    /// charges one by one reproduces the budget clock's floating-point
    /// accumulation exactly.
    pub attempt_costs: Vec<f64>,
    /// Total budget elapsed when the trial committed.
    pub total_time: f64,
    /// The trial's base evaluation seed.
    pub seed: u64,
    /// Natural-unit configuration values, in search-space parameter order
    /// (lossless, unlike the rendered `config` string).
    pub config_values: Vec<f64>,
    /// Whether the trial improved the run's global best error.
    pub improved: bool,
    /// Global best error after this trial.
    pub best_error: f64,
}

/// One structured trial event.
#[derive(Debug, Clone)]
pub struct TrialEvent {
    /// Event kind.
    pub kind: TrialEventKind,
    /// Job/trial id (submission index within its run).
    pub job_id: u64,
    /// Free-form label (e.g. `"dataset/method"`).
    pub label: String,
    /// Tenant the event is accounted to in a multi-tenant service
    /// (empty outside the server: library runs have no tenancy).
    pub tenant: String,
    /// Learner evaluated, if known.
    pub learner: String,
    /// Rendered configuration, if known.
    pub config: String,
    /// Training sample size, if known.
    pub sample_size: usize,
    /// Observed validation error (terminal events only).
    pub error: Option<f64>,
    /// Charged cost in budget seconds (terminal events only).
    pub cost: Option<f64>,
    /// Measured wall seconds (terminal events only).
    pub wall_secs: Option<f64>,
    /// Panic or diagnostic message, if any.
    pub message: Option<String>,
    /// Prepared-data cache hits during this trial's preparation
    /// (committed terminal events only; 0 elsewhere).
    pub prepared_hits: usize,
    /// Prepared-data cache misses during this trial's preparation.
    pub prepared_misses: usize,
    /// Prepared-data cache entries evicted under the byte budget during
    /// this trial's preparation.
    pub prepared_evictions: usize,
    /// Bytes of dataset copies the zero-copy data plane avoided
    /// materializing for this trial.
    pub bytes_copied_saved: usize,
    /// Folds of this trial that continued boosting from a cached tree
    /// prefix (committed terminal events only; 0 elsewhere).
    pub tree_cache_hits: usize,
    /// Cache-eligible folds of this trial that started from round zero.
    pub tree_cache_misses: usize,
    /// Trees served from cached prefixes instead of being refit for this
    /// trial, summed over folds.
    pub trees_saved: usize,
    /// Full per-trial metadata (committed terminal events only).
    pub meta: Option<TrialMeta>,
}

impl TrialEvent {
    /// A bare event of `kind` with empty metadata.
    pub fn new(kind: TrialEventKind) -> TrialEvent {
        TrialEvent {
            kind,
            job_id: 0,
            label: String::new(),
            tenant: String::new(),
            learner: String::new(),
            config: String::new(),
            sample_size: 0,
            error: None,
            cost: None,
            wall_secs: None,
            message: None,
            prepared_hits: 0,
            prepared_misses: 0,
            prepared_evictions: 0,
            bytes_copied_saved: 0,
            tree_cache_hits: 0,
            tree_cache_misses: 0,
            trees_saved: 0,
            meta: None,
        }
    }
}

enum SinkInner {
    Channel(mpsc::Sender<TrialEvent>),
    Callback(Arc<dyn Fn(&TrialEvent) + Send + Sync>),
    Fanout(Arc<[EventSink]>),
}

impl Clone for SinkInner {
    fn clone(&self) -> SinkInner {
        match self {
            SinkInner::Channel(tx) => SinkInner::Channel(tx.clone()),
            SinkInner::Callback(f) => SinkInner::Callback(f.clone()),
            SinkInner::Fanout(sinks) => SinkInner::Fanout(sinks.clone()),
        }
    }
}

/// The consuming end a run emits trial events into (see the module docs
/// for the three sink shapes).
#[derive(Clone)]
pub struct EventSink {
    inner: SinkInner,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            SinkInner::Channel(_) => f.write_str("EventSink::Channel"),
            SinkInner::Callback(_) => f.write_str("EventSink::Callback"),
            SinkInner::Fanout(sinks) => write!(f, "EventSink::Fanout({})", sinks.len()),
        }
    }
}

impl EventSink {
    /// A sink that invokes `f` synchronously on the emitting thread for
    /// every event. The callback must not panic; it runs inside the run's
    /// commit path.
    pub fn callback(f: impl Fn(&TrialEvent) + Send + Sync + 'static) -> EventSink {
        EventSink {
            inner: SinkInner::Callback(Arc::new(f)),
        }
    }

    /// A sink that broadcasts every event to all of `sinks`, in order.
    pub fn fanout(sinks: impl Into<Vec<EventSink>>) -> EventSink {
        EventSink {
            inner: SinkInner::Fanout(sinks.into().into()),
        }
    }

    /// Emits an event. Errors (e.g. a dropped channel receiver) are
    /// ignored: telemetry is strictly best-effort and must never fail a
    /// run.
    pub fn emit(&self, event: TrialEvent) {
        match &self.inner {
            SinkInner::Channel(tx) => {
                let _ = tx.send(event);
            }
            SinkInner::Callback(f) => f(&event),
            SinkInner::Fanout(sinks) => match sinks.split_last() {
                None => {}
                Some((last, rest)) => {
                    for sink in rest {
                        sink.emit(event.clone());
                    }
                    last.emit(event);
                }
            },
        }
    }
}

/// Creates a trial-event channel: a cloneable sink plus its receiver.
pub fn event_channel() -> (EventSink, mpsc::Receiver<TrialEvent>) {
    let (tx, rx) = mpsc::channel();
    (
        EventSink {
            inner: SinkInner::Channel(tx),
        },
        rx,
    )
}

/// Per-learner event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnerCounts {
    /// Trials finished within deadline.
    pub finished: usize,
    /// Trials past their cooperative deadline.
    pub timed_out: usize,
    /// Trials that panicked.
    pub panicked: usize,
    /// Retry attempts charged to this learner's trials.
    pub retried: usize,
    /// Times this learner was quarantined.
    pub quarantined: usize,
}

/// Per-tenant resource accounting in a multi-tenant service, folded
/// from tenant-carrying events (`TenantSlice`, serving traffic and
/// admission rejections emitted with a non-empty `tenant`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantUsage {
    /// Fair-share scheduling slices run for this tenant's searches.
    pub fit_slices: usize,
    /// Search trials committed across those slices.
    pub fit_trials: usize,
    /// Budget seconds charged to this tenant's searches.
    pub fit_cost_secs: f64,
    /// Serving batches completed for this tenant.
    pub serve_batches: usize,
    /// Rows served to this tenant.
    pub serve_rows: usize,
    /// Requests of this tenant rejected by admission control.
    pub rejected: usize,
}

/// Aggregated counts over a trial-event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// `Started` events seen.
    pub started: usize,
    /// `Finished` events seen.
    pub finished: usize,
    /// `TimedOut` events seen.
    pub timed_out: usize,
    /// `Panicked` events seen.
    pub panicked: usize,
    /// `Retried` events seen (retry attempts across all trials).
    pub retried: usize,
    /// `Quarantined` events seen.
    pub quarantined: usize,
    /// `Unquarantined` events seen.
    pub unquarantined: usize,
    /// `Sanitized` events seen (input-data cleanups before the search).
    pub sanitized: usize,
    /// `ServeBatch` events seen (completed serving batches).
    pub serve_batches: usize,
    /// Rows served, summed over `ServeBatch` events' `sample_size`.
    pub serve_rows: usize,
    /// `ServePromoted` events seen (registry slot promotions).
    pub serve_promoted: usize,
    /// `ServeRolledBack` events seen (registry slot rollbacks).
    pub serve_rolled_back: usize,
    /// `ServeRejected` events seen (admission-control rejections).
    pub serve_rejected: usize,
    /// Last observed admission queue depth (`ServeQueueDepth` gauge).
    pub serve_queue_depth: usize,
    /// Highest admission queue depth observed.
    pub serve_queue_depth_max: usize,
    /// `TenantSlice` events seen (fair-share search slices).
    pub tenant_slices: usize,
    /// `StorageQuarantined` events seen (corrupt files sidelined during
    /// recovery).
    pub storage_quarantined: usize,
    /// `StorageFault` events seen (durable-storage operation failures).
    pub storage_faults: usize,
    /// `ServeTimedOut` events seen (connections dropped on socket
    /// timeout).
    pub serve_timed_out: usize,
    /// Prepared-data cache hits summed over all events.
    pub prepared_hits: usize,
    /// Prepared-data cache misses summed over all events.
    pub prepared_misses: usize,
    /// Prepared-data cache evictions summed over all events.
    pub prepared_evictions: usize,
    /// Bytes of dataset copies the zero-copy data plane avoided
    /// materializing, summed over all events.
    pub bytes_copied_saved: usize,
    /// Tree-cache hits (warm-continued folds) summed over all events.
    pub tree_cache_hits: usize,
    /// Tree-cache misses (cold cache-eligible folds) summed over all
    /// events.
    pub tree_cache_misses: usize,
    /// Trees served from cached prefixes instead of being refit, summed
    /// over all events.
    pub trees_saved: usize,
    /// Per-learner counts keyed by learner name (unnamed trials group
    /// under the empty string).
    pub by_learner: BTreeMap<String, LearnerCounts>,
    /// Per-tenant accounting keyed by tenant name (events with an empty
    /// `tenant` are not attributed).
    pub by_tenant: BTreeMap<String, TenantUsage>,
}

impl Telemetry {
    /// An empty aggregate.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Folds one event in.
    pub fn record(&mut self, event: &TrialEvent) {
        self.prepared_hits += event.prepared_hits;
        self.prepared_misses += event.prepared_misses;
        self.prepared_evictions += event.prepared_evictions;
        self.bytes_copied_saved += event.bytes_copied_saved;
        self.tree_cache_hits += event.tree_cache_hits;
        self.tree_cache_misses += event.tree_cache_misses;
        self.trees_saved += event.trees_saved;
        if !event.tenant.is_empty() {
            let usage = self.by_tenant.entry(event.tenant.clone()).or_default();
            match event.kind {
                TrialEventKind::TenantSlice => {
                    usage.fit_slices += 1;
                    usage.fit_trials += event.sample_size;
                    usage.fit_cost_secs += event.cost.unwrap_or(0.0);
                }
                TrialEventKind::ServeBatch => {
                    usage.serve_batches += 1;
                    usage.serve_rows += event.sample_size;
                }
                TrialEventKind::ServeRejected => {
                    usage.rejected += 1;
                }
                _ => {}
            }
        }
        match event.kind {
            TrialEventKind::Started => {
                self.started += 1;
            }
            TrialEventKind::Unquarantined => {
                self.unquarantined += 1;
            }
            TrialEventKind::Sanitized => {
                self.sanitized += 1;
            }
            TrialEventKind::ServeBatch => {
                self.serve_batches += 1;
                self.serve_rows += event.sample_size;
            }
            TrialEventKind::ServePromoted => {
                self.serve_promoted += 1;
            }
            TrialEventKind::ServeRolledBack => {
                self.serve_rolled_back += 1;
            }
            TrialEventKind::ServeRejected => {
                self.serve_rejected += 1;
            }
            TrialEventKind::ServeQueueDepth => {
                self.serve_queue_depth = event.sample_size;
                self.serve_queue_depth_max = self.serve_queue_depth_max.max(event.sample_size);
            }
            TrialEventKind::TenantSlice => {
                self.tenant_slices += 1;
            }
            TrialEventKind::StorageQuarantined => {
                self.storage_quarantined += 1;
            }
            TrialEventKind::StorageFault => {
                self.storage_faults += 1;
            }
            TrialEventKind::ServeTimedOut => {
                self.serve_timed_out += 1;
            }
            _ => {
                let slot = self.by_learner.entry(event.learner.clone()).or_default();
                match event.kind {
                    TrialEventKind::Finished => {
                        self.finished += 1;
                        slot.finished += 1;
                    }
                    TrialEventKind::TimedOut => {
                        self.timed_out += 1;
                        slot.timed_out += 1;
                    }
                    TrialEventKind::Panicked => {
                        self.panicked += 1;
                        slot.panicked += 1;
                    }
                    TrialEventKind::Retried => {
                        self.retried += 1;
                        slot.retried += 1;
                    }
                    TrialEventKind::Quarantined => {
                        self.quarantined += 1;
                        slot.quarantined += 1;
                    }
                    TrialEventKind::Started
                    | TrialEventKind::Unquarantined
                    | TrialEventKind::Sanitized
                    | TrialEventKind::ServeBatch
                    | TrialEventKind::ServePromoted
                    | TrialEventKind::ServeRolledBack
                    | TrialEventKind::ServeRejected
                    | TrialEventKind::ServeQueueDepth
                    | TrialEventKind::TenantSlice
                    | TrialEventKind::StorageQuarantined
                    | TrialEventKind::StorageFault
                    | TrialEventKind::ServeTimedOut => unreachable!("handled above"),
                }
            }
        }
    }

    /// Drains every event currently buffered in `rx` (non-blocking) and
    /// folds them in. Returns `self` for chaining.
    pub fn drain(mut self, rx: &mpsc::Receiver<TrialEvent>) -> Telemetry {
        while let Ok(ev) = rx.try_recv() {
            self.record(&ev);
        }
        self
    }

    /// Total terminal events (finished + timed out + panicked).
    pub fn total_terminal(&self) -> usize {
        self.finished + self.timed_out + self.panicked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_survives_dropped_receiver() {
        let (sink, rx) = event_channel();
        drop(rx);
        sink.emit(TrialEvent::new(TrialEventKind::Started));
    }

    #[test]
    fn callback_sink_runs_synchronously() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        let sink = EventSink::callback(move |ev| {
            assert_eq!(ev.kind, TrialEventKind::Finished);
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        sink.emit(TrialEvent::new(TrialEventKind::Finished));
        assert_eq!(
            seen.load(Ordering::SeqCst),
            1,
            "callback ran before emit returned"
        );
    }

    #[test]
    fn fanout_broadcasts_to_every_sink_in_order() {
        use std::sync::Mutex;
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        let (chan, rx) = event_channel();
        let sink = EventSink::fanout(vec![
            EventSink::callback(move |_| o1.lock().unwrap().push("a")),
            chan,
            EventSink::callback(move |_| o2.lock().unwrap().push("b")),
        ]);
        let mut ev = TrialEvent::new(TrialEventKind::Started);
        ev.learner = "gbm".into();
        sink.emit(ev);
        assert_eq!(*order.lock().unwrap(), vec!["a", "b"]);
        let forwarded = rx.try_recv().expect("channel leg received the event");
        assert_eq!(forwarded.learner, "gbm");
    }

    #[test]
    fn empty_fanout_is_a_null_sink() {
        let sink = EventSink::fanout(Vec::new());
        sink.emit(TrialEvent::new(TrialEventKind::Started));
    }

    #[test]
    fn telemetry_counts_by_kind_and_learner() {
        let (sink, rx) = event_channel();
        let mut ev = TrialEvent::new(TrialEventKind::Started);
        ev.learner = "gbm".into();
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::Finished;
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::Panicked;
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::TimedOut;
        ev.learner = "lr".into();
        sink.emit(ev);
        let t = Telemetry::new().drain(&rx);
        assert_eq!(t.started, 1);
        assert_eq!(t.finished, 1);
        assert_eq!(t.panicked, 1);
        assert_eq!(t.timed_out, 1);
        assert_eq!(t.total_terminal(), 3);
        assert_eq!(t.by_learner["gbm"].finished, 1);
        assert_eq!(t.by_learner["gbm"].panicked, 1);
        assert_eq!(t.by_learner["lr"].timed_out, 1);
    }

    #[test]
    fn telemetry_sums_data_plane_counters() {
        let (sink, rx) = event_channel();
        let mut ev = TrialEvent::new(TrialEventKind::Finished);
        ev.prepared_hits = 2;
        ev.prepared_misses = 3;
        ev.prepared_evictions = 1;
        ev.bytes_copied_saved = 4096;
        ev.tree_cache_hits = 1;
        ev.tree_cache_misses = 4;
        ev.trees_saved = 12;
        sink.emit(ev.clone());
        ev.prepared_hits = 5;
        ev.prepared_misses = 0;
        ev.prepared_evictions = 2;
        ev.bytes_copied_saved = 1024;
        ev.tree_cache_hits = 5;
        ev.tree_cache_misses = 0;
        ev.trees_saved = 100;
        sink.emit(ev);
        let t = Telemetry::new().drain(&rx);
        assert_eq!(t.prepared_hits, 7);
        assert_eq!(t.prepared_misses, 3);
        assert_eq!(t.prepared_evictions, 3);
        assert_eq!(t.bytes_copied_saved, 5120);
        assert_eq!(t.tree_cache_hits, 6);
        assert_eq!(t.tree_cache_misses, 4);
        assert_eq!(t.trees_saved, 112);
    }

    #[test]
    fn telemetry_counts_serving_events() {
        let (sink, rx) = event_channel();
        let mut ev = TrialEvent::new(TrialEventKind::ServeBatch);
        ev.label = "prod/churn".into();
        ev.sample_size = 128;
        sink.emit(ev.clone());
        ev.sample_size = 64;
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::ServePromoted;
        ev.sample_size = 0;
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::ServeRolledBack;
        sink.emit(ev);
        let t = Telemetry::new().drain(&rx);
        assert_eq!(t.serve_batches, 2);
        assert_eq!(t.serve_rows, 192);
        assert_eq!(t.serve_promoted, 1);
        assert_eq!(t.serve_rolled_back, 1);
        assert_eq!(t.total_terminal(), 0, "serving events are not terminal");
        assert!(t.by_learner.is_empty(), "serving events carry no learner");
    }

    #[test]
    fn telemetry_counts_admission_and_tenant_events() {
        let (sink, rx) = event_channel();
        let mut ev = TrialEvent::new(TrialEventKind::ServeRejected);
        ev.tenant = "acme".into();
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::ServeQueueDepth;
        ev.sample_size = 7;
        sink.emit(ev.clone());
        ev.sample_size = 3;
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::TenantSlice;
        ev.sample_size = 4;
        ev.cost = Some(1.5);
        sink.emit(ev.clone());
        ev.sample_size = 2;
        ev.cost = Some(0.5);
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::ServeBatch;
        ev.sample_size = 64;
        ev.cost = None;
        sink.emit(ev);
        let t = Telemetry::new().drain(&rx);
        assert_eq!(t.serve_rejected, 1);
        assert_eq!(t.serve_queue_depth, 3, "gauge keeps the last sample");
        assert_eq!(t.serve_queue_depth_max, 7);
        assert_eq!(t.tenant_slices, 2);
        let usage = &t.by_tenant["acme"];
        assert_eq!(usage.rejected, 1);
        assert_eq!(usage.fit_slices, 2);
        assert_eq!(usage.fit_trials, 6);
        assert!((usage.fit_cost_secs - 2.0).abs() < 1e-12);
        assert_eq!(usage.serve_batches, 1);
        assert_eq!(usage.serve_rows, 64);
        assert_eq!(t.total_terminal(), 0, "tenant events are not terminal");
    }

    #[test]
    fn telemetry_counts_robustness_events() {
        let (sink, rx) = event_channel();
        let mut ev = TrialEvent::new(TrialEventKind::Retried);
        ev.learner = "gbm".into();
        sink.emit(ev.clone());
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::Quarantined;
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::Unquarantined;
        sink.emit(ev.clone());
        ev.kind = TrialEventKind::Sanitized;
        sink.emit(ev);
        let t = Telemetry::new().drain(&rx);
        assert_eq!(t.retried, 2);
        assert_eq!(t.quarantined, 1);
        assert_eq!(t.unquarantined, 1);
        assert_eq!(t.sanitized, 1);
        assert_eq!(t.total_terminal(), 0, "robustness events are not terminal");
        assert_eq!(t.by_learner["gbm"].retried, 2);
        assert_eq!(t.by_learner["gbm"].quarantined, 1);
    }
}
