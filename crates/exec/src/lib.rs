//! `flaml-exec` — the parallel trial-execution runtime.
//!
//! AutoML with a fixed budget is throughput-bound: every idle core is
//! budget wasted. This crate provides the workspace's execution
//! substrate: a dependency-free worker pool that runs [`Job`]s with
//!
//! - **per-job cooperative deadlines** ([`JobCtx::remaining`] /
//!   [`JobCtx::expired`]) — the runtime never kills a thread; trials are
//!   asked to stop and flagged [`JobStatus::TimedOut`] when they return
//!   late;
//! - **panic isolation** — a panicking trial becomes
//!   [`JobStatus::Panicked`] (a failed trial), not a dead process;
//! - **structured telemetry** — an mpsc [`TrialEvent`] channel
//!   (started / finished / timed-out / panicked, with learner, config,
//!   sample size, error, cost) plus a [`Telemetry`] aggregator;
//! - **deterministic results** — results always return in submission
//!   order, and a single-worker pool executes inline on the caller's
//!   thread, so `workers = 1` reproduces a sequential loop exactly. The
//!   dispatch policy is an injectable [`JobQueue`] (FIFO by default);
//! - **deterministic fault injection** — a seeded [`FaultPlan`] wraps
//!   any job with panics, slowdowns past the deadline, or poisoned
//!   (NaN/Inf) losses at configured per-trial probabilities, purely as a
//!   function of `(seed, trial, attempt)`, so failure policies can be
//!   tested under chaos without losing trace determinism.
//!
//! Three layers of the workspace sit on top of it: the benchmark grid
//! farms independent (method × dataset × budget) cells to the pool
//! (`--jobs N`), cross-validation evaluates folds concurrently, and the
//! AutoML controller speculatively pre-executes the round-robin
//! ablation's next trials on idle workers while committing results in
//! submission order.
//!
//! ```
//! use flaml_exec::{ExecPool, Job};
//!
//! let pool = ExecPool::new(4);
//! let inputs = [1u64, 2, 3, 4, 5];
//! let jobs = inputs.iter().map(|&x| Job::new(move |_ctx| x * x)).collect();
//! let results = pool.run_batch(jobs, None);
//! let squares: Vec<u64> = results
//!     .into_iter()
//!     .filter_map(|r| r.status.into_value())
//!     .collect();
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // submission order
//! ```

#![warn(missing_docs)]

mod event;
mod fault;
mod job;
mod pool;
mod queue;

pub use event::{
    event_channel, EventSink, LearnerCounts, Telemetry, TenantUsage, TrialEvent, TrialEventKind,
    TrialMeta,
};
pub use fault::{FaultPlan, InjectedFault};
pub use job::{Job, JobCtx, JobMeta, JobResult, JobStatus};
pub use pool::ExecPool;
pub use queue::{FifoQueue, JobQueue, LifoQueue};
