//! Synthetic benchmark workloads for the FLAML reproduction.
//!
//! The paper evaluates on 39 OpenML classification tasks and 14 PMLB
//! regression tasks, which are not available offline. This crate generates
//! synthetic suites spanning the same axes the evaluation exercises —
//! dataset scale (`#instances x #features` over several orders of
//! magnitude), task type, difficulty, class imbalance, categorical
//! features and missing values — plus the selectivity-estimation workload
//! of Section 5.3 (multi-dimensional data distributions, range queries and
//! exact selectivity labels, scored by q-error).
//!
//! # Example
//!
//! ```
//! use flaml_synth::{binary_suite, SuiteScale};
//!
//! let datasets = binary_suite(SuiteScale::Small);
//! assert!(datasets.len() >= 8);
//! for d in &datasets {
//!     assert!(d.n_rows() >= 300);
//! }
//! ```

#![warn(missing_docs)]

mod classification;
mod regression;
mod selectivity;
mod stream;
mod suite;

pub use classification::{blobs, checkerboard, hyperplane, imbalanced, rings, ClassSpec};
pub use regression::{friedman1, friedman2, friedman3, multiplicative, piecewise, plane};
pub use selectivity::{
    selectivity_dataset, selectivity_suite, selectivity_suite_scaled, SelectivityWorkload,
    TableDistribution,
};
pub use stream::DriftStream;
pub use suite::{binary_suite, multiclass_suite, regression_suite, SuiteScale};
