//! Named dataset suites mirroring the structure of the paper's benchmark
//! (Tables 6–8): groups of binary, multi-class and regression tasks
//! ordered by size, with heterogeneous difficulty, categorical features
//! and missing values.

use crate::classification::{blobs, checkerboard, hyperplane, imbalanced, rings, ClassSpec};
use crate::regression::{friedman1, friedman2, friedman3, multiplicative, piecewise, plane};
use flaml_data::Dataset;

/// Scale of the suite: `Small` for tests and smoke runs, `Full` for the
/// experiment harness (about 100x smaller than the paper's datasets, to
/// match the scaled time budgets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Hundreds of rows per dataset.
    Small,
    /// Thousands to tens of thousands of rows per dataset.
    Full,
}

impl SuiteScale {
    fn scale(&self, n: usize) -> usize {
        match self {
            SuiteScale::Small => (n / 20).max(300),
            SuiteScale::Full => n,
        }
    }
}

fn spec(n: usize, seed: u64) -> ClassSpec {
    ClassSpec {
        n,
        seed,
        ..ClassSpec::default()
    }
}

/// Binary classification suite (ordered by size, like Figure 5a).
pub fn binary_suite(scale: SuiteScale) -> Vec<Dataset> {
    let s = |n| scale.scale(n);
    vec![
        hyperplane(4, 0.05, spec(s(748), 100)).renamed("blood-like"),
        blobs(2, 8, 0.6, spec(s(1000), 101)).renamed("credit-like"),
        checkerboard(
            3,
            ClassSpec {
                label_noise: 0.05,
                ..spec(s(2100), 102)
            },
        )
        .renamed("kc1-like"),
        hyperplane(
            20,
            0.2,
            ClassSpec {
                categorical_features: 3,
                ..spec(s(3200), 103)
            },
        )
        .renamed("kr-vs-kp-like"),
        rings(2, spec(s(5400), 104)).renamed("phoneme-like"),
        blobs(
            2,
            15,
            0.8,
            ClassSpec {
                missing_rate: 0.05,
                ..spec(s(5200), 105)
            },
        )
        .renamed("sylvine-like"),
        checkerboard(5, spec(s(9000), 106)).renamed("nomao-like"),
        imbalanced(0.06, spec(s(32_000), 107)).renamed("amazon-like"),
        hyperplane(
            16,
            0.4,
            ClassSpec {
                categorical_features: 4,
                missing_rate: 0.03,
                ..spec(s(45_000), 108)
            },
        )
        .renamed("bank-like"),
        blobs(2, 28, 0.9, spec(s(50_000), 109)).renamed("higgs-like"),
        checkerboard(
            6,
            ClassSpec {
                label_noise: 0.1,
                ..spec(s(60_000), 110)
            },
        )
        .renamed("miniboone-like"),
        blobs(2, 7, 1.1, spec(s(80_000), 111)).renamed("airlines-like"),
    ]
}

/// Multi-class suite (like Figure 5b).
pub fn multiclass_suite(scale: SuiteScale) -> Vec<Dataset> {
    let s = |n| scale.scale(n);
    vec![
        blobs(
            4,
            6,
            0.5,
            ClassSpec {
                categorical_features: 2,
                ..spec(s(1728), 200)
            },
        )
        .renamed("car-like"),
        rings(3, spec(s(2000), 201)).renamed("mfeat-like"),
        blobs(7, 19, 0.6, spec(s(2310), 202)).renamed("segment-like"),
        rings(4, spec(s(4800), 203)).renamed("vehicle-like"),
        blobs(
            10,
            12,
            0.8,
            ClassSpec {
                missing_rate: 0.02,
                ..spec(s(10_000), 204)
            },
        )
        .renamed("helena-like"),
        blobs(5, 30, 0.9, spec(s(40_000), 205)).renamed("jannis-like"),
        blobs(3, 6, 0.45, spec(s(44_000), 206)).renamed("jungle-like"),
        blobs(7, 9, 0.5, spec(s(58_000), 207)).renamed("shuttle-like"),
    ]
}

/// Regression suite (like Figure 5c).
pub fn regression_suite(scale: SuiteScale) -> Vec<Dataset> {
    let s = |n| scale.scale(n);
    vec![
        friedman3(s(15_000), 0.1, 300).renamed("pol-like"),
        friedman1(s(17_500), 9, 1.0, 301).renamed("echomonths-like"),
        multiplicative(s(20_600), 8, 0.3, 302).renamed("houses-like"),
        piecewise(s(22_800), 8, 0.5, 303).renamed("house8L-like"),
        friedman2(s(31_000), 5.0, 304).renamed("lowbwt-like"),
        plane(s(40_700), 10, 1.0, 305).renamed("2dplanes-like"),
        friedman1(s(40_700), 10, 2.0, 306).renamed("fried-like"),
        piecewise(s(100_000), 11, 1.0, 307).renamed("pharynx-like"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::Task;

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(binary_suite(SuiteScale::Small).len(), 12);
        assert_eq!(multiclass_suite(SuiteScale::Small).len(), 8);
        assert_eq!(regression_suite(SuiteScale::Small).len(), 8);
    }

    #[test]
    fn small_scale_caps_rows() {
        for d in binary_suite(SuiteScale::Small) {
            assert!(d.n_rows() <= 4000, "{} has {} rows", d.name(), d.n_rows());
            assert!(d.n_rows() >= 300);
        }
    }

    #[test]
    fn full_scale_orders_by_size() {
        let suite = binary_suite(SuiteScale::Full);
        assert!(suite.last().unwrap().n_rows() > suite[0].n_rows());
        assert_eq!(suite.last().unwrap().n_rows(), 80_000);
    }

    #[test]
    fn tasks_match_groups() {
        for d in binary_suite(SuiteScale::Small) {
            assert_eq!(d.task(), Task::Binary, "{}", d.name());
        }
        for d in multiclass_suite(SuiteScale::Small) {
            assert!(matches!(d.task(), Task::MultiClass(_)), "{}", d.name());
        }
        for d in regression_suite(SuiteScale::Small) {
            assert_eq!(d.task(), Task::Regression, "{}", d.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = binary_suite(SuiteScale::Small)
            .iter()
            .chain(multiclass_suite(SuiteScale::Small).iter())
            .chain(regression_suite(SuiteScale::Small).iter())
            .map(|d| d.name().to_string())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
