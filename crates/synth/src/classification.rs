//! Classification dataset generators.
//!
//! Each generator returns a [`Dataset`] with controlled difficulty; the
//! [`ClassSpec`] options add noise features, categorical features, missing
//! values and class imbalance, mirroring the heterogeneity of the paper's
//! OpenML tasks (Tables 6–7).

use flaml_data::{Dataset, FeatureKind, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Common options for classification generators.
#[derive(Debug, Clone, Copy)]
pub struct ClassSpec {
    /// Number of rows.
    pub n: usize,
    /// Pure-noise numeric features appended to the informative ones.
    pub noise_features: usize,
    /// Categorical features appended (weakly informative).
    pub categorical_features: usize,
    /// Fraction of feature cells set to `NaN`.
    pub missing_rate: f64,
    /// Label noise: fraction of labels flipped.
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClassSpec {
    fn default() -> Self {
        ClassSpec {
            n: 1000,
            noise_features: 2,
            categorical_features: 0,
            missing_rate: 0.0,
            label_noise: 0.0,
            seed: 0,
        }
    }
}

fn finish(
    name: &str,
    task: Task,
    mut columns: Vec<Vec<f64>>,
    mut y: Vec<f64>,
    spec: &ClassSpec,
    rng: &mut StdRng,
) -> Dataset {
    let n = y.len();
    for _ in 0..spec.noise_features {
        columns.push((0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect());
    }
    let mut kinds = vec![FeatureKind::Numeric; columns.len()];
    let n_classes = task.n_classes().unwrap_or(2);
    for c in 0..spec.categorical_features {
        let cardinality = 3 + (c % 4) * 2;
        // Weakly label-correlated categories.
        let col: Vec<f64> = y
            .iter()
            .map(|&label| {
                if rng.gen::<f64>() < 0.4 {
                    ((label as usize + c) % cardinality) as f64
                } else {
                    rng.gen_range(0..cardinality) as f64
                }
            })
            .collect();
        columns.push(col);
        kinds.push(FeatureKind::Categorical { cardinality });
    }
    if spec.missing_rate > 0.0 {
        for col in &mut columns {
            for v in col.iter_mut() {
                if rng.gen::<f64>() < spec.missing_rate {
                    *v = f64::NAN;
                }
            }
        }
    }
    if spec.label_noise > 0.0 {
        for label in &mut y {
            if rng.gen::<f64>() < spec.label_noise {
                *label = rng.gen_range(0..n_classes) as f64;
            }
        }
    }
    Dataset::with_kinds(name, task, columns, kinds, y).expect("generator output is consistent")
}

/// Gaussian blobs: `k` classes at random centers with overlap controlled
/// by `spread` (larger = harder). Centers sit on the unit sphere, so the
/// class separation is independent of the dimensionality and `spread` is
/// directly the noise-to-separation ratio (`~0.3` easy, `~1.0` hard).
pub fn blobs(k: usize, d: usize, spread: f64, spec: ClassSpec) -> Dataset {
    assert!(k >= 2 && d >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let unit = Normal::new(0.0, 1.0).expect("valid");
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| {
            let v: Vec<f64> = (0..d).map(|_| unit.sample(&mut rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            v.into_iter().map(|x| x / norm).collect()
        })
        .collect();
    let normal = Normal::new(0.0, spread).expect("valid spread");
    let mut columns = vec![Vec::with_capacity(spec.n); d];
    let mut y = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let c = i % k;
        for (j, col) in columns.iter_mut().enumerate() {
            col.push(centers[c][j] + normal.sample(&mut rng));
        }
        y.push(c as f64);
    }
    let task = if k == 2 {
        Task::Binary
    } else {
        Task::MultiClass(k)
    };
    finish("blobs", task, columns, y, &spec, &mut rng)
}

/// 2-D checkerboard with `cells x cells` tiles — a non-linear boundary
/// that trees handle well and linear models cannot.
pub fn checkerboard(cells: usize, spec: ClassSpec) -> Dataset {
    assert!(cells >= 2);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut x0 = Vec::with_capacity(spec.n);
    let mut x1 = Vec::with_capacity(spec.n);
    let mut y = Vec::with_capacity(spec.n);
    for _ in 0..spec.n {
        let a = rng.gen::<f64>() * cells as f64;
        let b = rng.gen::<f64>() * cells as f64;
        x0.push(a);
        x1.push(b);
        y.push(((a.floor() as i64 + b.floor() as i64) % 2) as f64);
    }
    finish(
        "checkerboard",
        Task::Binary,
        vec![x0, x1],
        y,
        &spec,
        &mut rng,
    )
}

/// Rotated noisy hyperplane in `d` dimensions — nearly linearly separable,
/// the regime where logistic regression shines.
pub fn hyperplane(d: usize, margin_noise: f64, spec: ClassSpec) -> Dataset {
    assert!(d >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let w: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let mut columns = vec![Vec::with_capacity(spec.n); d];
    let mut y = Vec::with_capacity(spec.n);
    let normal = Normal::new(0.0, margin_noise.max(1e-9)).expect("valid noise");
    for _ in 0..spec.n {
        let x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let margin: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        for (j, col) in columns.iter_mut().enumerate() {
            col.push(x[j]);
        }
        y.push(f64::from(margin + normal.sample(&mut rng) > 0.0));
    }
    finish("hyperplane", Task::Binary, columns, y, &spec, &mut rng)
}

/// Concentric rings: class = ring index by distance from the origin.
pub fn rings(k: usize, spec: ClassSpec) -> Dataset {
    assert!(k >= 2);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut x0 = Vec::with_capacity(spec.n);
    let mut x1 = Vec::with_capacity(spec.n);
    let mut y = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let c = i % k;
        let radius = (c as f64 + 1.0) + rng.gen::<f64>() * 0.6 - 0.3;
        let angle = rng.gen::<f64>() * std::f64::consts::TAU;
        x0.push(radius * angle.cos());
        x1.push(radius * angle.sin());
        y.push(c as f64);
    }
    let task = if k == 2 {
        Task::Binary
    } else {
        Task::MultiClass(k)
    };
    finish("rings", task, vec![x0, x1], y, &spec, &mut rng)
}

/// Heavily imbalanced binary task: the minority class occupies a small
/// pocket of feature space and `minority_fraction` of the rows.
pub fn imbalanced(minority_fraction: f64, spec: ClassSpec) -> Dataset {
    assert!(minority_fraction > 0.0 && minority_fraction < 0.5);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut x0 = Vec::with_capacity(spec.n);
    let mut x1 = Vec::with_capacity(spec.n);
    let mut y = Vec::with_capacity(spec.n);
    for _ in 0..spec.n {
        if rng.gen::<f64>() < minority_fraction {
            x0.push(3.0 + rng.gen::<f64>());
            x1.push(3.0 + rng.gen::<f64>());
            y.push(1.0);
        } else {
            x0.push(rng.gen::<f64>() * 4.0);
            x1.push(rng.gen::<f64>() * 4.0);
            y.push(0.0);
        }
    }
    finish("imbalanced", Task::Binary, vec![x0, x1], y, &spec, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_balance() {
        let d = blobs(
            3,
            4,
            1.0,
            ClassSpec {
                n: 300,
                ..ClassSpec::default()
            },
        );
        assert_eq!(d.n_rows(), 300);
        assert_eq!(d.n_features(), 4 + 2);
        assert_eq!(d.task(), Task::MultiClass(3));
        let priors = d.class_priors().unwrap();
        for p in priors {
            assert!((p - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn binary_blobs_use_binary_task() {
        let d = blobs(2, 2, 0.5, ClassSpec::default());
        assert_eq!(d.task(), Task::Binary);
    }

    #[test]
    fn categorical_features_flagged() {
        let spec = ClassSpec {
            n: 200,
            categorical_features: 3,
            ..ClassSpec::default()
        };
        let d = checkerboard(4, spec);
        let cats = d
            .feature_kinds()
            .iter()
            .filter(|k| matches!(k, FeatureKind::Categorical { .. }))
            .count();
        assert_eq!(cats, 3);
    }

    #[test]
    fn missing_rate_injects_nans() {
        let spec = ClassSpec {
            n: 500,
            missing_rate: 0.2,
            ..ClassSpec::default()
        };
        let d = hyperplane(5, 0.01, spec);
        let total: usize = (0..d.n_features())
            .map(|j| d.column(j).iter().filter(|v| v.is_nan()).count())
            .sum();
        let cells = d.n_rows() * d.n_features();
        let rate = total as f64 / cells as f64;
        assert!((rate - 0.2).abs() < 0.05, "missing rate {rate}");
    }

    #[test]
    fn imbalanced_has_minority_pocket() {
        let d = imbalanced(
            0.05,
            ClassSpec {
                n: 2000,
                ..ClassSpec::default()
            },
        );
        let p = d.class_priors().unwrap();
        assert!((p[1] - 0.05).abs() < 0.03, "minority {:.3}", p[1]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rings(
            3,
            ClassSpec {
                seed: 5,
                ..ClassSpec::default()
            },
        );
        let b = rings(
            3,
            ClassSpec {
                seed: 5,
                ..ClassSpec::default()
            },
        );
        assert_eq!(a.column(0), b.column(0));
        let c = rings(
            3,
            ClassSpec {
                seed: 6,
                ..ClassSpec::default()
            },
        );
        assert_ne!(a.column(0), c.column(0));
    }

    #[test]
    fn label_noise_flips_labels() {
        let clean = hyperplane(
            3,
            1e-6,
            ClassSpec {
                n: 1000,
                seed: 1,
                ..ClassSpec::default()
            },
        );
        let noisy = hyperplane(
            3,
            1e-6,
            ClassSpec {
                n: 1000,
                seed: 1,
                label_noise: 0.3,
                ..ClassSpec::default()
            },
        );
        let diff = clean
            .target()
            .iter()
            .zip(noisy.target())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 50, "only {diff} labels differ");
    }
}
