//! The selectivity-estimation workload of the paper's Section 5.3.
//!
//! Dutt et al. train lightweight regression models that map a range
//! predicate (per-dimension `[lo, hi]` bounds) to the predicate's
//! selectivity on a table, evaluated by q-error. The paper's tables
//! (Forest, Power, Higgs, Weather, TPC-H) are proprietary or large
//! downloads, so this module generates distribution-matched synthetic
//! tables: what drives q-error difficulty is dimensionality and the
//! correlation/skew structure of the data, which each
//! [`TableDistribution`] mimics.
//!
//! Models are trained on `ln(selectivity)`; q-error in log space is
//! `exp(|prediction − truth|)` (see [`flaml_metrics::q_error`]).

use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Families of table-data distributions, mirroring the datasets of
/// Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableDistribution {
    /// Clustered Gaussian mixture ("Forest"-like: terrain patches).
    Forest,
    /// Strongly correlated dimensions with heavy tails ("Power"-like:
    /// household electricity readings).
    Power,
    /// Nearly independent unimodal dimensions ("Higgs"-like: detector
    /// features).
    Higgs,
    /// Periodic structure plus trend ("Weather"-like: seasonal readings).
    Weather,
    /// Skewed, near-discrete values ("TPCH"-like: generated business
    /// data).
    Tpch,
}

impl TableDistribution {
    /// Short name used in dataset labels.
    pub fn name(&self) -> &'static str {
        match self {
            TableDistribution::Forest => "Forest",
            TableDistribution::Power => "Power",
            TableDistribution::Higgs => "Higgs",
            TableDistribution::Weather => "Weather",
            TableDistribution::Tpch => "TPCH",
        }
    }

    /// Samples `n` points in `[0, 1]^k`.
    fn sample_points(&self, n: usize, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let mut points = vec![vec![0.0; k]; n];
        match self {
            TableDistribution::Forest => {
                let n_clusters = 8;
                let centers: Vec<Vec<f64>> = (0..n_clusters)
                    .map(|_| (0..k).map(|_| rng.gen::<f64>()).collect())
                    .collect();
                let normal = Normal::new(0.0, 0.07).expect("valid");
                for p in &mut points {
                    let c = rng.gen_range(0..n_clusters);
                    for (j, v) in p.iter_mut().enumerate() {
                        *v = (centers[c][j] + normal.sample(rng)).clamp(0.0, 1.0);
                    }
                }
            }
            TableDistribution::Power => {
                // One latent heavy-tailed factor drives all dimensions.
                let normal = Normal::new(0.0, 0.08).expect("valid");
                for p in &mut points {
                    let latent = rng.gen::<f64>().powf(2.5);
                    for v in p.iter_mut() {
                        *v = (latent + normal.sample(rng)).clamp(0.0, 1.0);
                    }
                }
            }
            TableDistribution::Higgs => {
                let normal = Normal::new(0.5, 0.18).expect("valid");
                for p in &mut points {
                    for v in p.iter_mut() {
                        let x: f64 = normal.sample(rng);
                        *v = x.clamp(0.0, 1.0);
                    }
                }
            }
            TableDistribution::Weather => {
                for p in &mut points {
                    let t = rng.gen::<f64>();
                    for (j, v) in p.iter_mut().enumerate() {
                        let phase = j as f64 * 0.9;
                        let seasonal = 0.3 * (t * std::f64::consts::TAU * 2.0 + phase).sin();
                        *v = (0.5 + seasonal + 0.15 * (rng.gen::<f64>() - 0.5) + 0.2 * (t - 0.5))
                            .clamp(0.0, 1.0);
                    }
                }
            }
            TableDistribution::Tpch => {
                for p in &mut points {
                    for v in p.iter_mut() {
                        // Zipf-ish over 20 near-discrete values with jitter.
                        let rank = (1.0 / (rng.gen::<f64>() * 0.95 + 0.05)).min(20.0);
                        *v = ((rank / 20.0) + 0.01 * rng.gen::<f64>()).clamp(0.0, 1.0);
                    }
                }
            }
        }
        points
    }
}

/// A selectivity-estimation workload: training and test query datasets
/// over one synthetic table.
#[derive(Debug, Clone)]
pub struct SelectivityWorkload {
    /// Workload name, e.g. `4D-Forest1`.
    pub name: String,
    /// Training queries: features are `[lo_j, hi_j]` per dimension, target
    /// is `ln(selectivity)`.
    pub train: Dataset,
    /// Held-out test queries in the same encoding.
    pub test: Dataset,
}

/// Generates one selectivity workload.
///
/// `n_points` table rows in `dims` dimensions are drawn from `dist`;
/// `n_train`/`n_test` range queries are labelled with their exact
/// selectivity, floored at `1/n_points` (the convention of Dutt et al. so
/// q-error stays finite).
pub fn selectivity_dataset(
    name: &str,
    dist: TableDistribution,
    dims: usize,
    n_points: usize,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> SelectivityWorkload {
    assert!(dims >= 1 && n_points >= 10);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = dist.sample_points(n_points, dims, &mut rng);
    let floor = 1.0 / n_points as f64;

    let make = |count: usize, rng: &mut StdRng| -> Dataset {
        let mut columns = vec![Vec::with_capacity(count); dims * 2];
        let mut y = Vec::with_capacity(count);
        for _ in 0..count {
            // Center the query on a random data point so that queries hit
            // populated regions (as real workloads do).
            let center = &points[rng.gen_range(0..points.len())];
            let mut lo = vec![0.0; dims];
            let mut hi = vec![1.0; dims];
            for j in 0..dims {
                if rng.gen::<f64>() < 0.2 {
                    // Unconstrained dimension (open-sided predicate).
                    continue;
                }
                // Log-uniform width concentrates difficulty at small
                // selectivities, like range predicates in practice.
                let half_width = 0.5 * 10f64.powf(rng.gen::<f64>() * 2.0 - 2.0);
                lo[j] = (center[j] - half_width).max(0.0);
                hi[j] = (center[j] + half_width).min(1.0);
            }
            let hits = points
                .iter()
                .filter(|p| (0..dims).all(|j| p[j] >= lo[j] && p[j] <= hi[j]))
                .count();
            let sel = (hits as f64 / n_points as f64).max(floor);
            for j in 0..dims {
                columns[2 * j].push(lo[j]);
                columns[2 * j + 1].push(hi[j]);
            }
            y.push(sel.ln());
        }
        Dataset::new(name, Task::Regression, columns, y).expect("consistent")
    };

    let train = make(n_train, &mut rng);
    let test = make(n_test, &mut rng);
    SelectivityWorkload {
        name: name.to_string(),
        train,
        test,
    }
}

/// The ten workloads of the paper's Table 4, at a laptop-friendly scale.
pub fn selectivity_suite(seed: u64) -> Vec<SelectivityWorkload> {
    selectivity_suite_scaled(seed, 20_000, 2_000, 500)
}

/// Like [`selectivity_suite`] with explicit table and query counts
/// (smaller values keep tests fast).
pub fn selectivity_suite_scaled(
    seed: u64,
    n_points: usize,
    n_train: usize,
    n_test: usize,
) -> Vec<SelectivityWorkload> {
    use TableDistribution::*;
    let specs: [(&str, TableDistribution, usize); 10] = [
        ("2D-Forest", Forest, 2),
        ("2D-Power", Power, 2),
        ("2D-TPCH", Tpch, 2),
        ("4D-Forest1", Forest, 4),
        ("4D-Forest2", Forest, 4),
        ("4D-Power", Power, 4),
        ("7D-Higgs", Higgs, 7),
        ("7D-Power", Power, 7),
        ("7D-Weather", Weather, 7),
        ("10D-Forest", Forest, 10),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, (name, dist, dims))| {
            selectivity_dataset(
                name,
                *dist,
                *dims,
                n_points,
                n_train,
                n_test,
                seed.wrapping_add(i as u64 * 1000 + 7),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes() {
        let w = selectivity_dataset("2D-Forest", TableDistribution::Forest, 2, 2000, 300, 100, 0);
        assert_eq!(w.train.n_rows(), 300);
        assert_eq!(w.test.n_rows(), 100);
        assert_eq!(w.train.n_features(), 4, "lo/hi per dimension");
        assert_eq!(w.train.task(), Task::Regression);
    }

    #[test]
    fn selectivities_are_valid_log_probabilities() {
        let w = selectivity_dataset("t", TableDistribution::Power, 3, 1000, 200, 50, 1);
        for &ln_sel in w.train.target() {
            let sel = ln_sel.exp();
            assert!((1.0 / 1000.0 - 1e-12..=1.0 + 1e-12).contains(&sel), "{sel}");
        }
    }

    #[test]
    fn bounds_are_ordered() {
        let w = selectivity_dataset("t", TableDistribution::Higgs, 4, 500, 100, 20, 2);
        for i in 0..w.train.n_rows() {
            for j in 0..4 {
                let lo = w.train.value(i, 2 * j);
                let hi = w.train.value(i, 2 * j + 1);
                assert!(lo <= hi, "row {i} dim {j}: [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn labels_match_recomputed_selectivity_floor() {
        // The floor keeps every query answerable: exp(min label) = 1/n.
        let n = 500;
        let w = selectivity_dataset("t", TableDistribution::Tpch, 2, n, 300, 10, 3);
        let min = w
            .train
            .target()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(min >= (1.0 / n as f64).ln() - 1e-9);
    }

    #[test]
    fn suite_covers_table4() {
        let suite = selectivity_suite_scaled(0, 1000, 50, 20);
        assert_eq!(suite.len(), 10);
        let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        assert!(names.contains(&"2D-Forest"));
        assert!(names.contains(&"10D-Forest"));
        assert_eq!(suite[3].train.n_features(), 8);
    }

    #[test]
    fn higher_dims_have_harder_small_selectivities() {
        // Sanity: 7D queries over independent-ish data reach smaller
        // selectivities than 2D (more constrained dimensions).
        let w2 = selectivity_dataset("2d", TableDistribution::Higgs, 2, 3000, 400, 10, 4);
        let w7 = selectivity_dataset("7d", TableDistribution::Higgs, 7, 3000, 400, 10, 4);
        let mean = |d: &Dataset| d.target().iter().sum::<f64>() / d.n_rows() as f64;
        assert!(mean(&w7.train) < mean(&w2.train));
    }

    #[test]
    fn distributions_differ() {
        let mut rng_a = StdRng::seed_from_u64(0);
        let mut rng_b = StdRng::seed_from_u64(0);
        let forest = TableDistribution::Forest.sample_points(500, 2, &mut rng_a);
        let higgs = TableDistribution::Higgs.sample_points(500, 2, &mut rng_b);
        // Forest is clustered: its per-dimension variance differs from the
        // unimodal Higgs distribution.
        let var = |pts: &[Vec<f64>]| {
            let m = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
            pts.iter().map(|p| (p[0] - m) * (p[0] - m)).sum::<f64>() / pts.len() as f64
        };
        assert!((var(&forest) - var(&higgs)).abs() > 1e-3);
    }
}
