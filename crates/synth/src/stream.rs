//! Drifting-stream generator for online AutoML.
//!
//! ChaCha-style online AutoML (Wu et al., ICML 2021) is evaluated on
//! piecewise-stationary streams: the concept is fixed within a segment
//! and shifts abruptly at segment boundaries. [`DriftStream`] produces
//! such a stream as a *pure function of (seed, chunk index)*: chunk `i`
//! is bit-identical no matter in which order, in which process, or how
//! many times it is generated. That property is what lets the online
//! determinism suite kill a stream mid-flight and regenerate the exact
//! same chunks on resume.
//!
//! Each segment `s = i / segment_chunks` draws a fresh hyperplane
//! normal `w_s` (and intercept) from a seed derived only from
//! `(seed, s)`; rows of chunk `i` are drawn from a seed derived only
//! from `(seed, i)`. Labels are `sign(x . w_s + b_s + noise)`, so the
//! decision boundary rotates at every segment boundary and a champion
//! fitted on one segment degrades measurably on the next.
//!
//! # Example
//!
//! ```
//! use flaml_synth::DriftStream;
//!
//! let stream = DriftStream::new(7);
//! let a = stream.chunk(3);
//! let b = stream.chunk(3);
//! assert_eq!(a.fingerprint(), b.fingerprint());
//! ```

use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// A deterministic piecewise-stationary binary-classification stream.
///
/// The stream is an infinite sequence of chunks; [`DriftStream::chunk`]
/// materializes any chunk independently. Concept shifts happen exactly
/// at chunk indices that are multiples of `segment_chunks`.
#[derive(Debug, Clone, Copy)]
pub struct DriftStream {
    /// Master seed; everything else is derived from it.
    pub seed: u64,
    /// Rows per chunk.
    pub rows: usize,
    /// Numeric features per row.
    pub features: usize,
    /// Chunks per stationary segment (the concept shifts every
    /// `segment_chunks` chunks). Must be >= 1.
    pub segment_chunks: usize,
    /// Std-dev of the additive noise on the decision margin; larger
    /// means noisier labels (`~0.1` easy, `~0.5` hard).
    pub margin_noise: f64,
}

impl DriftStream {
    /// A stream with library defaults: 120-row chunks, 6 features,
    /// a concept shift every 8 chunks, moderate label noise.
    pub fn new(seed: u64) -> DriftStream {
        DriftStream {
            seed,
            rows: 120,
            features: 6,
            segment_chunks: 8,
            margin_noise: 0.2,
        }
    }

    /// The segment (concept) index that chunk `index` belongs to.
    pub fn segment_of(&self, index: usize) -> usize {
        index / self.segment_chunks.max(1)
    }

    /// The hyperplane normal and intercept of segment `segment`,
    /// derived purely from `(seed, segment)`. Consecutive segments are
    /// guaranteed to disagree: the draw is rejected (re-salted) until
    /// its cosine similarity with the previous segment's normal drops
    /// below 0.2, so every boundary is a real concept shift.
    pub fn concept(&self, segment: usize) -> (Vec<f64>, f64) {
        let mut w = self.draw_concept(segment, 0);
        if segment > 0 {
            let (prev, _) = self.concept(segment - 1);
            let mut salt = 1u64;
            while cosine(&w.0, &prev) > 0.2 {
                w = self.draw_concept(segment, salt);
                salt += 1;
            }
        }
        w
    }

    fn draw_concept(&self, segment: usize, salt: u64) -> (Vec<f64>, f64) {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, segment_tag(segment), salt));
        let unit = Normal::new(0.0, 1.0).expect("valid");
        let v: Vec<f64> = (0..self.features).map(|_| unit.sample(&mut rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        let w: Vec<f64> = v.into_iter().map(|x| x / norm).collect();
        let b = rng.gen::<f64>() * 0.2 - 0.1;
        (w, b)
    }

    /// Materializes chunk `index` of the stream. Pure in
    /// `(self, index)`: repeated calls return bit-identical datasets
    /// (equal [`Dataset::fingerprint`]).
    pub fn chunk(&self, index: usize) -> Dataset {
        assert!(self.rows >= 2 && self.features >= 1);
        let (w, b) = self.concept(self.segment_of(index));
        let mut rng = StdRng::seed_from_u64(mix(self.seed, 0x6368_756e_6b00_0000, index as u64));
        let noise = Normal::new(0.0, self.margin_noise.max(1e-9)).expect("valid");
        let mut columns = vec![Vec::with_capacity(self.rows); self.features];
        let mut y = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            let mut margin = b;
            for (j, col) in columns.iter_mut().enumerate() {
                let x = rng.gen::<f64>() * 2.0 - 1.0;
                margin += x * w[j];
                col.push(x);
            }
            margin += noise.sample(&mut rng);
            y.push(if margin > 0.0 { 1.0 } else { 0.0 });
        }
        // Tiny chunks can come out single-class under heavy noise; force
        // at least one row of each class so chunk-level metrics (and
        // stratified resampling downstream) stay well defined. The fix
        // is itself deterministic: flip the first row's label.
        if y.iter().all(|&v| v == y[0]) {
            y[0] = 1.0 - y[0];
        }
        let name = format!("drift-s{}-c{}", self.segment_of(index), index);
        Dataset::new(&name, Task::Binary, columns, y).expect("generator output is consistent")
    }
}

/// SplitMix64-style mixing of three words into one RNG seed.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(c);
    z ^= z >> 30;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn segment_tag(segment: usize) -> u64 {
    0x7365_676d_656e_7400u64 ^ (segment as u64)
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_pure_in_seed_and_index() {
        let s1 = DriftStream::new(11);
        let s2 = DriftStream::new(11);
        for i in [0, 3, 8, 17] {
            assert_eq!(s1.chunk(i).fingerprint(), s2.chunk(i).fingerprint());
        }
        // Order independence: generating 17 first changes nothing.
        let early = s1.chunk(2).fingerprint();
        let _ = s1.chunk(17);
        assert_eq!(s1.chunk(2).fingerprint(), early);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            DriftStream::new(1).chunk(0).fingerprint(),
            DriftStream::new(2).chunk(0).fingerprint()
        );
    }

    #[test]
    fn segments_shift_the_concept() {
        let s = DriftStream::new(5);
        let (w0, _) = s.concept(0);
        let (w1, _) = s.concept(1);
        assert!(cosine(&w0, &w1) < 0.2, "boundary must be a real shift");
        // Within a segment the concept is constant.
        assert_eq!(s.segment_of(0), s.segment_of(7));
        assert_ne!(s.segment_of(7), s.segment_of(8));
    }

    #[test]
    fn chunks_are_two_class_and_well_formed() {
        let s = DriftStream {
            rows: 24,
            ..DriftStream::new(9)
        };
        for i in 0..12 {
            let d = s.chunk(i);
            assert_eq!(d.n_rows(), 24);
            assert_eq!(d.n_features(), 6);
            assert_eq!(d.task(), Task::Binary);
            assert_eq!(d.distinct_labels(), Some(2));
        }
    }
}
