//! Regression dataset generators, modeled on the PMLB families the paper
//! uses (friedman, 2dplanes/pwLinear-style piecewise targets, houses-style
//! multiplicative interactions).

use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

fn uniform_columns(n: usize, d: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..d)
        .map(|_| (0..n).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

/// Friedman #1: `10 sin(pi x0 x1) + 20 (x2 - 0.5)^2 + 10 x3 + 5 x4 + noise`
/// with `d >= 5` features (extras are noise).
pub fn friedman1(n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    assert!(d >= 5);
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = uniform_columns(n, d, &mut rng);
    let normal = Normal::new(0.0, noise.max(1e-12)).expect("valid noise");
    let y: Vec<f64> = (0..n)
        .map(|i| {
            10.0 * (std::f64::consts::PI * cols[0][i] * cols[1][i]).sin()
                + 20.0 * (cols[2][i] - 0.5).powi(2)
                + 10.0 * cols[3][i]
                + 5.0 * cols[4][i]
                + normal.sample(&mut rng)
        })
        .collect();
    Dataset::new("friedman1", Task::Regression, cols, y).expect("consistent")
}

/// Friedman #2: `sqrt(x0^2 + (x1 x2 - 1/(x1 x3))^2) + noise` over the
/// standard ranges.
pub fn friedman2(n: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 100.0).collect();
    let x1: Vec<f64> = (0..n)
        .map(|_| 40.0 * std::f64::consts::PI + rng.gen::<f64>() * 520.0 * std::f64::consts::PI)
        .collect();
    let x2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x3: Vec<f64> = (0..n).map(|_| 1.0 + rng.gen::<f64>() * 10.0).collect();
    let normal = Normal::new(0.0, noise.max(1e-12)).expect("valid noise");
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let inner = x1[i] * x2[i] - 1.0 / (x1[i] * x3[i]);
            (x0[i] * x0[i] + inner * inner).sqrt() + normal.sample(&mut rng)
        })
        .collect();
    Dataset::new("friedman2", Task::Regression, vec![x0, x1, x2, x3], y).expect("consistent")
}

/// Friedman #3: `atan((x1 x2 - 1/(x1 x3)) / x0) + noise`.
pub fn friedman3(n: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| 1.0 + rng.gen::<f64>() * 99.0).collect();
    let x1: Vec<f64> = (0..n)
        .map(|_| 40.0 * std::f64::consts::PI + rng.gen::<f64>() * 520.0 * std::f64::consts::PI)
        .collect();
    let x2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x3: Vec<f64> = (0..n).map(|_| 1.0 + rng.gen::<f64>() * 10.0).collect();
    let normal = Normal::new(0.0, noise.max(1e-12)).expect("valid noise");
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let inner = x1[i] * x2[i] - 1.0 / (x1[i] * x3[i]);
            (inner / x0[i]).atan() + normal.sample(&mut rng)
        })
        .collect();
    Dataset::new("friedman3", Task::Regression, vec![x0, x1, x2, x3], y).expect("consistent")
}

/// A plain noisy linear target over `d` features (`mv`-style).
pub fn plane(n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    assert!(d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
    let cols = uniform_columns(n, d, &mut rng);
    let normal = Normal::new(0.0, noise.max(1e-12)).expect("valid noise");
    let y: Vec<f64> = (0..n)
        .map(|i| {
            cols.iter().zip(&w).map(|(c, wi)| c[i] * wi).sum::<f64>() + normal.sample(&mut rng)
        })
        .collect();
    Dataset::new("plane", Task::Regression, cols, y).expect("consistent")
}

/// Piecewise-linear target (`pwLinear`-style): the slope vector switches
/// by the sign of the first feature.
pub fn piecewise(n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    assert!(d >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let w1: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
    let w2: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
    let cols: Vec<Vec<f64>> = (0..d)
        .map(|_| (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        .collect();
    let normal = Normal::new(0.0, noise.max(1e-12)).expect("valid noise");
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let w = if cols[0][i] >= 0.0 { &w1 } else { &w2 };
            cols.iter().zip(w).map(|(c, wi)| c[i] * wi).sum::<f64>() + normal.sample(&mut rng)
        })
        .collect();
    Dataset::new("piecewise", Task::Regression, cols, y).expect("consistent")
}

/// Multiplicative interactions with heavy-tailed output (`houses`-style):
/// `y = exp(sum of a few log-scale effects)`.
pub fn multiplicative(n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    assert!(d >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = uniform_columns(n, d, &mut rng);
    let normal = Normal::new(0.0, noise.max(1e-12)).expect("valid noise");
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let log_effect = 1.5 * cols[0][i] + 0.8 * cols[1][i] * cols[2][i]
                - 0.6 * (cols[2][i] - 0.5).abs()
                + normal.sample(&mut rng);
            log_effect.exp() * 100.0
        })
        .collect();
    Dataset::new("multiplicative", Task::Regression, cols, y).expect("consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn friedman1_shapes() {
        let d = friedman1(500, 8, 1.0, 0);
        assert_eq!(d.n_rows(), 500);
        assert_eq!(d.n_features(), 8);
        assert_eq!(d.task(), Task::Regression);
    }

    #[test]
    fn friedman1_signal_dominates_small_noise() {
        // With tiny noise, y variance must reflect the signal (~ 23 std).
        let d = friedman1(2000, 5, 0.01, 1);
        let y = d.target();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        assert!(var > 10.0, "variance {var}");
    }

    #[test]
    fn friedman2_and_3_are_finite() {
        for d in [friedman2(300, 1.0, 2), friedman3(300, 0.01, 3)] {
            assert!(d.target().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn plane_is_nearly_linear() {
        // With almost no noise, the best linear fit explains ~everything:
        // check correlation of y with its own linear reconstruction via
        // least squares on one feature subset is high enough by proxy of
        // bounded residual variance given the construction.
        let d = plane(1000, 4, 1e-9, 4);
        assert!(d.target().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn piecewise_switches_slope() {
        let d = piecewise(4000, 3, 1e-9, 5);
        assert!(d.target().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn multiplicative_is_heavy_tailed() {
        let d = multiplicative(5000, 4, 0.3, 6);
        let y = d.target();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let max = y.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 3.0 * mean, "max {max} vs mean {mean}");
        assert!(y.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            friedman1(100, 5, 1.0, 7).target(),
            friedman1(100, 5, 1.0, 7).target()
        );
        assert_ne!(
            friedman1(100, 5, 1.0, 7).target(),
            friedman1(100, 5, 1.0, 8).target()
        );
    }
}
