//! Mmap-able binary model artifacts.
//!
//! The JSON artifact (`flaml-serve`) is the portable interchange form:
//! human-inspectable, schema-tolerant, byte-order-free. This crate adds
//! the *serving* form — a versioned, little-endian, 64-byte-aligned
//! blob whose on-disk bytes **are** the [`CompiledModel`]
//! structure-of-arrays node slabs. Opening one is `mmap` + header
//! validation + an FNV-1a fingerprint pass: zero deserialization, no
//! allocation proportional to model size, and `MAP_SHARED` read-only
//! pages mean every process serving the same artifact shares one
//! physical copy through the page cache.
//!
//! The contract that makes the format safe to prefer is
//! **bit-identity**: a [`BlobModel`] predicts exactly the same bits as
//! the JSON-loaded [`CompiledModel`] for every learner, because both
//! feed the single [`flaml_serve::ModelView`] evaluator. The two layout
//! options ([`BlobOptions`]) keep that contract by construction —
//! hot-first ordering is a pure node permutation, and f32 quantization
//! is only applied to slabs whose every value round-trips
//! `f64 → f32 → f64` bit-exactly (widening reads then restore the
//! original doubles).
//!
//! ```no_run
//! use flaml_blob::{save_blob, BlobModel, BlobOptions};
//! # fn demo(compiled: flaml_serve::CompiledModel, request: flaml_data::DatasetView) {
//! save_blob(&compiled, "model.artifact.blob", BlobOptions::tuned()).unwrap();
//! let blob = BlobModel::open("model.artifact.blob").unwrap();
//! let pred = blob.predict(&request); // bit-identical to compiled.predict
//! # let _ = pred;
//! # }
//! ```

#![warn(missing_docs)]

mod format;
mod mapping;
mod model;

pub use format::{
    blob_fingerprint, encode_blob, fingerprint_bytes, save_blob, save_blob_with, BlobOptions,
    BLOB_ALIGN, BLOB_MAGIC, BLOB_VERSION, ENDIAN_MARK, FLAG_HOT_FIRST, FLAG_QUANTIZED,
};
pub use model::BlobModel;

// The error and model types a blob consumer needs, so depending on
// `flaml-serve` directly is optional.
pub use flaml_serve::{ArtifactError, CompiledModel};

use std::fmt;
use std::str::FromStr;

/// Which on-disk artifact representation to write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ArtifactFormat {
    /// The portable JSON document (`.artifact.json`) — default.
    #[default]
    Json,
    /// The mmap-able binary blob (`.artifact.blob`).
    Blob,
}

impl ArtifactFormat {
    /// Every supported format, in preference order for loading (blob
    /// first: loaders that find both siblings take the cheaper one).
    pub const ALL: [ArtifactFormat; 2] = [ArtifactFormat::Blob, ArtifactFormat::Json];

    /// The file-name suffix artifacts of this format carry.
    pub fn suffix(self) -> &'static str {
        match self {
            ArtifactFormat::Json => ".artifact.json",
            ArtifactFormat::Blob => ".artifact.blob",
        }
    }

    /// The CLI name (`json` / `blob`).
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactFormat::Json => "json",
            ArtifactFormat::Blob => "blob",
        }
    }
}

impl fmt::Display for ArtifactFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ArtifactFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<ArtifactFormat, String> {
        match s {
            "json" => Ok(ArtifactFormat::Json),
            "blob" => Ok(ArtifactFormat::Blob),
            other => Err(format!("unknown artifact format {other:?} (json|blob)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_round_trip() {
        for f in ArtifactFormat::ALL {
            assert_eq!(f.as_str().parse::<ArtifactFormat>().unwrap(), f);
        }
        assert!("yaml".parse::<ArtifactFormat>().is_err());
        assert_eq!(ArtifactFormat::default(), ArtifactFormat::Json);
    }

    #[test]
    fn suffixes_are_distinct_siblings() {
        assert_ne!(ArtifactFormat::Json.suffix(), ArtifactFormat::Blob.suffix());
        for f in ArtifactFormat::ALL {
            assert!(f.suffix().starts_with(".artifact."));
        }
    }
}
