//! Opening and serving a blob: validate once, then predict straight
//! off the mapped bytes.
//!
//! [`BlobModel::open`] does all the work the format ever requires:
//! header checks (magic, version, endianness, flags), an FNV-1a
//! fingerprint pass over the whole file, and a structural walk that proves
//! every section the model graph references is present, aligned,
//! in-bounds and internally consistent (child indices strictly
//! increase, so tree evaluation provably terminates). What it does
//! *not* do is deserialize: the parsed representation is a tree of
//! section descriptors — offsets and counts into the mapping — and
//! [`BlobModel::view`] turns those into borrowed slices feeding the
//! same [`ModelView`] evaluator that owned [`CompiledModel`]s use.
//! Every rejection is a typed [`ArtifactError`]; no input bytes can
//! make `open` panic or `predict` loop.

use crate::format::{self, Elem};
use crate::mapping::Mapping;
use flaml_data::{DatasetView, Task};
use flaml_learners::Encoding;
use flaml_metrics::Pred;
use flaml_serve::{
    ArtifactError, CompiledLinear, CompiledModel, CutsRef, FloatSlab, ForestView, GbdtView,
    LeafFlags, ModelView,
};
use flaml_store::Storage;
use std::collections::HashMap;
use std::path::Path;

/// Stacked ensembles deeper than this are rejected at open — far above
/// anything the search produces, low enough that a crafted file cannot
/// recurse the parser off the stack.
const MAX_STACK_DEPTH: usize = 32;

fn layout(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Layout(msg.into())
}

/// A validated section: `count` elements starting `off` bytes into the
/// file. Ranges, not slices — the mapping and its views live in the
/// same struct, so views are minted on demand instead of self-borrowed.
#[derive(Debug, Clone, Copy)]
struct Slab {
    off: usize,
    count: usize,
}

/// A float slab plus the precision it was stored at.
#[derive(Debug, Clone, Copy)]
struct FloatRange {
    slab: Slab,
    quantized: bool,
}

#[derive(Debug)]
struct GbdtNode {
    task: Task,
    n_groups: usize,
    init_scores: Slab,
    cuts_offsets: Slab,
    cuts_values: FloatRange,
    tree_roots: Slab,
    feature: Slab,
    threshold: Slab,
    left: Slab,
    right: Slab,
    leaf_value: Slab,
    is_leaf: Slab,
}

#[derive(Debug)]
struct ForestNode {
    task: Task,
    n_features: usize,
    leaf_width: usize,
    tree_roots: Slab,
    feature: Slab,
    threshold: FloatRange,
    left: Slab,
    right: Slab,
    is_leaf: Slab,
    values: Slab,
}

/// The parsed model graph: section descriptors for slab models, small
/// owned parts for linear ones (whose evaluator needs an owned
/// [`flaml_learners::LinearModel`] anyway).
#[derive(Debug)]
enum Node {
    Gbdt(GbdtNode),
    Forest(ForestNode),
    Linear(CompiledLinear),
    Stacked {
        meta: CompiledLinear,
        members: Vec<Node>,
        task: Task,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    elem: Elem,
    off: usize,
    count: usize,
}

/// A model served directly from blob bytes — a memory mapping (or an
/// aligned heap copy when the storage declines mapping) plus the
/// validated section descriptors into it. Prediction goes through the
/// exact [`ModelView`] evaluator owned [`CompiledModel`]s use, so
/// outputs are bit-identical to the JSON-artifact path.
#[derive(Debug)]
pub struct BlobModel {
    map: Mapping,
    flags: u32,
    fingerprint: u64,
    root: Node,
}

impl BlobModel {
    /// Maps and validates the blob at `path` on the local filesystem.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the file cannot be read,
    /// [`ArtifactError::BadMagic`] / [`ArtifactError::Version`] for
    /// foreign or future files, [`ArtifactError::FingerprintMismatch`]
    /// for payload corruption, [`ArtifactError::Layout`] for truncation
    /// and every structural violation.
    pub fn open(path: impl AsRef<Path>) -> Result<BlobModel, ArtifactError> {
        BlobModel::parse(Mapping::from_file(path.as_ref())?)
    }

    /// [`BlobModel::open`] against an explicit [`Storage`]. Storages
    /// backed by real files expose a mappable path
    /// ([`Storage::mmap_source`]) and get the zero-copy mapping;
    /// fault-injecting or virtual storages decline, and the blob is
    /// read through [`Storage::read`] into an aligned buffer — slower,
    /// but every byte still flows through the storage's fault surface.
    ///
    /// # Errors
    ///
    /// Same as [`BlobModel::open`], with read failures surfacing as
    /// [`ArtifactError::Storage`].
    pub fn open_with(storage: &dyn Storage, path: &Path) -> Result<BlobModel, ArtifactError> {
        match storage.mmap_source(path) {
            Some(real) => BlobModel::parse(Mapping::from_file(&real)?),
            None => {
                let bytes = storage.read(path)?;
                BlobModel::parse(Mapping::from_bytes(&bytes))
            }
        }
    }

    /// Validates blob bytes already in memory (copied into an aligned
    /// buffer).
    ///
    /// # Errors
    ///
    /// Same as [`BlobModel::open`].
    pub fn from_bytes(bytes: &[u8]) -> Result<BlobModel, ArtifactError> {
        BlobModel::parse(Mapping::from_bytes(bytes))
    }

    fn parse(map: Mapping) -> Result<BlobModel, ArtifactError> {
        if cfg!(target_endian = "big") {
            return Err(layout(
                "blob artifacts are little-endian memory images; use the JSON artifact \
                 format on big-endian hosts",
            ));
        }
        let bytes = map.bytes();
        let len = bytes.len();
        if len < format::HEADER_LEN {
            return Err(layout(format!(
                "truncated header: {len} bytes, need {}",
                format::HEADER_LEN
            )));
        }
        if bytes[0..8] != format::BLOB_MAGIC {
            return Err(ArtifactError::BadMagic {
                found: String::from_utf8_lossy(&bytes[0..8]).into_owned(),
            });
        }
        let version = read_u32(bytes, 8);
        if version != format::BLOB_VERSION {
            return Err(ArtifactError::Version {
                found: version,
                supported: format::BLOB_VERSION,
            });
        }
        if read_u32(bytes, 12) != format::ENDIAN_MARK {
            return Err(layout("endianness marker mismatch"));
        }
        let flags = read_u32(bytes, 16);
        if flags & !format::KNOWN_FLAGS != 0 {
            return Err(layout(format!("unknown layout flags {flags:#010x}")));
        }
        let n_sections = read_u32(bytes, 20) as usize;
        let n_models = read_u32(bytes, 24) as usize;
        let payload_len = read_u64(bytes, 32);
        if payload_len != (len - format::HEADER_LEN) as u64 {
            return Err(layout(format!(
                "payload length {payload_len} does not match file ({} payload bytes)",
                len - format::HEADER_LEN
            )));
        }
        let expected = read_u64(bytes, 40);
        let found = format::blob_fingerprint(bytes);
        if found != expected {
            return Err(ArtifactError::FingerprintMismatch { expected, found });
        }

        let table_len = n_sections
            .checked_mul(format::SECTION_ENTRY_LEN)
            .ok_or_else(|| layout("section count overflows"))?;
        let table_end = format::HEADER_LEN + table_len;
        if table_end > len {
            return Err(layout(format!(
                "section table of {n_sections} entries exceeds file length {len}"
            )));
        }
        let mut sections: HashMap<u32, Entry> = HashMap::with_capacity(n_sections);
        for i in 0..n_sections {
            let at = format::HEADER_LEN + i * format::SECTION_ENTRY_LEN;
            let tag = read_u32(bytes, at);
            let elem = Elem::from_code(read_u32(bytes, at + 4))
                .ok_or_else(|| layout(format!("section {tag:#x}: unknown element type")))?;
            let off = read_u64(bytes, at + 8);
            let count = read_u64(bytes, at + 16);
            let off = usize::try_from(off)
                .map_err(|_| layout(format!("section {tag:#x}: offset out of range")))?;
            let count = usize::try_from(count)
                .map_err(|_| layout(format!("section {tag:#x}: count out of range")))?;
            if off % crate::format::BLOB_ALIGN != 0 {
                return Err(layout(format!(
                    "section {tag:#x}: offset {off} not {}-byte aligned",
                    crate::format::BLOB_ALIGN
                )));
            }
            let nbytes = count
                .checked_mul(elem.size())
                .ok_or_else(|| layout(format!("section {tag:#x}: byte length overflows")))?;
            let end = off
                .checked_add(nbytes)
                .ok_or_else(|| layout(format!("section {tag:#x}: extent overflows")))?;
            if off < table_end || end > len {
                return Err(layout(format!(
                    "section {tag:#x}: bytes {off}..{end} outside payload {table_end}..{len}"
                )));
            }
            if sections.insert(tag, Entry { elem, off, count }).is_some() {
                return Err(layout(format!("duplicate section tag {tag:#x}")));
            }
        }

        let mut parser = Parser {
            bytes,
            sections: &sections,
            next_model: 0,
        };
        let root = parser.parse_node(0)?;
        if parser.next_model != n_models {
            return Err(layout(format!(
                "header declares {n_models} models, structure contains {}",
                parser.next_model
            )));
        }
        let fingerprint = expected;
        Ok(BlobModel {
            map,
            flags,
            fingerprint,
            root,
        })
    }

    /// Renders the mapped slabs as the shared [`ModelView`] evaluator
    /// input. No allocation beyond stacked-member vectors.
    pub fn view(&self) -> ModelView<'_> {
        node_view(&self.root, self.map.bytes())
    }

    /// Predicts on `data` straight off the mapped bytes — bit-identical
    /// to [`CompiledModel::predict`] of the same model.
    pub fn predict(&self, data: impl Into<DatasetView>) -> Pred {
        let data: DatasetView = data.into();
        self.view().predict_view(&data)
    }

    /// Materializes an owned [`CompiledModel`] (a slab copy; see
    /// [`ModelView::to_compiled`] for the node-order caveat on
    /// hot-first blobs).
    pub fn to_compiled(&self) -> CompiledModel {
        self.view().to_compiled()
    }

    /// The payload fingerprint recorded in (and verified against) the
    /// header.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether tree nodes are stored in hot-first (BFS) order.
    pub fn hot_first(&self) -> bool {
        self.flags & format::FLAG_HOT_FIRST != 0
    }

    /// Whether any threshold/cut section is stored quantized to `f32`.
    pub fn quantized(&self) -> bool {
        self.flags & format::FLAG_QUANTIZED != 0
    }

    /// Whether the bytes are a shared file mapping (as opposed to an
    /// owned aligned copy).
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    /// Total blob size in bytes.
    pub fn n_bytes(&self) -> usize {
        self.map.bytes().len()
    }

    /// The task the model predicts.
    pub fn task(&self) -> Task {
        self.view().task()
    }

    /// Feature columns the model expects.
    pub fn n_features(&self) -> usize {
        self.view().n_features()
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Reinterprets a validated slab as a typed slice. Soundness: `parse`
/// proved `off + count * size_of::<T>() <= bytes.len()` and
/// `off % 64 == 0`, and the mapping base is 64-byte-aligned (page
/// alignment or the aligned heap buffer), so the pointer is aligned
/// and in-bounds for all `T` the format stores.
fn slab_slice<'a, T>(bytes: &'a [u8], slab: &Slab) -> &'a [T] {
    debug_assert!(slab.off + slab.count * std::mem::size_of::<T>() <= bytes.len());
    debug_assert_eq!(bytes.as_ptr() as usize % crate::format::BLOB_ALIGN, 0);
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(slab.off).cast::<T>(), slab.count) }
}

fn float_slab<'a>(bytes: &'a [u8], range: &FloatRange) -> FloatSlab<'a> {
    if range.quantized {
        FloatSlab::F32(slab_slice::<f32>(bytes, &range.slab))
    } else {
        FloatSlab::F64(slab_slice::<f64>(bytes, &range.slab))
    }
}

fn node_view<'a>(node: &'a Node, bytes: &'a [u8]) -> ModelView<'a> {
    match node {
        Node::Gbdt(n) => ModelView::Gbdt(GbdtView {
            task: n.task,
            n_groups: n.n_groups,
            init_scores: slab_slice(bytes, &n.init_scores),
            cuts: CutsRef::Flat {
                offsets: slab_slice(bytes, &n.cuts_offsets),
                values: float_slab(bytes, &n.cuts_values),
            },
            tree_roots: slab_slice(bytes, &n.tree_roots),
            feature: slab_slice(bytes, &n.feature),
            threshold: slab_slice(bytes, &n.threshold),
            left: slab_slice(bytes, &n.left),
            right: slab_slice(bytes, &n.right),
            leaf_value: slab_slice(bytes, &n.leaf_value),
            is_leaf: LeafFlags::Bytes(slab_slice(bytes, &n.is_leaf)),
        }),
        Node::Forest(n) => ModelView::Forest(ForestView {
            task: n.task,
            n_features: n.n_features,
            leaf_width: n.leaf_width,
            tree_roots: slab_slice(bytes, &n.tree_roots),
            feature: slab_slice(bytes, &n.feature),
            threshold: float_slab(bytes, &n.threshold),
            left: slab_slice(bytes, &n.left),
            right: slab_slice(bytes, &n.right),
            is_leaf: LeafFlags::Bytes(slab_slice(bytes, &n.is_leaf)),
            values: slab_slice(bytes, &n.values),
        }),
        Node::Linear(m) => ModelView::Linear(m),
        Node::Stacked {
            meta,
            members,
            task,
        } => ModelView::Stacked {
            members: members.iter().map(|m| node_view(m, bytes)).collect(),
            meta,
            task: *task,
        },
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    sections: &'a HashMap<u32, Entry>,
    next_model: usize,
}

impl Parser<'_> {
    fn section(&self, model: u32, kind: u32, elem: Elem) -> Result<Slab, ArtifactError> {
        let tag = format::section_tag(model, kind);
        let entry = self
            .sections
            .get(&tag)
            .ok_or_else(|| layout(format!("model {model}: missing section kind {kind}")))?;
        if entry.elem != elem {
            return Err(layout(format!(
                "model {model}: section kind {kind} has element code {}, expected {}",
                entry.elem.code(),
                elem.code()
            )));
        }
        Ok(Slab {
            off: entry.off,
            count: entry.count,
        })
    }

    /// A float section that may be stored `f64` or (quantized) `f32`.
    fn float_section(&self, model: u32, kind: u32) -> Result<FloatRange, ArtifactError> {
        let tag = format::section_tag(model, kind);
        let entry = self
            .sections
            .get(&tag)
            .ok_or_else(|| layout(format!("model {model}: missing section kind {kind}")))?;
        let quantized = match entry.elem {
            Elem::F64 => false,
            Elem::F32 => true,
            other => {
                return Err(layout(format!(
                    "model {model}: section kind {kind} has element code {}, expected f64 or f32",
                    other.code()
                )))
            }
        };
        Ok(FloatRange {
            slab: Slab {
                off: entry.off,
                count: entry.count,
            },
            quantized,
        })
    }

    fn meta(&self, model: u32, min_words: usize) -> Result<Vec<u64>, ArtifactError> {
        let slab = self.section(model, format::KIND_META, Elem::U64)?;
        if slab.count < min_words {
            return Err(layout(format!(
                "model {model}: meta stream has {} words, need {min_words}",
                slab.count
            )));
        }
        Ok((0..slab.count)
            .map(|i| read_u64(self.bytes, slab.off + i * 8))
            .collect())
    }

    fn task_of(&self, model: u32, tag: u64, k: u64) -> Result<Task, ArtifactError> {
        match (tag, k) {
            (format::TASK_REGRESSION, 0) => Ok(Task::Regression),
            (format::TASK_BINARY, 0) => Ok(Task::Binary),
            (format::TASK_MULTICLASS, k) if k >= 2 => Ok(Task::MultiClass(k as usize)),
            _ => Err(layout(format!(
                "model {model}: invalid task encoding ({tag}, {k})"
            ))),
        }
    }

    fn parse_node(&mut self, depth: usize) -> Result<Node, ArtifactError> {
        if depth > MAX_STACK_DEPTH {
            return Err(layout("model nesting exceeds supported depth"));
        }
        let model = self.next_model as u32;
        self.next_model += 1;
        let meta = self.meta(model, 3)?;
        let task = self.task_of(model, meta[1], meta[2])?;
        match meta[0] {
            format::MODEL_GBDT => self.parse_gbdt(model, &meta, task).map(Node::Gbdt),
            format::MODEL_FOREST => self.parse_forest(model, &meta, task).map(Node::Forest),
            format::MODEL_LINEAR => self.parse_linear(model, &meta, task).map(Node::Linear),
            format::MODEL_STACKED => {
                if meta.len() < 4 {
                    return Err(layout(format!("model {model}: stacked meta too short")));
                }
                let n_members = meta[3] as usize;
                if n_members == 0 || n_members > 1024 {
                    return Err(layout(format!(
                        "model {model}: implausible member count {n_members}"
                    )));
                }
                // Pre-order: meta-learner first, then the members.
                let meta_model = self.next_model as u32;
                let meta_linear = match self.parse_node(depth + 1)? {
                    Node::Linear(l) => l,
                    _ => {
                        return Err(layout(format!(
                            "model {meta_model}: stacked meta-learner must be linear"
                        )))
                    }
                };
                let members = (0..n_members)
                    .map(|_| self.parse_node(depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Node::Stacked {
                    meta: meta_linear,
                    members,
                    task,
                })
            }
            other => Err(layout(format!("model {model}: unknown model kind {other}"))),
        }
    }

    /// Validates the tree slabs shared by gbdt and forest models:
    /// consistent lengths, roots in range, and — for every internal
    /// node — in-range feature and strictly forward child pointers.
    /// Forward pointers are what both writers produce (children follow
    /// parents in DFS and BFS layouts alike) and they make tree
    /// evaluation provably terminating on any accepted file.
    #[allow(clippy::too_many_arguments)]
    fn check_trees(
        &self,
        model: u32,
        n_features: usize,
        tree_roots: &Slab,
        feature: &Slab,
        left: &Slab,
        right: &Slab,
        is_leaf: &Slab,
    ) -> Result<(), ArtifactError> {
        let n_nodes = feature.count;
        for (name, count) in [
            ("left", left.count),
            ("right", right.count),
            ("is_leaf", is_leaf.count),
        ] {
            if count != n_nodes {
                return Err(layout(format!(
                    "model {model}: {name} slab has {count} nodes, feature slab has {n_nodes}"
                )));
            }
        }
        let roots: &[u32] = slab_slice(self.bytes, tree_roots);
        if let Some(&r) = roots.iter().find(|&&r| r as usize >= n_nodes) {
            return Err(layout(format!(
                "model {model}: tree root {r} out of range ({n_nodes} nodes)"
            )));
        }
        let features: &[u32] = slab_slice(self.bytes, feature);
        let lefts: &[u32] = slab_slice(self.bytes, left);
        let rights: &[u32] = slab_slice(self.bytes, right);
        let leaves: &[u8] = slab_slice(self.bytes, is_leaf);
        for i in 0..n_nodes {
            if leaves[i] != 0 {
                continue;
            }
            if features[i] as usize >= n_features {
                return Err(layout(format!(
                    "model {model}: node {i} splits on feature {} of {n_features}",
                    features[i]
                )));
            }
            for (name, child) in [("left", lefts[i]), ("right", rights[i])] {
                let child = child as usize;
                if child <= i || child >= n_nodes {
                    return Err(layout(format!(
                        "model {model}: node {i} has non-forward {name} child {child}"
                    )));
                }
            }
        }
        Ok(())
    }

    fn parse_gbdt(&self, model: u32, meta: &[u64], task: Task) -> Result<GbdtNode, ArtifactError> {
        if meta.len() < 5 {
            return Err(layout(format!("model {model}: gbdt meta too short")));
        }
        let n_features = meta[3] as usize;
        let n_groups = meta[4] as usize;
        let task_groups = match task {
            Task::MultiClass(k) => k,
            Task::Regression | Task::Binary => 1,
        };
        if n_groups != task_groups {
            return Err(layout(format!(
                "model {model}: {n_groups} score groups for a {task_groups}-group task"
            )));
        }
        let init_scores = self.section(model, format::KIND_INIT_SCORES, Elem::F64)?;
        if init_scores.count != n_groups {
            return Err(layout(format!(
                "model {model}: {} init scores for {n_groups} groups",
                init_scores.count
            )));
        }
        let cuts_offsets = self.section(model, format::KIND_CUTS_OFFSETS, Elem::U64)?;
        let cuts_values = self.float_section(model, format::KIND_CUTS_VALUES)?;
        if cuts_offsets.count != n_features + 1 {
            return Err(layout(format!(
                "model {model}: {} cut offsets for {n_features} features",
                cuts_offsets.count
            )));
        }
        let offsets: &[u64] = slab_slice(self.bytes, &cuts_offsets);
        if offsets.first() != Some(&0)
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last() != Some(&(cuts_values.slab.count as u64))
        {
            return Err(layout(format!(
                "model {model}: cut offsets are not a prefix sum over the cut values"
            )));
        }
        let tree_roots = self.section(model, format::KIND_TREE_ROOTS, Elem::U32)?;
        let feature = self.section(model, format::KIND_FEATURE, Elem::U32)?;
        let threshold = self.section(model, format::KIND_THRESHOLD, Elem::U32)?;
        let left = self.section(model, format::KIND_LEFT, Elem::U32)?;
        let right = self.section(model, format::KIND_RIGHT, Elem::U32)?;
        let leaf_value = self.section(model, format::KIND_LEAF_VALUE, Elem::F64)?;
        let is_leaf = self.section(model, format::KIND_IS_LEAF, Elem::U8)?;
        if threshold.count != feature.count || leaf_value.count != feature.count {
            return Err(layout(format!(
                "model {model}: inconsistent node slab lengths"
            )));
        }
        self.check_trees(
            model,
            n_features,
            &tree_roots,
            &feature,
            &left,
            &right,
            &is_leaf,
        )?;
        Ok(GbdtNode {
            task,
            n_groups,
            init_scores,
            cuts_offsets,
            cuts_values,
            tree_roots,
            feature,
            threshold,
            left,
            right,
            leaf_value,
            is_leaf,
        })
    }

    fn parse_forest(
        &self,
        model: u32,
        meta: &[u64],
        task: Task,
    ) -> Result<ForestNode, ArtifactError> {
        if meta.len() < 5 {
            return Err(layout(format!("model {model}: forest meta too short")));
        }
        let n_features = meta[3] as usize;
        let leaf_width = meta[4] as usize;
        if leaf_width == 0 {
            return Err(layout(format!("model {model}: zero leaf width")));
        }
        let tree_roots = self.section(model, format::KIND_TREE_ROOTS, Elem::U32)?;
        let feature = self.section(model, format::KIND_FEATURE, Elem::U32)?;
        let threshold = self.float_section(model, format::KIND_THRESHOLD)?;
        let left = self.section(model, format::KIND_LEFT, Elem::U32)?;
        let right = self.section(model, format::KIND_RIGHT, Elem::U32)?;
        let is_leaf = self.section(model, format::KIND_IS_LEAF, Elem::U8)?;
        let values = self.section(model, format::KIND_VALUES, Elem::F64)?;
        let n_nodes = feature.count;
        if threshold.slab.count != n_nodes {
            return Err(layout(format!(
                "model {model}: inconsistent node slab lengths"
            )));
        }
        if values.count != n_nodes * leaf_width {
            return Err(layout(format!(
                "model {model}: {} leaf values for {n_nodes} nodes of width {leaf_width}",
                values.count
            )));
        }
        self.check_trees(
            model,
            n_features,
            &tree_roots,
            &feature,
            &left,
            &right,
            &is_leaf,
        )?;
        Ok(ForestNode {
            task,
            n_features,
            leaf_width,
            tree_roots,
            feature,
            threshold,
            left,
            right,
            is_leaf,
            values,
        })
    }

    fn parse_linear(
        &self,
        model: u32,
        meta: &[u64],
        task: Task,
    ) -> Result<CompiledLinear, ArtifactError> {
        if meta.len() < 7 {
            return Err(layout(format!("model {model}: linear meta too short")));
        }
        let y_mean = f64::from_bits(meta[3]);
        let y_std = f64::from_bits(meta[4]);
        let n_encodings = meta[5] as usize;
        let n_groups = meta[6] as usize;
        let enc_slab = self.section(model, format::KIND_ENCODINGS, Elem::F64)?;
        if enc_slab.count != n_encodings * 3 {
            return Err(layout(format!(
                "model {model}: {} encoding words for {n_encodings} features",
                enc_slab.count
            )));
        }
        let enc_words: &[f64] = slab_slice(self.bytes, &enc_slab);
        let mut encodings = Vec::with_capacity(n_encodings);
        for (j, triple) in enc_words.chunks_exact(3).enumerate() {
            if triple[0] == format::ENC_NUMERIC {
                encodings.push(Encoding::Numeric {
                    mean: triple[1],
                    std: triple[2],
                });
            } else if triple[0] == format::ENC_ONE_HOT {
                let card = triple[1];
                if !(card.is_finite() && card >= 0.0 && card.fract() == 0.0 && card <= 1e15) {
                    return Err(layout(format!(
                        "model {model}: feature {j} has invalid one-hot cardinality {card}"
                    )));
                }
                encodings.push(Encoding::OneHot {
                    cardinality: card as usize,
                });
            } else {
                return Err(layout(format!(
                    "model {model}: feature {j} has unknown encoding tag {}",
                    triple[0]
                )));
            }
        }
        let w_offsets = self.section(model, format::KIND_WEIGHTS_OFFSETS, Elem::U64)?;
        let w_values = self.section(model, format::KIND_WEIGHTS_VALUES, Elem::F64)?;
        if w_offsets.count != n_groups + 1 {
            return Err(layout(format!(
                "model {model}: {} weight offsets for {n_groups} groups",
                w_offsets.count
            )));
        }
        let offsets: &[u64] = slab_slice(self.bytes, &w_offsets);
        if offsets.first() != Some(&0)
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last() != Some(&(w_values.count as u64))
        {
            return Err(layout(format!(
                "model {model}: weight offsets are not a prefix sum over the weight values"
            )));
        }
        let values: &[f64] = slab_slice(self.bytes, &w_values);
        let weights: Vec<Vec<f64>> = offsets
            .windows(2)
            .map(|w| values[w[0] as usize..w[1] as usize].to_vec())
            .collect();
        Ok(CompiledLinear {
            encodings,
            weights,
            task,
            y_mean,
            y_std,
        })
    }
}
