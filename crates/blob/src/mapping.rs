//! The bytes behind a blob: a read-only memory mapping where the
//! platform supports it, a 64-byte-aligned heap copy everywhere else.
//!
//! The mapping is what buys the format its two serving properties:
//!
//! * **Zero deserialization** — the mapped bytes *are* the node slabs;
//!   opening a model allocates nothing proportional to its size.
//! * **Page-cache sharing** — `mmap(MAP_SHARED, PROT_READ)` of the same
//!   artifact file from N processes resolves to the same physical
//!   pages, so a fleet of serving processes pays for one copy of each
//!   model, not N.
//!
//! The `mmap`/`munmap` calls are declared directly against the C
//! library the Rust standard library already links — no external crate.
//! Blobs are published atomically (temp + fsync + rename) and never
//! mutated in place, so a mapping can never observe a torn file; a
//! replaced artifact is a new inode and existing mappings keep serving
//! the old bytes until dropped.

use crate::format::BLOB_ALIGN;
use flaml_serve::ArtifactError;
use std::path::Path;

/// Read-only bytes backing a blob, aligned to [`BLOB_ALIGN`].
#[derive(Debug)]
pub(crate) struct Mapping {
    inner: MapInner,
}

#[derive(Debug)]
enum MapInner {
    /// A shared read-only file mapping (page-aligned, hence 64-aligned).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap { ptr: *const u8, len: usize },
    /// An owned aligned copy (fallback platforms, `Storage`-mediated
    /// reads under fault injection, and in-memory byte parsing).
    Heap(AlignedBuf),
}

// The mapping is read-only for its whole lifetime: PROT_READ pages or
// an owned buffer nothing else can reach. Shared references hand out
// `&[u8]` only.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only, falling back to an aligned heap read on
    /// platforms without the mapping path.
    pub(crate) fn from_file(path: &Path) -> Result<Mapping, ArtifactError> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            match map_shared(path) {
                Ok(Some(mapping)) => return Ok(mapping),
                Ok(None) => {} // empty file or mmap refusal: fall through
                Err(e) => return Err(e),
            }
        }
        let bytes = std::fs::read(path)?;
        Ok(Mapping::from_bytes(&bytes))
    }

    /// Copies `bytes` into a 64-byte-aligned heap buffer.
    pub(crate) fn from_bytes(bytes: &[u8]) -> Mapping {
        Mapping {
            inner: MapInner::Heap(AlignedBuf::copy_of(bytes)),
        }
    }

    /// The mapped or copied bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            MapInner::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            MapInner::Heap(buf) => buf.bytes(),
        }
    }

    /// Whether the bytes are a shared file mapping (as opposed to an
    /// owned heap copy).
    pub(crate) fn is_mmap(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            MapInner::Mmap { .. } => true,
            MapInner::Heap(_) => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let MapInner::Mmap { ptr, len } = self.inner {
            if len > 0 {
                // A failed munmap leaks the mapping; nothing safe to do.
                unsafe {
                    let _ = sys::munmap(ptr as *mut std::os::raw::c_void, len);
                }
            }
        }
    }
}

/// A heap buffer whose base pointer is [`BLOB_ALIGN`]-aligned, so slab
/// sections (whose offsets are 64-aligned within the file) reinterpret
/// as `&[u32]` / `&[f64]` exactly like mapped pages do.
#[derive(Debug)]
pub(crate) struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

impl AlignedBuf {
    fn copy_of(bytes: &[u8]) -> AlignedBuf {
        let layout = Self::layout(bytes.len());
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, bytes.len());
        }
        AlignedBuf {
            ptr,
            len: bytes.len(),
        }
    }

    fn layout(len: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(len.max(1), BLOB_ALIGN).expect("valid blob layout")
    }

    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr, Self::layout(self.len)) }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;
}

/// Maps `path` with `mmap(PROT_READ, MAP_SHARED)`. `Ok(None)` means the
/// file exists but cannot be mapped (empty, or the kernel refused) and
/// the caller should fall back to a heap read.
#[cfg(all(unix, target_pointer_width = "64"))]
fn map_shared(path: &Path) -> Result<Option<Mapping>, ArtifactError> {
    use std::os::unix::io::AsRawFd;

    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(None);
    }
    let len = usize::try_from(len)
        .map_err(|_| ArtifactError::Layout(format!("blob of {len} bytes exceeds address space")))?;
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    // The fd can close immediately: the mapping keeps the inode alive.
    if ptr as isize == -1 || ptr.is_null() {
        return Ok(None);
    }
    Ok(Some(Mapping {
        inner: MapInner::Mmap {
            ptr: ptr as *const u8,
            len,
        },
    }))
}
