//! The blob wire format and its writer.
//!
//! A blob is one flat file:
//!
//! ```text
//! ┌────────────────────────────┐ 0
//! │ header (64 bytes)          │   magic, version, endianness marker,
//! │                            │   flags, section/model counts,
//! │                            │   payload length, FNV-1a fingerprint
//! ├────────────────────────────┤ 64
//! │ section table              │   24 bytes per section:
//! │                            │   tag, element type, offset, count
//! ├────────────────────────────┤ align64
//! │ section data …             │   each section 64-byte-aligned:
//! │                            │   the SoA node slabs, verbatim
//! └────────────────────────────┘
//! ```
//!
//! The header fingerprint is FNV-1a over the **whole file** with the
//! fingerprint field itself read as zero (see [`blob_fingerprint`]), so
//! every byte — header fields and alignment padding included — is
//! authenticated. All integers are little-endian —
//! the format is a memory image, not an interchange encoding, and the
//! header carries an endianness marker so a big-endian host (or a blob
//! written by one, if that ever exists) is rejected instead of
//! misread. Section offsets are multiples of 64 from the start of the
//! file, so once the base pointer is 64-byte-aligned (mapped pages are
//! page-aligned; the heap fallback allocates aligned) every slab
//! reinterprets as `&[u32]` / `&[f64]` directly.
//!
//! Models are encoded as a pre-order walk: each model owns a block of
//! sections tagged `model_index << 8 | section_kind`, and a stacked
//! ensemble is followed by its meta-learner, then its members, in
//! order. The slab bytes are exactly the `CompiledModel` vectors, so a
//! writer is a handful of `extend_from_slice` calls and a reader is
//! offset arithmetic.

use flaml_serve::{ArtifactError, CompiledLinear, CompiledModel};
use flaml_store::{atomic_write_file, Storage};
use std::path::Path;

/// Magic bytes opening every blob file.
pub const BLOB_MAGIC: [u8; 8] = *b"FLMLBLOB";

/// Blob format version this build writes and reads.
pub const BLOB_VERSION: u32 = 1;

/// Alignment (bytes) of the heap fallback buffer and of every section
/// offset — one x86 cache line, and a multiple of every slab element.
pub const BLOB_ALIGN: usize = 64;

/// Little-endian sentinel; reads back as a different value when the
/// bytes are reinterpreted on a big-endian host.
pub const ENDIAN_MARK: u32 = 0x0A0B_0C0D;

/// Header flag: tree nodes are stored in hot-first (per-tree BFS)
/// order, so shallow — frequently traversed — nodes share cache lines.
pub const FLAG_HOT_FIRST: u32 = 1;

/// Header flag: at least one threshold/cut section is stored as `f32`.
/// Only set when every value in the quantized section round-trips
/// `f64 → f32 → f64` bit-exactly, so widening reads reproduce the
/// original doubles.
pub const FLAG_QUANTIZED: u32 = 1 << 1;

pub(crate) const HEADER_LEN: usize = 64;
pub(crate) const SECTION_ENTRY_LEN: usize = 24;
pub(crate) const KNOWN_FLAGS: u32 = FLAG_HOT_FIRST | FLAG_QUANTIZED;

/// Section element types (the `elem` field of a table entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Elem {
    U8,
    U32,
    U64,
    F32,
    F64,
}

impl Elem {
    pub(crate) fn code(self) -> u32 {
        match self {
            Elem::U8 => 1,
            Elem::U32 => 2,
            Elem::U64 => 3,
            Elem::F32 => 4,
            Elem::F64 => 5,
        }
    }

    pub(crate) fn from_code(code: u32) -> Option<Elem> {
        Some(match code {
            1 => Elem::U8,
            2 => Elem::U32,
            3 => Elem::U64,
            4 => Elem::F32,
            5 => Elem::F64,
            _ => return None,
        })
    }

    pub(crate) fn size(self) -> usize {
        match self {
            Elem::U8 => 1,
            Elem::U32 | Elem::F32 => 4,
            Elem::U64 | Elem::F64 => 8,
        }
    }
}

// Section kinds (low 8 bits of a section tag; high 24 bits are the
// model index in pre-order).
pub(crate) const KIND_META: u32 = 0;
pub(crate) const KIND_TREE_ROOTS: u32 = 1;
pub(crate) const KIND_FEATURE: u32 = 2;
pub(crate) const KIND_THRESHOLD: u32 = 3;
pub(crate) const KIND_LEFT: u32 = 4;
pub(crate) const KIND_RIGHT: u32 = 5;
pub(crate) const KIND_LEAF_VALUE: u32 = 6;
pub(crate) const KIND_IS_LEAF: u32 = 7;
pub(crate) const KIND_VALUES: u32 = 8;
pub(crate) const KIND_CUTS_OFFSETS: u32 = 9;
pub(crate) const KIND_CUTS_VALUES: u32 = 10;
pub(crate) const KIND_INIT_SCORES: u32 = 11;
pub(crate) const KIND_ENCODINGS: u32 = 12;
pub(crate) const KIND_WEIGHTS_OFFSETS: u32 = 13;
pub(crate) const KIND_WEIGHTS_VALUES: u32 = 14;

// Model kinds (first word of a META stream).
pub(crate) const MODEL_GBDT: u64 = 0;
pub(crate) const MODEL_FOREST: u64 = 1;
pub(crate) const MODEL_LINEAR: u64 = 2;
pub(crate) const MODEL_STACKED: u64 = 3;

// Task encoding in a META stream: (tag, k).
pub(crate) const TASK_REGRESSION: u64 = 0;
pub(crate) const TASK_BINARY: u64 = 1;
pub(crate) const TASK_MULTICLASS: u64 = 2;

// Encoding tags in an ENCODINGS triple stream.
pub(crate) const ENC_NUMERIC: f64 = 0.0;
pub(crate) const ENC_ONE_HOT: f64 = 1.0;

pub(crate) fn section_tag(model: u32, kind: u32) -> u32 {
    (model << 8) | kind
}

/// FNV-1a over raw bytes — the binary twin of
/// [`flaml_serve::fingerprint`], which hashes JSON payload text.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    fnv_update(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The integrity fingerprint of a whole blob file: FNV-1a over every
/// byte with the 8-byte fingerprint field itself read as zero. Covering
/// the *entire* file — header fields and alignment padding included —
/// means any single flipped bit that the magic/version/endianness
/// probes don't catch is caught here; there is no unauthenticated byte.
pub fn blob_fingerprint(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() >= HEADER_LEN);
    let mut h = fnv_update(0xcbf2_9ce4_8422_2325, &bytes[..40]);
    h = fnv_update(h, &[0u8; 8]);
    fnv_update(h, &bytes[48..])
}

/// Layout choices for [`encode_blob`]. Both default to off; both are
/// guaranteed not to change a single predicted bit — hot-first is a
/// pure index permutation, quantization only happens when it is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlobOptions {
    /// Reorder each tree's nodes into BFS (breadth-first) order, so the
    /// shallow nodes every row traverses are packed together at the
    /// front of the tree's cache lines.
    pub hot_first: bool,
    /// Store forest thresholds and gbdt bin cuts as `f32` — halving
    /// those slabs — when (and only when) every value round-trips
    /// `f64 → f32 → f64` bit-exactly. Slabs with any non-round-tripping
    /// value stay `f64`.
    pub quantize: bool,
}

impl BlobOptions {
    /// Both layout optimizations enabled.
    pub fn tuned() -> BlobOptions {
        BlobOptions {
            hot_first: true,
            quantize: true,
        }
    }
}

/// Whether every value survives `f64 → f32 → f64` with identical bits
/// (the gate for writing a quantized section).
pub(crate) fn f32_round_trips(values: &[f64]) -> bool {
    values
        .iter()
        .all(|&v| (f64::from(v as f32)).to_bits() == v.to_bits())
}

/// New-order → old-index permutation putting each tree's nodes in BFS
/// order, or `None` when the slab does not satisfy the block layout
/// this transform assumes (roots sorted at block starts, every block
/// node reachable exactly once) — callers then keep the original order.
pub(crate) fn hot_first_perm(
    tree_roots: &[u32],
    left: &[u32],
    right: &[u32],
    is_leaf: &[bool],
) -> Option<Vec<usize>> {
    let n = is_leaf.len();
    if left.len() != n || right.len() != n {
        return None;
    }
    if n == 0 {
        return if tree_roots.is_empty() {
            Some(Vec::new())
        } else {
            None
        };
    }
    // Tree t owns the block [roots[t], roots[t+1]) and its root is the
    // block start — the layout `CompiledGbdt::from_model` produces.
    if tree_roots.first() != Some(&0) {
        return None;
    }
    let mut bounds: Vec<usize> = tree_roots.iter().map(|&r| r as usize).collect();
    bounds.push(n);
    if bounds.windows(2).any(|w| w[0] >= w[1]) {
        return None;
    }
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for w in bounds.windows(2) {
        let (start, end) = (w[0], w[1]);
        let block_base = order.len();
        let mut head = order.len();
        order.push(start);
        visited[start] = true;
        while head < order.len() {
            let at = order[head];
            head += 1;
            if !is_leaf[at] {
                for &child in &[left[at] as usize, right[at] as usize] {
                    // A child outside its block, or reached twice,
                    // breaks the permutation — bail out entirely.
                    if child < start || child >= end || visited[child] {
                        return None;
                    }
                    visited[child] = true;
                    order.push(child);
                }
            }
        }
        if order.len() - block_base != end - start {
            return None; // unreachable nodes in the block
        }
    }
    Some(order)
}

/// Applies a new→old permutation to the child-pointer slabs, returning
/// `(tree_roots, left, right)` rewritten for the new layout. Leaf child
/// pointers are normalized to 0 (the evaluator never reads them).
fn remap_children(
    order: &[usize],
    tree_roots: &[u32],
    left: &[u32],
    right: &[u32],
    is_leaf: &[bool],
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut old_to_new = vec![0u32; order.len()];
    for (new_i, &old_i) in order.iter().enumerate() {
        old_to_new[old_i] = new_i as u32;
    }
    let roots = tree_roots.iter().map(|&r| old_to_new[r as usize]).collect();
    let map_children = |slab: &[u32]| -> Vec<u32> {
        order
            .iter()
            .map(|&old_i| {
                if is_leaf[old_i] {
                    0
                } else {
                    old_to_new[slab[old_i] as usize]
                }
            })
            .collect()
    };
    (roots, map_children(left), map_children(right))
}

fn permute<T: Copy>(order: &[usize], slab: &[T]) -> Vec<T> {
    order.iter().map(|&old_i| slab[old_i]).collect()
}

fn permute_wide(order: &[usize], slab: &[f64], width: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(slab.len());
    for &old_i in order {
        out.extend_from_slice(&slab[old_i * width..(old_i + 1) * width]);
    }
    out
}

fn task_words(task: flaml_data::Task) -> (u64, u64) {
    match task {
        flaml_data::Task::Regression => (TASK_REGRESSION, 0),
        flaml_data::Task::Binary => (TASK_BINARY, 0),
        flaml_data::Task::MultiClass(k) => (TASK_MULTICLASS, k as u64),
    }
}

struct SectionOut {
    tag: u32,
    elem: Elem,
    count: u64,
    bytes: Vec<u8>,
}

struct Writer {
    opts: BlobOptions,
    sections: Vec<SectionOut>,
    next_model: u32,
    flags: u32,
}

impl Writer {
    fn alloc_model(&mut self) -> u32 {
        let idx = self.next_model;
        self.next_model += 1;
        idx
    }

    fn push_u8s(&mut self, model: u32, kind: u32, values: &[u8]) {
        self.sections.push(SectionOut {
            tag: section_tag(model, kind),
            elem: Elem::U8,
            count: values.len() as u64,
            bytes: values.to_vec(),
        });
    }

    fn push_u32s(&mut self, model: u32, kind: u32, values: &[u32]) {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push(SectionOut {
            tag: section_tag(model, kind),
            elem: Elem::U32,
            count: values.len() as u64,
            bytes,
        });
    }

    fn push_u64s(&mut self, model: u32, kind: u32, values: &[u64]) {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push(SectionOut {
            tag: section_tag(model, kind),
            elem: Elem::U64,
            count: values.len() as u64,
            bytes,
        });
    }

    fn push_f64s(&mut self, model: u32, kind: u32, values: &[f64]) {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push(SectionOut {
            tag: section_tag(model, kind),
            elem: Elem::F64,
            count: values.len() as u64,
            bytes,
        });
    }

    /// Writes a float slab as `f32` when quantization is on and exact,
    /// `f64` otherwise.
    fn push_floats(&mut self, model: u32, kind: u32, values: &[f64]) {
        if self.opts.quantize && f32_round_trips(values) {
            let mut bytes = Vec::with_capacity(values.len() * 4);
            for &v in values {
                bytes.extend_from_slice(&(v as f32).to_le_bytes());
            }
            self.flags |= FLAG_QUANTIZED;
            self.sections.push(SectionOut {
                tag: section_tag(model, kind),
                elem: Elem::F32,
                count: values.len() as u64,
                bytes,
            });
        } else {
            self.push_f64s(model, kind, values);
        }
    }

    fn bools_as_bytes(values: &[bool]) -> Vec<u8> {
        values.iter().map(|&b| u8::from(b)).collect()
    }

    fn encode_model(&mut self, model: &CompiledModel) {
        match model {
            CompiledModel::Gbdt(m) => {
                let idx = self.alloc_model();
                let (task_tag, task_k) = task_words(m.task);
                self.push_u64s(
                    idx,
                    KIND_META,
                    &[
                        MODEL_GBDT,
                        task_tag,
                        task_k,
                        m.cuts.len() as u64,
                        m.n_groups as u64,
                    ],
                );
                self.push_f64s(idx, KIND_INIT_SCORES, &m.init_scores);
                let mut cuts_offsets = Vec::with_capacity(m.cuts.len() + 1);
                let mut cuts_values = Vec::new();
                cuts_offsets.push(0u64);
                for feature_cuts in &m.cuts {
                    cuts_values.extend_from_slice(feature_cuts);
                    cuts_offsets.push(cuts_values.len() as u64);
                }
                self.push_u64s(idx, KIND_CUTS_OFFSETS, &cuts_offsets);
                self.push_floats(idx, KIND_CUTS_VALUES, &cuts_values);

                let order = if self.opts.hot_first {
                    hot_first_perm(&m.tree_roots, &m.left, &m.right, &m.is_leaf)
                } else {
                    None
                };
                if let Some(order) = order {
                    self.flags |= FLAG_HOT_FIRST;
                    let (roots, left, right) =
                        remap_children(&order, &m.tree_roots, &m.left, &m.right, &m.is_leaf);
                    self.push_u32s(idx, KIND_TREE_ROOTS, &roots);
                    self.push_u32s(idx, KIND_FEATURE, &permute(&order, &m.feature));
                    self.push_u32s(idx, KIND_THRESHOLD, &permute(&order, &m.threshold));
                    self.push_u32s(idx, KIND_LEFT, &left);
                    self.push_u32s(idx, KIND_RIGHT, &right);
                    self.push_f64s(idx, KIND_LEAF_VALUE, &permute(&order, &m.leaf_value));
                    self.push_u8s(
                        idx,
                        KIND_IS_LEAF,
                        &Self::bools_as_bytes(&permute(&order, &m.is_leaf)),
                    );
                } else {
                    self.push_u32s(idx, KIND_TREE_ROOTS, &m.tree_roots);
                    self.push_u32s(idx, KIND_FEATURE, &m.feature);
                    self.push_u32s(idx, KIND_THRESHOLD, &m.threshold);
                    self.push_u32s(idx, KIND_LEFT, &m.left);
                    self.push_u32s(idx, KIND_RIGHT, &m.right);
                    self.push_f64s(idx, KIND_LEAF_VALUE, &m.leaf_value);
                    self.push_u8s(idx, KIND_IS_LEAF, &Self::bools_as_bytes(&m.is_leaf));
                }
            }
            CompiledModel::Forest(m) => {
                let idx = self.alloc_model();
                let (task_tag, task_k) = task_words(m.task);
                self.push_u64s(
                    idx,
                    KIND_META,
                    &[
                        MODEL_FOREST,
                        task_tag,
                        task_k,
                        m.n_features as u64,
                        m.leaf_width as u64,
                    ],
                );
                let order = if self.opts.hot_first {
                    hot_first_perm(&m.tree_roots, &m.left, &m.right, &m.is_leaf)
                } else {
                    None
                };
                if let Some(order) = order {
                    self.flags |= FLAG_HOT_FIRST;
                    let (roots, left, right) =
                        remap_children(&order, &m.tree_roots, &m.left, &m.right, &m.is_leaf);
                    self.push_u32s(idx, KIND_TREE_ROOTS, &roots);
                    self.push_u32s(idx, KIND_FEATURE, &permute(&order, &m.feature));
                    self.push_floats(idx, KIND_THRESHOLD, &permute(&order, &m.threshold));
                    self.push_u32s(idx, KIND_LEFT, &left);
                    self.push_u32s(idx, KIND_RIGHT, &right);
                    self.push_u8s(
                        idx,
                        KIND_IS_LEAF,
                        &Self::bools_as_bytes(&permute(&order, &m.is_leaf)),
                    );
                    self.push_f64s(
                        idx,
                        KIND_VALUES,
                        &permute_wide(&order, &m.values, m.leaf_width),
                    );
                } else {
                    self.push_u32s(idx, KIND_TREE_ROOTS, &m.tree_roots);
                    self.push_u32s(idx, KIND_FEATURE, &m.feature);
                    self.push_floats(idx, KIND_THRESHOLD, &m.threshold);
                    self.push_u32s(idx, KIND_LEFT, &m.left);
                    self.push_u32s(idx, KIND_RIGHT, &m.right);
                    self.push_u8s(idx, KIND_IS_LEAF, &Self::bools_as_bytes(&m.is_leaf));
                    self.push_f64s(idx, KIND_VALUES, &m.values);
                }
            }
            CompiledModel::Linear(m) => self.encode_linear(m),
            CompiledModel::Stacked(m) => {
                let idx = self.alloc_model();
                let (task_tag, task_k) = task_words(m.task);
                self.push_u64s(
                    idx,
                    KIND_META,
                    &[MODEL_STACKED, task_tag, task_k, m.members.len() as u64],
                );
                // Pre-order: the meta-learner immediately follows the
                // ensemble node, then the members in ensemble order.
                self.encode_linear(&m.meta);
                for member in &m.members {
                    self.encode_model(member);
                }
            }
        }
    }

    fn encode_linear(&mut self, m: &CompiledLinear) {
        let idx = self.alloc_model();
        let (task_tag, task_k) = task_words(m.task);
        self.push_u64s(
            idx,
            KIND_META,
            &[
                MODEL_LINEAR,
                task_tag,
                task_k,
                m.y_mean.to_bits(),
                m.y_std.to_bits(),
                m.encodings.len() as u64,
                m.weights.len() as u64,
            ],
        );
        let mut encodings = Vec::with_capacity(m.encodings.len() * 3);
        for enc in &m.encodings {
            match enc {
                flaml_learners::Encoding::Numeric { mean, std } => {
                    encodings.extend_from_slice(&[ENC_NUMERIC, *mean, *std]);
                }
                flaml_learners::Encoding::OneHot { cardinality } => {
                    encodings.extend_from_slice(&[ENC_ONE_HOT, *cardinality as f64, 0.0]);
                }
            }
        }
        self.push_f64s(idx, KIND_ENCODINGS, &encodings);
        let mut offsets = Vec::with_capacity(m.weights.len() + 1);
        let mut values = Vec::new();
        offsets.push(0u64);
        for group in &m.weights {
            values.extend_from_slice(group);
            offsets.push(values.len() as u64);
        }
        self.push_u64s(idx, KIND_WEIGHTS_OFFSETS, &offsets);
        self.push_f64s(idx, KIND_WEIGHTS_VALUES, &values);
    }
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

/// Encodes `model` into blob bytes. The encoding is deterministic:
/// identical model and options produce identical bytes (and therefore
/// an identical fingerprint).
pub fn encode_blob(model: &CompiledModel, opts: BlobOptions) -> Vec<u8> {
    let mut w = Writer {
        opts,
        sections: Vec::new(),
        next_model: 0,
        flags: 0,
    };
    w.encode_model(model);

    let table_len = w.sections.len() * SECTION_ENTRY_LEN;
    let mut data_off = align_up(HEADER_LEN + table_len, BLOB_ALIGN);
    let mut offsets = Vec::with_capacity(w.sections.len());
    for s in &w.sections {
        offsets.push(data_off as u64);
        data_off = align_up(data_off + s.bytes.len(), BLOB_ALIGN);
    }
    let file_len = data_off;

    let mut out = vec![0u8; file_len];
    out[0..8].copy_from_slice(&BLOB_MAGIC);
    out[8..12].copy_from_slice(&BLOB_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
    out[16..20].copy_from_slice(&w.flags.to_le_bytes());
    out[20..24].copy_from_slice(&(w.sections.len() as u32).to_le_bytes());
    out[24..28].copy_from_slice(&w.next_model.to_le_bytes());
    out[32..40].copy_from_slice(&((file_len - HEADER_LEN) as u64).to_le_bytes());

    for (i, (s, off)) in w.sections.iter().zip(&offsets).enumerate() {
        let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
        out[at..at + 4].copy_from_slice(&s.tag.to_le_bytes());
        out[at + 4..at + 8].copy_from_slice(&s.elem.code().to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&off.to_le_bytes());
        out[at + 16..at + 24].copy_from_slice(&s.count.to_le_bytes());
        let start = *off as usize;
        out[start..start + s.bytes.len()].copy_from_slice(&s.bytes);
    }

    // The fingerprint field is still zero here, so hashing the buffer
    // as-is gives exactly the zeroed-field fingerprint the reader
    // recomputes.
    let fp = fingerprint_bytes(&out);
    out[40..48].copy_from_slice(&fp.to_le_bytes());
    out
}

/// Encodes `model` and writes it to `path` on the local disk
/// (atomically: temp file, fsync, rename, parent-dir fsync), returning
/// the blob's payload fingerprint.
///
/// # Errors
///
/// Returns [`ArtifactError::Storage`] on persistence failures.
pub fn save_blob(
    model: &CompiledModel,
    path: impl AsRef<Path>,
    opts: BlobOptions,
) -> Result<u64, ArtifactError> {
    save_blob_with(flaml_store::disk().as_ref(), path.as_ref(), model, opts)
}

/// [`save_blob`] against an explicit [`Storage`] — the write goes
/// through the storage's fault-injection surface, so chaos sweeps cover
/// blob publication exactly like every other durable write.
///
/// # Errors
///
/// Returns [`ArtifactError::Storage`] on persistence failures.
pub fn save_blob_with(
    storage: &dyn Storage,
    path: &Path,
    model: &CompiledModel,
    opts: BlobOptions,
) -> Result<u64, ArtifactError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            storage.create_dir_all(parent)?;
        }
    }
    let bytes = encode_blob(model, opts);
    let fp = blob_fingerprint(&bytes);
    atomic_write_file(storage, path, &bytes)?;
    Ok(fp)
}
