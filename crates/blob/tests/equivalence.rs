//! The format's headline contract: a [`BlobModel`] predicts
//! bit-identically to the JSON-loaded [`CompiledModel`] for **every**
//! learner kind, every task, every layout-option combination, and both
//! byte backings (aligned heap copy and the real file mapping).

use flaml_blob::{encode_blob, save_blob, BlobModel, BlobOptions};
use flaml_data::{Dataset, Task};
use flaml_learners::{
    fit_meta, meta_features, FittedModel, Forest, ForestParams, Gbdt, GbdtParams, Linear,
    LinearParams, StackedModel,
};
use flaml_metrics::Pred;
use flaml_serve::CompiledModel;

fn pred_bits(p: &Pred) -> Vec<u64> {
    match p {
        Pred::Values(v) => v.iter().map(|x| x.to_bits()).collect(),
        Pred::Probs { p, .. } => p.iter().map(|x| x.to_bits()).collect(),
    }
}

/// Deterministic datasets, one per task. Feature values are small
/// integers and halves so that at least some fitted thresholds are
/// exactly f32-representable (letting the quantized path actually
/// engage on real models), with a few deliberately non-representable
/// values mixed in so the exactness gate is also exercised.
fn datasets() -> Vec<Dataset> {
    let n = 120;
    let c0: Vec<f64> = (0..n).map(|i| f64::from(i % 17)).collect();
    let c1: Vec<f64> = (0..n).map(|i| f64::from(i % 5) * 0.5 - 1.0).collect();
    let c2: Vec<f64> = (0..n).map(|i| 0.1 * f64::from(i % 7)).collect();
    let mk = |task: Task, y: Vec<f64>, name: &str| {
        Dataset::new(name, task, vec![c0.clone(), c1.clone(), c2.clone()], y).unwrap()
    };
    vec![
        mk(
            Task::Binary,
            (0..n).map(|i| f64::from(i % 17 > 8)).collect(),
            "bin",
        ),
        mk(
            Task::MultiClass(3),
            (0..n).map(|i| f64::from(i % 3)).collect(),
            "multi",
        ),
        mk(
            Task::Regression,
            (0..n)
                .map(|i| f64::from(i % 17) * 0.25 + f64::from(i % 5))
                .collect(),
            "reg",
        ),
    ]
}

fn fit_roster(data: &Dataset) -> Vec<(&'static str, FittedModel)> {
    let gbdt: FittedModel = Gbdt::fit(
        data,
        &GbdtParams {
            n_trees: 12,
            ..GbdtParams::default()
        },
        7,
    )
    .expect("gbdt fit")
    .into();
    let forest: FittedModel = Forest::fit(
        data,
        &ForestParams {
            n_trees: 6,
            ..ForestParams::default()
        },
        7,
    )
    .expect("forest fit")
    .into();
    let linear: FittedModel = Linear::fit(data, &LinearParams::default(), 7)
        .expect("linear fit")
        .into();
    let members = vec![gbdt.clone(), forest.clone()];
    let oof = meta_features(&members, data, data.target().to_vec());
    let stacked: FittedModel =
        StackedModel::new(members, fit_meta(&oof, 7).expect("meta fit"), data.task()).into();
    vec![
        ("gbdt", gbdt),
        ("forest", forest),
        ("linear", linear),
        ("stacked", stacked),
    ]
}

fn option_grid() -> [(&'static str, BlobOptions); 4] {
    [
        ("plain", BlobOptions::default()),
        (
            "hot_first",
            BlobOptions {
                hot_first: true,
                quantize: false,
            },
        ),
        (
            "quantized",
            BlobOptions {
                hot_first: false,
                quantize: true,
            },
        ),
        ("tuned", BlobOptions::tuned()),
    ]
}

#[test]
fn blob_predictions_are_bit_identical_across_every_learner_and_layout() {
    let dir = std::env::temp_dir().join(format!("flaml_blob_equiv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for data in datasets() {
        for (learner, model) in fit_roster(&data) {
            let compiled = CompiledModel::compile(&model).expect("compile");
            // The blob competes against the *JSON round-tripped* model:
            // the two on-disk formats must converge on identical bits.
            let json_loaded =
                CompiledModel::from_artifact_str(&compiled.to_artifact_string()).expect("json");
            let reference = pred_bits(&json_loaded.predict(&data));
            assert_eq!(
                reference,
                pred_bits(&model.predict(&data)),
                "{learner}/{}: compiled vs interpreted",
                data.name()
            );
            for (combo, opts) in option_grid() {
                let ctx = format!("{learner}/{}/{combo}", data.name());

                // Heap backing: parse the encoded bytes directly.
                let bytes = encode_blob(&compiled, opts);
                let heap = BlobModel::from_bytes(&bytes).unwrap_or_else(|e| {
                    panic!("{ctx}: open from bytes failed: {e}");
                });
                assert!(!heap.is_mmap());
                assert_eq!(reference, pred_bits(&heap.predict(&data)), "{ctx}: heap");

                // File backing: save atomically, reopen via mmap.
                let path = dir.join(format!("{}_{learner}_{combo}.artifact.blob", data.name()));
                let fp = save_blob(&compiled, &path, opts).expect("save blob");
                let mapped = BlobModel::open(&path).expect("open blob");
                assert_eq!(fp, mapped.fingerprint(), "{ctx}: fingerprint");
                #[cfg(all(unix, target_pointer_width = "64"))]
                assert!(mapped.is_mmap(), "{ctx}: expected a real mapping");
                assert_eq!(reference, pred_bits(&mapped.predict(&data)), "{ctx}: mmap");
                assert_eq!(mapped.task(), compiled.task(), "{ctx}: task");
                assert_eq!(mapped.n_features(), compiled.n_features(), "{ctx}: width");

                // Materializing back to an owned model preserves
                // predictions too (node order may differ; bits may not).
                let owned = mapped.to_compiled();
                assert_eq!(
                    reference,
                    pred_bits(&owned.predict(&data)),
                    "{ctx}: to_compiled"
                );
                if !opts.hot_first {
                    assert_eq!(
                        owned, compiled,
                        "{ctx}: unpermuted slabs round-trip exactly"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn layout_flags_reflect_what_was_written() {
    // Every feature value (and hence every split midpoint) sits on an
    // integer or half-integer grid — all exactly f32-representable —
    // so the quantizer is *required* to engage.
    let n = 120;
    let data = Dataset::new(
        "exact",
        Task::Binary,
        vec![
            (0..n).map(|i| f64::from(i % 17)).collect(),
            (0..n).map(|i| f64::from(i % 5) * 0.5).collect(),
        ],
        (0..n).map(|i| f64::from(i % 17 > 8)).collect(),
    )
    .unwrap();
    let (_, model) = fit_roster(&data).remove(0);
    let compiled = CompiledModel::compile(&model).expect("compile");

    let plain = BlobModel::from_bytes(&encode_blob(&compiled, BlobOptions::default())).unwrap();
    assert!(!plain.hot_first());
    assert!(!plain.quantized());

    let hot = BlobModel::from_bytes(&encode_blob(
        &compiled,
        BlobOptions {
            hot_first: true,
            quantize: false,
        },
    ))
    .unwrap();
    assert!(hot.hot_first(), "fitted gbdt slabs satisfy the BFS layout");

    // Integer-grid cut points are all exactly f32-representable, so the
    // quantizer must engage on this model.
    let quant = BlobModel::from_bytes(&encode_blob(
        &compiled,
        BlobOptions {
            hot_first: false,
            quantize: true,
        },
    ))
    .unwrap();
    assert!(
        quant.quantized(),
        "f32-exact thresholds must be stored quantized"
    );
    assert!(quant.n_bytes() < plain.n_bytes(), "quantized blob shrinks");
}

#[test]
fn deterministic_bytes_and_stable_fingerprint() {
    let data = &datasets()[2];
    let (_, model) = fit_roster(data).remove(3); // stacked: exercises nesting
    let compiled = CompiledModel::compile(&model).expect("compile");
    let a = encode_blob(&compiled, BlobOptions::tuned());
    let b = encode_blob(&compiled, BlobOptions::tuned());
    assert_eq!(a, b, "same model + options => identical bytes");
    assert_ne!(
        a,
        encode_blob(&compiled, BlobOptions::default()),
        "layout options are visible in the bytes"
    );
}
