//! Property-based tests of the blob format: random fitted models and
//! hand-built slabs with pathological floats round-trip through the
//! binary format bit-identically under every layout-option combination,
//! and corrupted files — truncations, byte flips anywhere, and
//! structurally invalid files whose fingerprint has been re-patched to
//! hash correctly — are always rejected with a typed [`ArtifactError`],
//! never loaded silently and never a panic.

use flaml_blob::{blob_fingerprint, encode_blob, BlobModel, BlobOptions};
use flaml_data::{Dataset, Task};
use flaml_learners::{Forest, ForestParams, Gbdt, GbdtParams, Linear, LinearParams};
use flaml_serve::{ArtifactError, CompiledForest, CompiledGbdt, CompiledModel};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (20usize..80, 0usize..3).prop_flat_map(|(n, kind)| {
        (
            proptest::collection::vec(-50f64..50.0, n),
            proptest::collection::vec(-1f64..1.0, n),
        )
            .prop_map(move |(c0, c1)| {
                let (task, y): (Task, Vec<f64>) = match kind {
                    0 => (
                        Task::Binary,
                        c0.iter().map(|&v| f64::from(v > 0.0)).collect(),
                    ),
                    1 => (
                        Task::MultiClass(3),
                        c0.iter()
                            .map(|&v| ((v.abs() / 18.0) as usize).min(2) as f64)
                            .collect(),
                    ),
                    _ => (
                        Task::Regression,
                        c0.iter().zip(&c1).map(|(&a, &b)| a * 0.5 + b).collect(),
                    ),
                };
                Dataset::new("prop", task, vec![c0, c1], y).unwrap()
            })
            .prop_filter("all classes present", |d| match d.task() {
                Task::Binary => d.target().contains(&0.0) && d.target().contains(&1.0),
                Task::MultiClass(k) => (0..k).all(|c| d.target().contains(&(c as f64))),
                Task::Regression => true,
            })
    })
}

fn arb_opts() -> impl Strategy<Value = BlobOptions> {
    (0usize..4).prop_map(|i| BlobOptions {
        hot_first: i & 1 != 0,
        quantize: i & 2 != 0,
    })
}

/// Pathological f64s a binary format is most likely to mangle.
fn arb_edge_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN_POSITIVE / 8.0), // subnormal
        Just(-f64::MIN_POSITIVE / 8.0),
        Just(-0.0),
        Just(5e-324), // smallest subnormal
        Just(1e308),
        -1f64..1.0,
    ]
}

fn slab_gbdt(cut: f64, left_leaf: f64, right_leaf: f64) -> CompiledModel {
    CompiledModel::Gbdt(CompiledGbdt {
        cuts: vec![vec![cut]],
        n_groups: 1,
        init_scores: vec![0.0],
        task: Task::Regression,
        tree_roots: vec![0],
        feature: vec![0, 0, 0],
        threshold: vec![1, 0, 0],
        left: vec![1, 0, 0],
        right: vec![2, 0, 0],
        leaf_value: vec![0.0, left_leaf, right_leaf],
        is_leaf: vec![false, true, true],
    })
}

fn slab_forest(threshold: f64, left_leaf: f64, right_leaf: f64) -> CompiledModel {
    CompiledModel::Forest(CompiledForest {
        task: Task::Regression,
        n_features: 1,
        leaf_width: 1,
        tree_roots: vec![0],
        feature: vec![0, 0, 0],
        threshold: vec![threshold, 0.0, 0.0],
        left: vec![1, 0, 0],
        right: vec![2, 0, 0],
        is_leaf: vec![false, true, true],
        values: vec![0.0, left_leaf, right_leaf],
    })
}

/// A multiclass forest whose per-node value rows are genuinely ragged
/// across trees (different depths), plus a multiclass gbdt with ragged
/// cuts (a constant feature with zero cut points next to a rich one) —
/// the flattened offset sections must reproduce both exactly.
fn ragged_multiclass_models() -> Vec<CompiledModel> {
    let forest = CompiledModel::Forest(CompiledForest {
        task: Task::MultiClass(3),
        n_features: 2,
        leaf_width: 3,
        // Tree 0: a stump (1 node). Tree 1: one split (3 nodes).
        tree_roots: vec![0, 1],
        feature: vec![0, 1, 0, 0],
        threshold: vec![0.0, 0.25, 0.0, 0.0],
        left: vec![0, 2, 0, 0],
        right: vec![0, 3, 0, 0],
        is_leaf: vec![true, false, true, true],
        values: vec![
            0.2, 0.3, 0.5, // tree-0 leaf
            0.0, 0.0, 0.0, // internal
            1.0, 0.0, 0.0, // left leaf
            0.0, 0.5, 0.5, // right leaf
        ],
    });
    let gbdt = CompiledModel::Gbdt(CompiledGbdt {
        cuts: vec![vec![], vec![-0.5, 0.0, 0.5]],
        n_groups: 3,
        init_scores: vec![0.1, -0.2, 0.1],
        task: Task::MultiClass(3),
        tree_roots: vec![0, 3, 4],
        feature: vec![1, 0, 0, 0, 1, 0, 0],
        threshold: vec![1, 0, 0, 0, 2, 0, 0],
        left: vec![1, 0, 0, 0, 5, 0, 0],
        right: vec![2, 0, 0, 0, 6, 0, 0],
        leaf_value: vec![0.0, -1.5, 2.5, 0.75, 0.0, 0.25, -0.25],
        is_leaf: vec![false, true, true, true, false, true, true],
    });
    vec![forest, gbdt]
}

fn pred_bits(p: &flaml_metrics::Pred) -> Vec<u64> {
    match p {
        flaml_metrics::Pred::Values(v) => v.iter().map(|x| x.to_bits()).collect(),
        flaml_metrics::Pred::Probs { p, .. } => p.iter().map(|x| x.to_bits()).collect(),
    }
}

/// Re-stamps a hand-corrupted blob so it hashes correctly again —
/// structural rejections must fire on files whose fingerprint is valid.
fn repatch(bytes: &mut [u8]) {
    let fp = blob_fingerprint(bytes);
    bytes[40..48].copy_from_slice(&fp.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fitted_models_round_trip_bit_identically(
        data in arb_dataset(),
        seed in 0u64..20,
        learner in 0usize..3,
        opts in arb_opts(),
    ) {
        let model: flaml_learners::FittedModel = match learner {
            0 => Gbdt::fit(&data, &GbdtParams { n_trees: 6, ..GbdtParams::default() }, seed)
                .unwrap().into(),
            1 => Forest::fit(&data, &ForestParams { n_trees: 4, ..ForestParams::default() }, seed)
                .unwrap().into(),
            _ => Linear::fit(&data, &LinearParams::default(), seed).unwrap().into(),
        };
        let compiled = CompiledModel::compile(&model).unwrap();
        let blob = BlobModel::from_bytes(&encode_blob(&compiled, opts)).unwrap();
        prop_assert_eq!(
            pred_bits(&blob.predict(&data)),
            pred_bits(&compiled.predict(&data))
        );
    }

    #[test]
    fn pathological_floats_survive_the_binary_round_trip(
        left in arb_edge_f64(),
        right in arb_edge_f64(),
        cut in arb_edge_f64(),
        opts in arb_opts(),
        xs in proptest::collection::vec(-2f64..2.0, 5..40),
    ) {
        // NaN/±Inf leaves, subnormal thresholds: blob predictions must
        // match the owned model bit-for-bit under every layout option.
        let threshold = if cut.is_nan() { 0.0 } else { cut };
        let n = xs.len();
        let data = Dataset::new("edge", Task::Regression, vec![xs], vec![0.0; n]).unwrap();
        for model in [slab_gbdt(threshold, left, right), slab_forest(threshold, left, right)] {
            let blob = BlobModel::from_bytes(&encode_blob(&model, opts)).unwrap();
            prop_assert_eq!(
                pred_bits(&blob.predict(&data)),
                pred_bits(&model.predict(&data))
            );
        }
    }

    #[test]
    fn subnormal_thresholds_veto_quantization(sub in prop_oneof![
        Just(5e-324),
        Just(f64::MIN_POSITIVE / 8.0),
        Just(-f64::MIN_POSITIVE / 2.0),
        Just(1e-40), // representable only as an f32 subnormal, inexactly
    ]) {
        // A threshold that cannot round-trip f64 → f32 → f64 must force
        // the f64 slab even when quantization is requested.
        let model = slab_forest(sub, 1.0, 2.0);
        let opts = BlobOptions { hot_first: false, quantize: true };
        let blob = BlobModel::from_bytes(&encode_blob(&model, opts)).unwrap();
        prop_assert!(!blob.quantized(), "subnormal {sub:e} must not quantize");
    }

    #[test]
    fn ragged_multiclass_slabs_round_trip(opts in arb_opts(), seed in 0u64..5) {
        let n = 30;
        let c0: Vec<f64> = (0..n).map(|i| f64::from(i) * 0.1 - 1.5 + f64::from(seed as u32)).collect();
        let c1: Vec<f64> = (0..n).map(|i| f64::from(i % 7) * 0.3 - 1.0).collect();
        let data = Dataset::new(
            "ragged",
            Task::MultiClass(3),
            vec![c0, c1],
            (0..n).map(|i| f64::from(i % 3)).collect(),
        ).unwrap();
        for model in ragged_multiclass_models() {
            let blob = BlobModel::from_bytes(&encode_blob(&model, opts)).unwrap();
            prop_assert_eq!(
                pred_bits(&blob.predict(&data)),
                pred_bits(&model.predict(&data))
            );
        }
    }

    #[test]
    fn truncated_blobs_are_rejected_with_a_typed_error(
        data in arb_dataset(),
        opts in arb_opts(),
        frac in 0.0f64..0.999,
    ) {
        let model: flaml_learners::FittedModel =
            Linear::fit(&data, &LinearParams::default(), 0).unwrap().into();
        let bytes = encode_blob(&CompiledModel::compile(&model).unwrap(), opts);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let err = BlobModel::from_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, ArtifactError::Layout(_)),
            "truncation to {cut} bytes gave {err:?}"
        );
    }

    #[test]
    fn flipped_bytes_never_load_silently(
        data in arb_dataset(),
        opts in arb_opts(),
        at_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let model: flaml_learners::FittedModel =
            Linear::fit(&data, &LinearParams::default(), 1).unwrap().into();
        let mut bytes = encode_blob(&CompiledModel::compile(&model).unwrap(), opts);
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        bytes[at] ^= flip;
        // Every byte of the file is authenticated (the fingerprint
        // covers header and padding too), so a flip anywhere must
        // surface as one of the typed rejections — never a load.
        match BlobModel::from_bytes(&bytes) {
            Ok(_) => prop_assert!(false, "flip {flip:#x} at {at} loaded silently"),
            Err(
                ArtifactError::BadMagic { .. }
                | ArtifactError::Version { .. }
                | ArtifactError::Layout(_)
                | ArtifactError::FingerprintMismatch { .. },
            ) => {}
            Err(other) => prop_assert!(false, "untyped rejection {other:?}"),
        }
    }

    #[test]
    fn structural_corruption_is_layout_even_when_the_hash_is_valid(
        data in arb_dataset(),
        case in 0usize..4,
    ) {
        let model: flaml_learners::FittedModel = Forest::fit(
            &data, &ForestParams { n_trees: 3, ..ForestParams::default() }, 2,
        ).unwrap().into();
        let mut bytes = encode_blob(
            &CompiledModel::compile(&model).unwrap(),
            BlobOptions::default(),
        );
        match case {
            0 => {
                // Misalign the first section's offset by 8 bytes.
                let off = u64::from_le_bytes(bytes[72..80].try_into().unwrap());
                bytes[72..80].copy_from_slice(&(off + 8).to_le_bytes());
            }
            1 => {
                // Blow the first section's count past the file end.
                bytes[80..88].copy_from_slice(&u64::MAX.to_le_bytes());
            }
            2 => {
                // Unknown element type on the first section.
                bytes[68..72].copy_from_slice(&99u32.to_le_bytes());
            }
            _ => {
                // Claim one more model than the structure contains.
                let n = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
                bytes[24..28].copy_from_slice(&(n + 1).to_le_bytes());
            }
        }
        repatch(&mut bytes);
        let err = BlobModel::from_bytes(&bytes).unwrap_err();
        prop_assert!(
            matches!(err, ArtifactError::Layout(_)),
            "case {case} gave {err:?} instead of a layout error"
        );
    }
}

#[test]
fn header_probes_fire_before_the_fingerprint() {
    let model = slab_forest(0.5, 1.0, 2.0);
    let good = encode_blob(&model, BlobOptions::default());

    let mut foreign = good.clone();
    foreign[0..8].copy_from_slice(b"NOTABLOB");
    repatch(&mut foreign);
    assert!(matches!(
        BlobModel::from_bytes(&foreign).unwrap_err(),
        ArtifactError::BadMagic { .. }
    ));

    let mut future = good.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    repatch(&mut future);
    assert!(matches!(
        BlobModel::from_bytes(&future).unwrap_err(),
        ArtifactError::Version {
            found: 99,
            supported: 1
        }
    ));

    let mut swapped = good.clone();
    swapped[12..16].copy_from_slice(&0x0D0C_0B0Au32.to_le_bytes());
    repatch(&mut swapped);
    assert!(matches!(
        BlobModel::from_bytes(&swapped).unwrap_err(),
        ArtifactError::Layout(_)
    ));

    // A stale fingerprint (without repatching) is its own typed error.
    let mut stale = good;
    stale[100] ^= 0x40;
    assert!(matches!(
        BlobModel::from_bytes(&stale).unwrap_err(),
        ArtifactError::FingerprintMismatch { .. }
    ));
}

#[test]
fn truncated_file_on_disk_is_rejected_through_the_mmap_path() {
    let model = slab_gbdt(0.5, -1.0, 1.0);
    let bytes = encode_blob(&model, BlobOptions::default());
    let dir = std::env::temp_dir().join(format!("flaml_blob_trunc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("torn.artifact.blob");
    std::fs::write(&path, &bytes[..bytes.len() - 16]).unwrap();
    assert!(matches!(
        BlobModel::open(&path).unwrap_err(),
        ArtifactError::Layout(_)
    ));
    std::fs::remove_dir_all(&dir).ok();
}
