//! Evaluation metrics for the FLAML reproduction.
//!
//! The paper's benchmark scores binary classification with roc-auc,
//! multi-class with negative log-loss, regression with r2, and the
//! selectivity-estimation study with q-error quantiles (Section 5.3). All
//! of those, plus the scaled-score calibration used by the AutoML benchmark
//! (0 = constant class-prior predictor, 1 = tuned random forest), are
//! implemented here.
//!
//! Metrics are exposed through [`Metric`], which maps any prediction to an
//! *error to minimize* via [`Metric::loss`], the quantity FLAML's search
//! optimizes, and a human-oriented *score* (higher is better) via
//! [`Metric::score`].
//!
//! # Example
//!
//! ```
//! use flaml_metrics::{Metric, Pred};
//!
//! let pred = Pred::binary_probs(vec![0.9, 0.2, 0.8, 0.3]);
//! let y = [1.0, 0.0, 1.0, 0.0];
//! let loss = Metric::RocAuc.loss(&pred, &y).unwrap();
//! assert!(loss.abs() < 1e-12, "perfect ranking has zero auc regret");
//! ```

#![warn(missing_docs)]

mod classification;
mod pred;
mod qerror;
mod regression;
mod scaled;

pub use classification::{accuracy, log_loss, roc_auc};
pub use pred::{MetricError, Pred};
pub use qerror::{q_error, q_error_quantile};
pub use regression::{mae, mse, r2};
pub use scaled::{scaled_score, ScaleAnchors};

use serde::{Deserialize, Serialize};

/// An evaluation metric, convertible to a minimization loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Area under the ROC curve (binary). Loss is `1 - auc`.
    RocAuc,
    /// Multi-class (or binary) logarithmic loss. Loss is the log-loss.
    LogLoss,
    /// Classification accuracy. Loss is `1 - accuracy`.
    Accuracy,
    /// Mean squared error (regression). Loss is the mse.
    Mse,
    /// Mean absolute error (regression). Loss is the mae.
    Mae,
    /// Coefficient of determination (regression). Loss is `1 - r2`.
    R2,
    /// 95th-percentile q-error over predictions in natural-log space
    /// (selectivity estimation). Loss is the quantile itself (>= 1).
    QErrorP95,
}

impl Metric {
    /// The default metric of the paper's benchmark for each task kind.
    pub fn default_for(task: flaml_data::Task) -> Metric {
        match task {
            flaml_data::Task::Binary => Metric::RocAuc,
            flaml_data::Task::MultiClass(_) => Metric::LogLoss,
            flaml_data::Task::Regression => Metric::R2,
        }
    }

    /// Error to *minimize* for predictions `pred` against labels `y`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError`] when the prediction kind does not match the
    /// metric (e.g. regression values scored with roc-auc) or lengths
    /// disagree.
    pub fn loss(&self, pred: &Pred, y: &[f64]) -> Result<f64, MetricError> {
        match self {
            Metric::RocAuc => Ok(1.0 - roc_auc(&pred.positive_scores()?, y)?),
            Metric::LogLoss => {
                let (k, p) = pred.probs()?;
                log_loss(k, p, y)
            }
            Metric::Accuracy => {
                let labels = pred.hard_labels()?;
                Ok(1.0 - accuracy(&labels, y)?)
            }
            Metric::Mse => mse(pred.values()?, y),
            Metric::Mae => mae(pred.values()?, y),
            Metric::R2 => Ok(1.0 - r2(pred.values()?, y)?),
            Metric::QErrorP95 => q_error_quantile(pred.values()?, y, 0.95),
        }
    }

    /// Score (higher is better) for reporting: the negation of
    /// [`Metric::loss`] for losses, or the underlying score (auc, accuracy,
    /// r2) for score-like metrics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Metric::loss`].
    pub fn score(&self, pred: &Pred, y: &[f64]) -> Result<f64, MetricError> {
        let loss = self.loss(pred, y)?;
        Ok(match self {
            Metric::RocAuc | Metric::Accuracy | Metric::R2 => 1.0 - loss,
            Metric::LogLoss | Metric::Mse | Metric::Mae | Metric::QErrorP95 => -loss,
        })
    }

    /// Every metric, in display order. The single source of truth for
    /// [`Metric::parse`].
    pub const ALL: [Metric; 7] = [
        Metric::RocAuc,
        Metric::LogLoss,
        Metric::Accuracy,
        Metric::Mse,
        Metric::Mae,
        Metric::R2,
        Metric::QErrorP95,
    ];

    /// Human-readable metric name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::RocAuc => "roc_auc",
            Metric::LogLoss => "log_loss",
            Metric::Accuracy => "accuracy",
            Metric::Mse => "mse",
            Metric::Mae => "mae",
            Metric::R2 => "r2",
            Metric::QErrorP95 => "q_error_p95",
        }
    }

    /// Parses a metric name as printed by [`Metric::name`] (used when
    /// reconstructing a run from a trial journal's header).
    pub fn parse(s: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(
            Metric::default_for(flaml_data::Task::Binary),
            Metric::RocAuc
        );
        assert_eq!(
            Metric::default_for(flaml_data::Task::MultiClass(5)),
            Metric::LogLoss
        );
        assert_eq!(
            Metric::default_for(flaml_data::Task::Regression),
            Metric::R2
        );
    }

    #[test]
    fn loss_rejects_kind_mismatch() {
        let pred = Pred::from_values(vec![1.0, 2.0]);
        assert!(Metric::RocAuc.loss(&pred, &[0.0, 1.0]).is_err());
        let pred = Pred::binary_probs(vec![0.5, 0.5]);
        assert!(Metric::Mse.loss(&pred, &[0.0, 1.0]).is_err());
    }

    #[test]
    fn score_negates_losses() {
        let pred = Pred::from_values(vec![1.0, 2.0, 3.0]);
        let y = [1.0, 2.0, 4.0];
        let loss = Metric::Mse.loss(&pred, &y).unwrap();
        let score = Metric::Mse.score(&pred, &y).unwrap();
        assert_eq!(score, -loss);
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::RocAuc.to_string(), "roc_auc");
        assert_eq!(Metric::QErrorP95.to_string(), "q_error_p95");
    }

    #[test]
    fn names_parse_back() {
        for m in Metric::ALL {
            assert_eq!(Metric::parse(m.name()), Some(m));
        }
        assert_eq!(Metric::parse("nope"), None);
    }
}
