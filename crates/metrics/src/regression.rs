use crate::pred::{check_lengths, MetricError};

/// Mean squared error.
///
/// # Errors
///
/// Returns [`MetricError`] if lengths disagree or the input is empty.
pub fn mse(pred: &[f64], y: &[f64]) -> Result<f64, MetricError> {
    check_lengths(pred.len(), y.len())?;
    if y.is_empty() {
        return Err(MetricError::Degenerate("no rows".into()));
    }
    let total: f64 = pred.iter().zip(y).map(|(p, t)| (p - t) * (p - t)).sum();
    Ok(total / y.len() as f64)
}

/// Mean absolute error.
///
/// # Errors
///
/// Returns [`MetricError`] if lengths disagree or the input is empty.
pub fn mae(pred: &[f64], y: &[f64]) -> Result<f64, MetricError> {
    check_lengths(pred.len(), y.len())?;
    if y.is_empty() {
        return Err(MetricError::Degenerate("no rows".into()));
    }
    let total: f64 = pred.iter().zip(y).map(|(p, t)| (p - t).abs()).sum();
    Ok(total / y.len() as f64)
}

/// Coefficient of determination (r2). At most 1; can be arbitrarily
/// negative for predictions worse than the label mean.
///
/// # Errors
///
/// Returns [`MetricError`] if lengths disagree, the input is empty, or the
/// labels are constant (zero variance makes r2 undefined).
pub fn r2(pred: &[f64], y: &[f64]) -> Result<f64, MetricError> {
    check_lengths(pred.len(), y.len())?;
    if y.is_empty() {
        return Err(MetricError::Degenerate("no rows".into()));
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return Err(MetricError::Degenerate(
            "constant labels make r2 undefined".into(),
        ));
    }
    let ss_res: f64 = pred.iter().zip(y).map(|(p, t)| (p - t) * (p - t)).sum();
    Ok(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_perfect_is_zero() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        assert!((mse(&[0.0, 0.0], &[1.0, 3.0]).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[0.0, 0.0], &[1.0, -3.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_is_one() {
        assert!((r2(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_mean_predictor_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&p, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative() {
        assert!(r2(&[10.0, -10.0], &[1.0, 2.0]).unwrap() < 0.0);
    }

    #[test]
    fn r2_constant_labels_is_error() {
        assert!(r2(&[1.0, 2.0], &[5.0, 5.0]).is_err());
    }
}
