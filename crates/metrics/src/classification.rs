use crate::pred::{check_lengths, MetricError};

/// Area under the ROC curve for binary labels (`0.0`/`1.0`) and real-valued
/// scores, computed via the rank statistic with midrank tie handling.
///
/// # Errors
///
/// Returns [`MetricError`] if lengths disagree or only one class is present.
pub fn roc_auc(scores: &[f64], y: &[f64]) -> Result<f64, MetricError> {
    check_lengths(scores.len(), y.len())?;
    let n_pos = y.iter().filter(|&&v| v == 1.0).count();
    let n_neg = y.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(MetricError::Degenerate(format!(
            "auc needs both classes, got {n_pos} positives / {n_neg} negatives"
        )));
    }
    // Rank scores (1-based), averaging ranks over ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Rows i..=j are tied; their shared midrank:
        let midrank = ((i + 1 + j + 1) as f64) / 2.0;
        for &row in &idx[i..=j] {
            if y[row] == 1.0 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let n_pos_f = n_pos as f64;
    let n_neg_f = n_neg as f64;
    Ok((rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0) / (n_pos_f * n_neg_f))
}

/// Multi-class logarithmic loss with probabilities clipped to
/// `[1e-15, 1 - 1e-15]`, matching the scikit-learn convention the paper's
/// benchmark relies on.
///
/// `p` is row-major with `n_classes` entries per row; `y` holds class
/// indices as `f64`.
///
/// # Errors
///
/// Returns [`MetricError`] if lengths disagree or a label is out of range.
pub fn log_loss(n_classes: usize, p: &[f64], y: &[f64]) -> Result<f64, MetricError> {
    if n_classes == 0 {
        return Err(MetricError::Degenerate("zero classes".into()));
    }
    check_lengths(p.len() / n_classes, y.len())?;
    const EPS: f64 = 1e-15;
    let mut total = 0.0;
    for (row, &label) in p.chunks_exact(n_classes).zip(y) {
        let c = label as usize;
        if label.fract() != 0.0 || c >= n_classes {
            return Err(MetricError::Degenerate(format!(
                "label {label} out of range for {n_classes} classes"
            )));
        }
        total -= row[c].clamp(EPS, 1.0 - EPS).ln();
    }
    Ok(total / y.len() as f64)
}

/// Fraction of predictions equal to the labels.
///
/// # Errors
///
/// Returns [`MetricError::LengthMismatch`] if lengths disagree.
pub fn accuracy(pred_labels: &[f64], y: &[f64]) -> Result<f64, MetricError> {
    check_lengths(pred_labels.len(), y.len())?;
    if y.is_empty() {
        return Err(MetricError::Degenerate("no rows".into()));
    }
    let hits = pred_labels.iter().zip(y).filter(|(a, b)| a == b).count();
    Ok(hits as f64 / y.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_ranking() {
        let auc = roc_auc(&[0.1, 0.4, 0.35, 0.8], &[0.0, 0.0, 0.0, 1.0]).unwrap();
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_reversed_ranking() {
        let auc = roc_auc(&[0.9, 0.1], &[0.0, 1.0]).unwrap();
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // Hand-computed: pairs (pos > neg): score 0.8>0.1, 0.8>0.4, 0.35>0.1
        // => 3 wins of 4 pairs = 0.75.
        let auc = roc_auc(&[0.1, 0.4, 0.35, 0.8], &[0.0, 0.0, 1.0, 1.0]).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_ties_give_half_credit() {
        let auc = roc_auc(&[0.5, 0.5], &[0.0, 1.0]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_error() {
        assert!(roc_auc(&[0.1, 0.2], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn auc_complement_symmetry() {
        // Negating scores must flip auc to 1 - auc.
        let scores = [0.3, 0.7, 0.2, 0.9, 0.5];
        let y = [0.0, 1.0, 0.0, 1.0, 0.0];
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let a = roc_auc(&scores, &y).unwrap();
        let b = roc_auc(&neg, &y).unwrap();
        assert!((a + b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_loss_confident_correct_is_small() {
        let ll = log_loss(2, &[0.01, 0.99, 0.99, 0.01], &[1.0, 0.0]).unwrap();
        assert!(ll < 0.02);
    }

    #[test]
    fn log_loss_uniform_is_ln_k() {
        let ll = log_loss(4, &[0.25; 8], &[0.0, 3.0]).unwrap();
        assert!((ll - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn log_loss_clips_zero_probability() {
        let ll = log_loss(2, &[1.0, 0.0], &[1.0]).unwrap();
        assert!(ll.is_finite());
        assert!(ll > 30.0, "clipped at 1e-15 => about 34.5");
    }

    #[test]
    fn log_loss_rejects_bad_label() {
        assert!(log_loss(2, &[0.5, 0.5], &[2.0]).is_err());
    }

    #[test]
    fn accuracy_counts_hits() {
        let acc = accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }
}
