use std::error::Error;
use std::fmt;

/// Model predictions: class probabilities or regression values.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Row-major class probabilities: `p[i * n_classes + c]` is the
    /// probability of class `c` for row `i`.
    Probs {
        /// Number of classes.
        n_classes: usize,
        /// Flattened probabilities, length `n_rows * n_classes`.
        p: Vec<f64>,
    },
    /// Regression predictions, one per row.
    Values(Vec<f64>),
}

/// Error from evaluating a metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// The prediction kind does not match what the metric expects.
    KindMismatch(&'static str),
    /// Prediction and label lengths disagree.
    LengthMismatch {
        /// Number of predicted rows.
        pred: usize,
        /// Number of labels.
        labels: usize,
    },
    /// The metric is undefined on this input (e.g. auc with one class).
    Degenerate(String),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::KindMismatch(what) => {
                write!(f, "prediction kind mismatch: expected {what}")
            }
            MetricError::LengthMismatch { pred, labels } => {
                write!(f, "{pred} predictions for {labels} labels")
            }
            MetricError::Degenerate(msg) => write!(f, "metric undefined: {msg}"),
        }
    }
}

impl Error for MetricError {}

impl Pred {
    /// Convenience constructor for binary probabilities given the
    /// positive-class probability of each row.
    pub fn binary_probs(positive: Vec<f64>) -> Pred {
        let mut p = Vec::with_capacity(positive.len() * 2);
        for &q in &positive {
            p.push(1.0 - q);
            p.push(q);
        }
        Pred::Probs { n_classes: 2, p }
    }

    /// Convenience constructor for regression values.
    pub fn from_values(v: Vec<f64>) -> Pred {
        Pred::Values(v)
    }

    /// Number of predicted rows.
    pub fn n_rows(&self) -> usize {
        match self {
            Pred::Probs { n_classes, p } => p.len() / n_classes,
            Pred::Values(v) => v.len(),
        }
    }

    /// The regression values.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::KindMismatch`] for probability predictions.
    pub fn values(&self) -> Result<&[f64], MetricError> {
        match self {
            Pred::Values(v) => Ok(v),
            Pred::Probs { .. } => Err(MetricError::KindMismatch("regression values")),
        }
    }

    /// The class count and flattened probability matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::KindMismatch`] for value predictions.
    pub fn probs(&self) -> Result<(usize, &[f64]), MetricError> {
        match self {
            Pred::Probs { n_classes, p } => Ok((*n_classes, p)),
            Pred::Values(_) => Err(MetricError::KindMismatch("class probabilities")),
        }
    }

    /// The positive-class probability of each row (binary tasks).
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::KindMismatch`] for value predictions or
    /// non-binary probabilities.
    pub fn positive_scores(&self) -> Result<Vec<f64>, MetricError> {
        match self {
            Pred::Probs { n_classes: 2, p } => Ok(p.chunks_exact(2).map(|row| row[1]).collect()),
            _ => Err(MetricError::KindMismatch("binary class probabilities")),
        }
    }

    /// Argmax class labels.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::KindMismatch`] for value predictions.
    pub fn hard_labels(&self) -> Result<Vec<f64>, MetricError> {
        let (k, p) = self.probs()?;
        Ok(p.chunks_exact(k)
            .map(|row| {
                let mut best = 0usize;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                best as f64
            })
            .collect())
    }
}

pub(crate) fn check_lengths(pred: usize, labels: usize) -> Result<(), MetricError> {
    if pred != labels {
        Err(MetricError::LengthMismatch { pred, labels })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_probs_layout() {
        let p = Pred::binary_probs(vec![0.25, 0.875]);
        let (k, flat) = p.probs().unwrap();
        assert_eq!(k, 2);
        assert_eq!(flat, &[0.75, 0.25, 0.125, 0.875]);
        assert_eq!(p.n_rows(), 2);
        assert_eq!(p.positive_scores().unwrap(), vec![0.25, 0.875]);
    }

    #[test]
    fn hard_labels_argmax() {
        let p = Pred::Probs {
            n_classes: 3,
            p: vec![0.1, 0.7, 0.2, 0.5, 0.2, 0.3],
        };
        assert_eq!(p.hard_labels().unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn kind_mismatch_errors() {
        assert!(Pred::from_values(vec![1.0]).probs().is_err());
        assert!(Pred::binary_probs(vec![0.5]).values().is_err());
        let multi = Pred::Probs {
            n_classes: 3,
            p: vec![0.2, 0.3, 0.5],
        };
        assert!(multi.positive_scores().is_err());
    }
}
