use serde::{Deserialize, Serialize};

/// The two anchor scores of the AutoML-benchmark calibration used in the
/// paper's Figures 5, 6, 8 and Table 9: the score of a constant
/// class-prior (or label-mean) predictor maps to 0 and the score of a
/// tuned random forest maps to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleAnchors {
    /// Raw score of the constant baseline predictor (maps to 0).
    pub baseline: f64,
    /// Raw score of the tuned random forest (maps to 1).
    pub reference: f64,
}

impl ScaleAnchors {
    /// Creates anchors; callers obtain the raw scores by evaluating the two
    /// anchor models on the test fold.
    pub fn new(baseline: f64, reference: f64) -> Self {
        ScaleAnchors {
            baseline,
            reference,
        }
    }
}

/// Calibrates a raw score to the benchmark's scaled score:
/// `(score - baseline) / (reference - baseline)`.
///
/// If the reference fails to beat the baseline (degenerate task — e.g.
/// the tuned forest is overconfident under log-loss), the raw difference
/// from the baseline is returned so that better-than-baseline still reads
/// as positive; dividing by a non-positive denominator would flip signs.
pub fn scaled_score(raw: f64, anchors: ScaleAnchors) -> f64 {
    let denom = anchors.reference - anchors.baseline;
    if denom <= 1e-12 {
        raw - anchors.baseline
    } else {
        (raw - anchors.baseline) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_map_to_zero_and_one() {
        let a = ScaleAnchors::new(0.5, 0.9);
        assert!(scaled_score(0.5, a).abs() < 1e-12);
        assert!((scaled_score(0.9, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn above_reference_exceeds_one() {
        let a = ScaleAnchors::new(0.5, 0.9);
        assert!(scaled_score(0.95, a) > 1.0);
    }

    #[test]
    fn degenerate_anchors_fall_back() {
        let a = ScaleAnchors::new(0.7, 0.7);
        assert!((scaled_score(0.8, a) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn inverted_anchors_do_not_flip_signs() {
        // Reference below baseline: beating the baseline must still read
        // positive.
        let a = ScaleAnchors::new(0.5, 0.2);
        assert!(scaled_score(0.6, a) > 0.0);
        assert!(scaled_score(0.4, a) < 0.0);
    }
}
