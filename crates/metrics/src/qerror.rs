use crate::pred::{check_lengths, MetricError};

/// Q-error of one prediction, with inputs in *natural-log space* (i.e. the
/// model predicts `ln(selectivity)`).
///
/// In linear space, `q = max(pred/true, true/pred) >= 1`; in log space this
/// is `exp(|pred - true|)`, which is how the selectivity-estimation models
/// of Dutt et al. (the paper's Section 5.3 setting) are trained.
pub fn q_error(pred_ln: f64, true_ln: f64) -> f64 {
    (pred_ln - true_ln).abs().exp()
}

/// The `q`-quantile (e.g. 0.95 for the paper's Table 4) of per-row
/// q-errors, computed with the nearest-rank method.
///
/// # Errors
///
/// Returns [`MetricError`] if lengths disagree, the input is empty, or the
/// quantile is outside `(0, 1]`.
pub fn q_error_quantile(pred_ln: &[f64], true_ln: &[f64], q: f64) -> Result<f64, MetricError> {
    check_lengths(pred_ln.len(), true_ln.len())?;
    if pred_ln.is_empty() {
        return Err(MetricError::Degenerate("no rows".into()));
    }
    if !(q > 0.0 && q <= 1.0) {
        return Err(MetricError::Degenerate(format!(
            "quantile {q} outside (0, 1]"
        )));
    }
    let mut errs: Vec<f64> = pred_ln
        .iter()
        .zip(true_ln)
        .map(|(&p, &t)| q_error(p, t))
        .collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q * errs.len() as f64).ceil() as usize).clamp(1, errs.len());
    Ok(errs[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_q_one() {
        assert!((q_error(-3.2, -3.2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn q_error_is_symmetric() {
        // Over- and under-estimating by the same factor gives the same q.
        let t = (0.01f64).ln();
        let over = (0.02f64).ln();
        let under = (0.005f64).ln();
        assert!((q_error(over, t) - 2.0).abs() < 1e-9);
        assert!((q_error(under, t) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn q_error_at_least_one() {
        for (p, t) in [(0.0, 0.0), (-1.0, 2.0), (5.0, 4.9)] {
            assert!(q_error(p, t) >= 1.0);
        }
    }

    #[test]
    fn quantile_nearest_rank() {
        // q-errors are exp(0)=1, exp(1)=e, exp(2)=e^2, exp(3)=e^3.
        let t = [0.0, 0.0, 0.0, 0.0];
        let p = [0.0, 1.0, 2.0, 3.0];
        let q50 = q_error_quantile(&p, &t, 0.5).unwrap();
        assert!((q50 - 1.0f64.exp()).abs() < 1e-9);
        let q100 = q_error_quantile(&p, &t, 1.0).unwrap();
        assert!((q100 - 3.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn quantile_validates_inputs() {
        assert!(q_error_quantile(&[], &[], 0.95).is_err());
        assert!(q_error_quantile(&[0.0], &[0.0], 0.0).is_err());
        assert!(q_error_quantile(&[0.0], &[0.0, 1.0], 0.5).is_err());
    }
}
