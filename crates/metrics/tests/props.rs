//! Property-based tests of metric identities.

use flaml_metrics::{
    accuracy, log_loss, mae, mse, q_error, q_error_quantile, r2, roc_auc, scaled_score,
    ScaleAnchors,
};
use proptest::prelude::*;

fn scores_and_labels() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..100).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.0f64..1.0, n),
            proptest::collection::vec(0u8..2, n),
        )
            .prop_filter("both classes", |(_, y)| y.contains(&0) && y.contains(&1))
            .prop_map(|(s, y)| (s, y.into_iter().map(f64::from).collect()))
    })
}

proptest! {
    #[test]
    fn auc_is_a_probability((scores, y) in scores_and_labels()) {
        let auc = roc_auc(&scores, &y).unwrap();
        prop_assert!((0.0..=1.0).contains(&auc), "auc {}", auc);
    }

    #[test]
    fn auc_score_negation_symmetry((scores, y) in scores_and_labels()) {
        let a = roc_auc(&scores, &y).unwrap();
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let b = roc_auc(&neg, &y).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_invariant_to_monotone_transform((scores, y) in scores_and_labels()) {
        let a = roc_auc(&scores, &y).unwrap();
        let squashed: Vec<f64> = scores.iter().map(|s| s.powi(3) * 7.0 - 2.0).collect();
        let b = roc_auc(&squashed, &y).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }

    #[test]
    fn log_loss_nonnegative((probs, y) in scores_and_labels()) {
        let flat: Vec<f64> = probs.iter().flat_map(|&p| [1.0 - p, p]).collect();
        let ll = log_loss(2, &flat, &y).unwrap();
        prop_assert!(ll >= 0.0);
        prop_assert!(ll.is_finite());
    }

    #[test]
    fn accuracy_is_a_fraction((scores, y) in scores_and_labels()) {
        let labels: Vec<f64> = scores.iter().map(|&s| f64::from(s > 0.5)).collect();
        let acc = accuracy(&labels, &y).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn mse_mae_nonnegative_and_zero_iff_equal(v in proptest::collection::vec(-100f64..100.0, 1..50)) {
        prop_assert_eq!(mse(&v, &v).unwrap(), 0.0);
        prop_assert_eq!(mae(&v, &v).unwrap(), 0.0);
        let shifted: Vec<f64> = v.iter().map(|x| x + 1.0).collect();
        prop_assert!(mse(&shifted, &v).unwrap() > 0.0);
        prop_assert!(mae(&shifted, &v).unwrap() > 0.0);
    }

    #[test]
    fn r2_at_most_one(
        pred in proptest::collection::vec(-100f64..100.0, 3..50),
    ) {
        let y: Vec<f64> = (0..pred.len()).map(|i| i as f64).collect();
        let v = r2(&pred, &y).unwrap();
        prop_assert!(v <= 1.0 + 1e-12);
    }

    #[test]
    fn q_error_at_least_one(a in -20f64..20.0, b in -20f64..20.0) {
        prop_assert!(q_error(a, b) >= 1.0 - 1e-12);
        // Symmetry.
        prop_assert!((q_error(a, b) - q_error(b, a)).abs() < 1e-9);
    }

    #[test]
    fn q_error_quantile_monotone_in_q(
        pred in proptest::collection::vec(-5f64..5.0, 4..40),
    ) {
        let truth: Vec<f64> = vec![0.0; pred.len()];
        let q50 = q_error_quantile(&pred, &truth, 0.5).unwrap();
        let q95 = q_error_quantile(&pred, &truth, 0.95).unwrap();
        prop_assert!(q95 >= q50 - 1e-12);
    }

    #[test]
    fn scaled_score_is_affine(raw in -5f64..5.0, base in -1f64..1.0, delta in 0.01f64..2.0) {
        let anchors = ScaleAnchors::new(base, base + delta);
        let s = scaled_score(raw, anchors);
        // Exact anchors.
        prop_assert!(scaled_score(base, anchors).abs() < 1e-9);
        prop_assert!((scaled_score(base + delta, anchors) - 1.0).abs() < 1e-9);
        // Monotone.
        prop_assert!(scaled_score(raw + 0.1, anchors) > s);
    }
}
