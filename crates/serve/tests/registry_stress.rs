//! Stress test: `ModelRegistry` under repeated concurrent
//! promote→rollback cycles across many slots.
//!
//! Each slot has one writer thread running publish→publish→rollback
//! cycles while reader threads continuously snapshot every slot. The
//! model payload encodes the version it was published as, so a reader
//! can detect a torn snapshot (version and model disagree) or an
//! out-of-range version (a version number the writer never published).

use flaml_data::Task;
use flaml_learners::Encoding;
use flaml_serve::{CompiledLinear, CompiledModel, ModelRegistry};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

const SLOTS: usize = 8;
const CYCLES: usize = 60;
const READERS: usize = 4;

/// A model whose weight encodes `(slot, version)`, so any mismatch
/// between the snapshot's `version` field and its payload is visible.
fn model_for(slot: usize, version: u64) -> CompiledModel {
    CompiledModel::Linear(CompiledLinear {
        encodings: vec![Encoding::Numeric {
            mean: 0.0,
            std: 1.0,
        }],
        weights: vec![vec![slot as f64 * 1_000.0 + version as f64, 0.0]],
        task: Task::Regression,
        y_mean: 0.0,
        y_std: 1.0,
    })
}

fn slot_name(slot: usize) -> String {
    format!("tenant-{slot}/model")
}

#[test]
fn concurrent_promote_rollback_never_tears() {
    let registry = Arc::new(ModelRegistry::new());
    // Seed every slot so readers always have something to observe.
    for slot in 0..SLOTS {
        registry.publish(&slot_name(slot), model_for(slot, 1));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let observed = Arc::new(AtomicUsize::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let observed = Arc::clone(&observed);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for slot in 0..SLOTS {
                        let snap = registry
                            .get(&slot_name(slot))
                            .expect("seeded slot never disappears");
                        // 2 publishes per cycle on top of the seed.
                        let max_version = 1 + 2 * CYCLES as u64;
                        assert!(
                            snap.version >= 1 && snap.version <= max_version,
                            "slot {slot} served unpublished version {}",
                            snap.version
                        );
                        assert_eq!(
                            snap.model,
                            model_for(slot, snap.version),
                            "slot {slot} version {} served a torn model",
                            snap.version
                        );
                        observed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..SLOTS)
        .map(|slot| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let name = slot_name(slot);
                let mut next = 2u64;
                for _ in 0..CYCLES {
                    // Promote twice, then step back once: the slot is
                    // permanently churning between fresh and prior
                    // versions while readers snapshot it.
                    let v1 = registry.publish(&name, model_for(slot, next));
                    assert_eq!(v1.version, next);
                    // `previous` is the *served* version, which the prior
                    // cycle left one step behind via its rollback.
                    assert_eq!(v1.previous, Some((next - 2).max(1)));
                    let v2 = registry.publish(&name, model_for(slot, next + 1));
                    assert_eq!(v2.version, next + 1);
                    assert_eq!(v2.previous, Some(next));
                    let rolled = registry.rollback(&name);
                    assert_eq!(rolled, Some(next));
                    next += 2;
                }
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join()
            .expect("reader observed a torn or out-of-order version");
    }

    // History is complete: seed + 2 per cycle, rollbacks discard nothing.
    for slot in 0..SLOTS {
        let name = slot_name(slot);
        assert_eq!(registry.n_versions(&name), 1 + 2 * CYCLES);
        // Every writer ends on a rollback, so the served version is the
        // penultimate one; rolling forward again still works.
        let current = registry.get(&name).unwrap();
        assert_eq!(current.version, 2 * CYCLES as u64);
        let republished = registry.publish(&name, model_for(slot, 1 + 2 * CYCLES as u64 + 1));
        assert_eq!(republished.version, 1 + 2 * CYCLES as u64 + 1);
    }
    assert!(
        observed.load(Ordering::Relaxed) > 0,
        "readers never got to observe a snapshot"
    );
}
