//! Property-based tests of the artifact format: random fitted models
//! and hand-built slabs with pathological floats (NaN/Inf leaf values,
//! subnormal thresholds) serialize → deserialize → predict
//! bit-identically, and corrupt or truncated artifacts are rejected
//! with a typed error.

use flaml_data::{Dataset, Task};
use flaml_learners::{Forest, ForestParams, Gbdt, GbdtParams, Linear, LinearParams};
use flaml_serve::{ArtifactError, CompiledForest, CompiledGbdt, CompiledModel};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (20usize..100, 0usize..3).prop_flat_map(|(n, kind)| {
        (
            proptest::collection::vec(-50f64..50.0, n),
            proptest::collection::vec(-1f64..1.0, n),
        )
            .prop_map(move |(c0, c1)| {
                let (task, y): (Task, Vec<f64>) = match kind {
                    0 => (
                        Task::Binary,
                        c0.iter().map(|&v| f64::from(v > 0.0)).collect(),
                    ),
                    1 => (
                        Task::MultiClass(3),
                        c0.iter()
                            .map(|&v| ((v.abs() / 18.0) as usize).min(2) as f64)
                            .collect(),
                    ),
                    _ => (
                        Task::Regression,
                        c0.iter().zip(&c1).map(|(&a, &b)| a * 0.5 + b).collect(),
                    ),
                };
                Dataset::new("prop", task, vec![c0, c1], y).unwrap()
            })
            .prop_filter("all classes present", |d| match d.task() {
                Task::Binary => d.target().contains(&0.0) && d.target().contains(&1.0),
                Task::MultiClass(k) => (0..k).all(|c| d.target().contains(&(c as f64))),
                Task::Regression => true,
            })
    })
}

/// A tiny hand-built boosted slab: one tree, one split on feature 0,
/// with caller-chosen threshold-adjacent leaf values. Lets the
/// round-trip property reach leaf payloads (NaN, ±Inf, subnormals) a
/// real fit would never produce.
fn slab_gbdt(cut: f64, left_leaf: f64, right_leaf: f64) -> CompiledModel {
    CompiledModel::Gbdt(CompiledGbdt {
        cuts: vec![vec![cut]],
        n_groups: 1,
        init_scores: vec![0.0],
        task: Task::Regression,
        tree_roots: vec![0],
        feature: vec![0, 0, 0],
        threshold: vec![1, 0, 0],
        left: vec![1, 0, 0],
        right: vec![2, 0, 0],
        leaf_value: vec![0.0, left_leaf, right_leaf],
        is_leaf: vec![false, true, true],
    })
}

fn slab_forest(threshold: f64, left_leaf: f64, right_leaf: f64) -> CompiledModel {
    CompiledModel::Forest(CompiledForest {
        task: Task::Regression,
        n_features: 1,
        leaf_width: 1,
        tree_roots: vec![0],
        feature: vec![0, 0, 0],
        threshold: vec![threshold, 0.0, 0.0],
        left: vec![1, 0, 0],
        right: vec![2, 0, 0],
        is_leaf: vec![false, true, true],
        values: vec![0.0, left_leaf, right_leaf],
    })
}

fn pred_bits(model: &CompiledModel, data: &Dataset) -> Vec<u64> {
    use flaml_metrics::Pred;
    match model.predict(data) {
        Pred::Values(v) => v.iter().map(|x| x.to_bits()).collect(),
        Pred::Probs { p, .. } => p.iter().map(|x| x.to_bits()).collect(),
    }
}

/// Pathological f64s a serialization layer is most likely to mangle.
fn arb_edge_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN_POSITIVE / 8.0), // subnormal
        Just(-f64::MIN_POSITIVE / 8.0),
        Just(-0.0),
        Just(5e-324), // smallest subnormal
        Just(1e308),
        -1f64..1.0,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fitted_models_round_trip_bit_identically(
        data in arb_dataset(),
        seed in 0u64..20,
        learner in 0usize..3,
    ) {
        let model: flaml_learners::FittedModel = match learner {
            0 => Gbdt::fit(&data, &GbdtParams { n_trees: 6, ..GbdtParams::default() }, seed)
                .unwrap().into(),
            1 => Forest::fit(&data, &ForestParams { n_trees: 4, ..ForestParams::default() }, seed)
                .unwrap().into(),
            _ => Linear::fit(&data, &LinearParams::default(), seed).unwrap().into(),
        };
        let compiled = CompiledModel::compile(&model).unwrap();
        let text = compiled.to_artifact_string();
        let loaded = CompiledModel::from_artifact_str(&text).unwrap();
        prop_assert_eq!(&loaded, &compiled);
        prop_assert_eq!(pred_bits(&loaded, &data), pred_bits(&compiled, &data));
    }

    #[test]
    fn pathological_leaf_values_survive_the_round_trip(
        left in arb_edge_f64(),
        right in arb_edge_f64(),
        cut in arb_edge_f64(),
        xs in proptest::collection::vec(-2f64..2.0, 5..40),
    ) {
        // Subnormal/±Inf cuts and NaN/Inf leaves: predictions of the
        // reloaded artifact must match the original bit-for-bit.
        let threshold = if cut.is_nan() { 0.0 } else { cut };
        let n = xs.len();
        let data = Dataset::new(
            "edge",
            Task::Regression,
            vec![xs],
            vec![0.0; n],
        ).unwrap();
        for model in [slab_gbdt(threshold, left, right), slab_forest(threshold, left, right)] {
            let text = model.to_artifact_string();
            let loaded = CompiledModel::from_artifact_str(&text).unwrap();
            // PartialEq is useless under NaN; byte-compare the
            // serialized form instead (floats render bit-exactly).
            prop_assert_eq!(loaded.to_artifact_string(), text);
            prop_assert_eq!(pred_bits(&loaded, &data), pred_bits(&model, &data));
        }
    }

    #[test]
    fn truncated_artifacts_are_rejected_with_a_typed_error(
        data in arb_dataset(),
        frac in 0.0f64..0.999,
    ) {
        let model: flaml_learners::FittedModel =
            Linear::fit(&data, &LinearParams::default(), 0).unwrap().into();
        let text = CompiledModel::compile(&model).unwrap().to_artifact_string();
        let cut = ((text.len() as f64) * frac) as usize;
        let err = CompiledModel::from_artifact_str(&text[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, ArtifactError::Parse(_)),
            "truncation at {} gave {:?}", cut, err
        );
    }

    #[test]
    fn corrupted_payload_bytes_never_load_silently(
        data in arb_dataset(),
        seed in 0u64..10,
        at_frac in 0.0f64..1.0,
        flip in 1u8..=127,
    ) {
        let model: flaml_learners::FittedModel =
            Linear::fit(&data, &LinearParams::default(), seed).unwrap().into();
        let compiled = CompiledModel::compile(&model).unwrap();
        let text = compiled.to_artifact_string();
        let mut bytes = text.clone().into_bytes();
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        bytes[at] ^= flip;
        let Ok(corrupt) = String::from_utf8(bytes) else {
            // Not valid UTF-8 any more: the read layer would reject it.
            continue;
        };
        match CompiledModel::from_artifact_str(&corrupt) {
            // A flip can land in ignorable whitespace or flip a digit
            // of the stored fingerprint *and* be detected; the only
            // unacceptable outcome is loading a payload that is not
            // the original model.
            Ok(loaded) => prop_assert_eq!(&loaded, &compiled),
            Err(
                ArtifactError::Parse(_)
                | ArtifactError::BadMagic { .. }
                | ArtifactError::Version { .. }
                | ArtifactError::FingerprintMismatch { .. },
            ) => {}
            Err(other) => prop_assert!(false, "untyped rejection {:?}", other),
        }
    }
}
