//! End-to-end serving guarantees: compiled artifacts predict
//! bit-identically to the interpreted models for every learner kind ×
//! task kind, batched pool inference is byte-identical to sequential,
//! artifacts survive a disk round trip, and the registry never serves
//! a torn or stale-after-promote model under concurrent load.

use flaml_data::{Dataset, Task};
use flaml_exec::ExecPool;
use flaml_learners::FittedModel;
use flaml_learners::{
    fit_meta, meta_features, Forest, ForestParams, Gbdt, GbdtParams, Linear, LinearParams,
    StackedModel,
};
use flaml_metrics::Pred;
use flaml_serve::{BatchEngine, CompiledModel, ModelRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn dataset(task: Task, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
    // Sprinkle in missing values so the NaN routing of every tree
    // walker is exercised.
    let x2: Vec<f64> = (0..n)
        .map(|i| {
            if i % 7 == 0 {
                f64::NAN
            } else {
                rng.gen::<f64>()
            }
        })
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| match task {
            Task::Binary => f64::from(x0[i] + x1[i] > 0.0),
            Task::MultiClass(k) => (((x0[i] * 1.3 + x1[i]).abs() * 2.0) as usize).min(k - 1) as f64,
            Task::Regression => x0[i] * 2.0 + (x1[i] * 3.0).sin(),
        })
        .collect();
    Dataset::new("serve-test", task, vec![x0, x1, x2], y).unwrap()
}

fn fit_all(data: &Dataset) -> Vec<(&'static str, FittedModel)> {
    let gbdt: FittedModel = Gbdt::fit(
        data,
        &GbdtParams {
            n_trees: 12,
            ..GbdtParams::default()
        },
        7,
    )
    .unwrap()
    .into();
    let forest: FittedModel = Forest::fit(
        data,
        &ForestParams {
            n_trees: 8,
            ..ForestParams::default()
        },
        7,
    )
    .unwrap()
    .into();
    let linear: FittedModel = Linear::fit(data, &LinearParams::default(), 7)
        .unwrap()
        .into();
    let members = vec![gbdt.clone(), forest.clone()];
    let oof = meta_features(&members, data, data.target().to_vec());
    let meta = fit_meta(&oof, 7).unwrap();
    let stacked: FittedModel = StackedModel::new(members, meta, data.task()).into();
    vec![
        ("gbdt", gbdt),
        ("forest", forest),
        ("linear", linear),
        ("stacked", stacked),
    ]
}

fn assert_bits_equal(a: &Pred, b: &Pred, what: &str) {
    match (a, b) {
        (Pred::Values(va), Pred::Values(vb)) => {
            assert_eq!(va.len(), vb.len(), "{what}: row count");
            for (i, (x, y)) in va.iter().zip(vb).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: value row {i}");
            }
        }
        (
            Pred::Probs {
                n_classes: ka,
                p: pa,
            },
            Pred::Probs {
                n_classes: kb,
                p: pb,
            },
        ) => {
            assert_eq!(ka, kb, "{what}: class count");
            assert_eq!(pa.len(), pb.len(), "{what}: prob count");
            for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: prob {i}");
            }
        }
        _ => panic!("{what}: prediction kind mismatch"),
    }
}

fn all_tasks() -> Vec<Task> {
    vec![Task::Binary, Task::MultiClass(3), Task::Regression]
}

#[test]
fn compiled_predictions_bit_identical_for_every_learner_and_task() {
    for task in all_tasks() {
        let data = dataset(task, 160, 11);
        for (name, model) in fit_all(&data) {
            let compiled = CompiledModel::compile(&model).unwrap();
            let interpreted = model.predict(&data);
            let served = compiled.predict(&data);
            assert_bits_equal(&interpreted, &served, &format!("{name} on {task:?}"));
        }
    }
}

#[test]
fn artifact_disk_round_trip_preserves_predictions() {
    let dir = std::env::temp_dir().join("flaml-serve-roundtrip-test");
    for task in all_tasks() {
        let data = dataset(task, 120, 23);
        for (name, model) in fit_all(&data) {
            let compiled = CompiledModel::compile(&model).unwrap();
            let path = dir.join(format!("{name}-{task:?}.json"));
            let fp = compiled.save(&path).unwrap();
            let loaded = CompiledModel::load(&path).unwrap();
            assert_eq!(loaded, compiled, "{name} on {task:?}: artifact round trip");
            assert_eq!(
                flaml_serve::fingerprint(&serde_json::to_string(&loaded).unwrap()),
                fp
            );
            assert_bits_equal(
                &model.predict(&data),
                &loaded.predict(&data),
                &format!("{name} on {task:?} after reload"),
            );
        }
    }
}

#[test]
fn batched_pool_inference_is_byte_identical_to_sequential() {
    for task in all_tasks() {
        let data = dataset(task, 250, 37);
        for (name, model) in fit_all(&data) {
            let compiled = CompiledModel::compile(&model).unwrap();
            let sequential = model.predict(&data);
            for workers in [1usize, 4] {
                let pool = ExecPool::new(workers);
                // A batch size that does not divide the row count, so
                // the last chunk is ragged.
                let engine = BatchEngine::new(&pool, 48);
                let batched = engine.predict("slot", &compiled, &data);
                assert_bits_equal(
                    &sequential,
                    &batched,
                    &format!("{name} on {task:?} with {workers} workers"),
                );
            }
        }
    }
}

#[test]
fn batch_size_one_still_matches() {
    let data = dataset(Task::Binary, 40, 5);
    let (_, model) = fit_all(&data).remove(0);
    let compiled = CompiledModel::compile(&model).unwrap();
    let pool = ExecPool::new(3);
    let engine = BatchEngine::new(&pool, 1);
    assert_bits_equal(
        &model.predict(&data),
        &engine.predict("one", &compiled, &data),
        "gbdt row-at-a-time",
    );
}

#[test]
fn hot_swap_under_concurrent_load_never_serves_torn_or_stale_models() {
    let data = dataset(Task::Binary, 80, 41);
    // Distinct versions: linear models fit on different seeds.
    let versions: Vec<CompiledModel> = (0..20)
        .map(|seed| {
            let m: FittedModel = Linear::fit(&data, &LinearParams::default(), seed)
                .unwrap()
                .into();
            CompiledModel::compile(&m).unwrap()
        })
        .collect();
    let expected_fp: Vec<u64> = versions
        .iter()
        .map(|m| flaml_serve::fingerprint(&serde_json::to_string(m).unwrap()))
        .collect();

    let registry = Arc::new(ModelRegistry::new());
    let first = versions[0].clone();
    registry.publish("live", first);

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let expected_fp = expected_fp.clone();
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut observed = 0usize;
                while last_version < 20 {
                    let snap = registry.get("live").expect("slot always present");
                    // Monotonic: a reader never sees an older version
                    // after a newer one (no rollbacks in this run).
                    assert!(snap.version >= last_version, "stale model served");
                    // Consistent: the served payload is exactly the
                    // published version's payload, never a torn mix.
                    assert_eq!(
                        snap.fingerprint,
                        expected_fp[(snap.version - 1) as usize],
                        "torn model at version {}",
                        snap.version
                    );
                    last_version = snap.version;
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    for v in versions.iter().skip(1) {
        let published = registry.publish("live", v.clone()).version;
        // A get() after publish returns must see at least that version.
        assert!(registry.get("live").unwrap().version >= published);
    }
    for reader in readers {
        let observed = reader.join().expect("reader thread");
        assert!(observed >= 1);
    }
    assert_eq!(registry.n_versions("live"), 20);
}

#[test]
fn custom_models_are_rejected_with_a_typed_error() {
    use flaml_data::DatasetView;
    use flaml_learners::DynModel;

    #[derive(Debug)]
    struct Opaque;
    impl DynModel for Opaque {
        fn predict_dyn(&self, data: &DatasetView) -> Pred {
            Pred::from_values(vec![0.0; data.n_rows()])
        }
    }
    let model = FittedModel::Custom(Arc::new(Opaque));
    assert!(matches!(
        CompiledModel::compile(&model),
        Err(flaml_serve::ArtifactError::Unsupported(_))
    ));
}
