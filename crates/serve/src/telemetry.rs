//! Serving telemetry: per-slot latency percentiles, throughput and
//! batch occupancy, aggregated from the same [`TrialEvent`] stream the
//! training stack uses.
//!
//! [`crate::BatchEngine`] emits one [`TrialEventKind::ServeBatch`]
//! event per completed chunk and [`crate::ModelRegistry`] emits
//! promote/rollback events; [`ServeTelemetry`] folds them into
//! per-slot [`SlotStats`]. The generic [`flaml_exec::Telemetry`]
//! aggregator counts the same events at coarser grain (batches, rows,
//! promotions), so serving traffic shows up in existing dashboards
//! without any schema change.

use flaml_exec::{TrialEvent, TrialEventKind};
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Aggregated serving statistics of one registry slot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotStats {
    /// Completed batches (chunks).
    pub batches: usize,
    /// Rows served.
    pub rows: usize,
    /// Total batch wall seconds (sum over batches).
    pub total_secs: f64,
    occupancy_sum: f64,
    latencies: Vec<f64>,
}

impl SlotStats {
    fn record(&mut self, event: &TrialEvent) {
        self.batches += 1;
        self.rows += event.sample_size;
        let wall = event.wall_secs.unwrap_or(0.0);
        self.total_secs += wall;
        self.latencies.push(wall);
        self.occupancy_sum += event.cost.unwrap_or(0.0);
    }

    /// The `q`-th latency percentile in seconds (nearest-rank over the
    /// recorded batch latencies; 0 with no batches).
    pub fn latency_percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let rank = ((q / 100.0) * n as f64).ceil() as usize;
        sorted[rank.clamp(1, n) - 1]
    }

    /// Median batch latency in seconds.
    pub fn p50(&self) -> f64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile batch latency in seconds.
    pub fn p95(&self) -> f64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile batch latency in seconds.
    pub fn p99(&self) -> f64 {
        self.latency_percentile(99.0)
    }

    /// Rows per second over the recorded batches (0 with no wall time).
    pub fn throughput(&self) -> f64 {
        if self.total_secs > 0.0 {
            self.rows as f64 / self.total_secs
        } else {
            0.0
        }
    }

    /// Mean batch occupancy: rows per batch over the configured batch
    /// capacity, averaged across batches (1.0 = every batch full).
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches > 0 {
            self.occupancy_sum / self.batches as f64
        } else {
            0.0
        }
    }

    /// The raw per-batch latencies, in arrival order.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }
}

/// Aggregated serving telemetry across all slots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeTelemetry {
    /// Per-slot statistics keyed by slot name.
    pub slots: BTreeMap<String, SlotStats>,
    /// Model promotions observed.
    pub promoted: usize,
    /// Promotions broken down by reason ("drift" | "scheduled" |
    /// "manual", as carried on the event's message by
    /// [`crate::ModelRegistry::publish_with`]). Events without a
    /// reason count under "manual".
    pub promoted_reasons: BTreeMap<String, usize>,
    /// Rollbacks observed.
    pub rolled_back: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Last observed admission-queue depth gauge.
    pub queue_depth: usize,
    /// Maximum admission-queue depth observed.
    pub queue_depth_max: usize,
}

impl ServeTelemetry {
    /// An empty aggregate.
    pub fn new() -> ServeTelemetry {
        ServeTelemetry::default()
    }

    /// Folds one event in (non-serving events are ignored).
    pub fn record(&mut self, event: &TrialEvent) {
        match event.kind {
            TrialEventKind::ServeBatch => {
                self.slots
                    .entry(event.label.clone())
                    .or_default()
                    .record(event);
            }
            TrialEventKind::ServePromoted => {
                self.promoted += 1;
                let reason = event.message.as_deref().unwrap_or("manual").to_string();
                *self.promoted_reasons.entry(reason).or_insert(0) += 1;
            }
            TrialEventKind::ServeRolledBack => self.rolled_back += 1,
            TrialEventKind::ServeRejected => self.rejected += 1,
            TrialEventKind::ServeQueueDepth => {
                self.queue_depth = event.sample_size;
                self.queue_depth_max = self.queue_depth_max.max(event.sample_size);
            }
            _ => {}
        }
    }

    /// Drains every event currently buffered in `rx` (non-blocking) and
    /// folds them in. Returns `self` for chaining.
    pub fn drain(mut self, rx: &mpsc::Receiver<TrialEvent>) -> ServeTelemetry {
        while let Ok(ev) = rx.try_recv() {
            self.record(&ev);
        }
        self
    }

    /// Total rows served across all slots.
    pub fn total_rows(&self) -> usize {
        self.slots.values().map(|s| s.rows).sum()
    }

    /// Total batches across all slots.
    pub fn total_batches(&self) -> usize {
        self.slots.values().map(|s| s.batches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(slot: &str, rows: usize, wall: f64, occupancy: f64) -> TrialEvent {
        let mut ev = TrialEvent::new(TrialEventKind::ServeBatch);
        ev.label = slot.to_string();
        ev.sample_size = rows;
        ev.wall_secs = Some(wall);
        ev.cost = Some(occupancy);
        ev
    }

    #[test]
    fn aggregates_per_slot() {
        let mut t = ServeTelemetry::new();
        t.record(&batch("a", 32, 0.010, 1.0));
        t.record(&batch("a", 16, 0.030, 0.5));
        t.record(&batch("b", 8, 0.002, 0.25));
        t.record(&TrialEvent::new(TrialEventKind::ServePromoted));
        let mut drifted = TrialEvent::new(TrialEventKind::ServePromoted);
        drifted.message = Some("drift".to_string());
        t.record(&drifted);
        t.record(&TrialEvent::new(TrialEventKind::ServeRolledBack));
        t.record(&TrialEvent::new(TrialEventKind::Finished)); // ignored
        t.record(&TrialEvent::new(TrialEventKind::ServeRejected));
        let mut depth = TrialEvent::new(TrialEventKind::ServeQueueDepth);
        depth.sample_size = 5;
        t.record(&depth);
        depth.sample_size = 2;
        t.record(&depth);
        assert_eq!(t.total_rows(), 56);
        assert_eq!(t.total_batches(), 3);
        assert_eq!(t.promoted, 2);
        assert_eq!(
            t.promoted_reasons["manual"], 1,
            "no reason counts as manual"
        );
        assert_eq!(t.promoted_reasons["drift"], 1);
        assert_eq!(t.rolled_back, 1);
        assert_eq!(t.rejected, 1);
        assert_eq!(t.queue_depth, 2, "gauge keeps the last sample");
        assert_eq!(t.queue_depth_max, 5);
        let a = &t.slots["a"];
        assert_eq!(a.batches, 2);
        assert_eq!(a.rows, 48);
        assert!((a.total_secs - 0.040).abs() < 1e-12);
        assert!((a.throughput() - 48.0 / 0.040).abs() < 1e-6);
        assert!((a.mean_occupancy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut t = ServeTelemetry::new();
        for i in 1..=100 {
            t.record(&batch("s", 1, i as f64, 1.0));
        }
        let s = &t.slots["s"];
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.latency_percentile(100.0), 100.0);
        assert_eq!(s.latency_percentile(0.0), 1.0);
    }

    #[test]
    fn empty_slot_stats_are_zero() {
        let s = SlotStats::default();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.mean_occupancy(), 0.0);
    }
}
