//! Typed errors of the serving artifact layer.

use std::fmt;

/// Why compiling, saving or loading a serving artifact failed.
///
/// Every rejection path of [`crate::CompiledModel::load`] maps to a
/// distinct variant, so callers can tell a torn download
/// ([`ArtifactError::Parse`]) from a foreign file
/// ([`ArtifactError::BadMagic`]) from a corrupted payload
/// ([`ArtifactError::FingerprintMismatch`]).
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the artifact file failed.
    Io(std::io::Error),
    /// The file is not parseable artifact JSON (corrupt or truncated).
    Parse(String),
    /// The file parses but does not carry the artifact magic string.
    BadMagic {
        /// The magic string found in the file.
        found: String,
    },
    /// The artifact was written by an unsupported format version.
    Version {
        /// Format version found in the file.
        found: u32,
        /// Format version this build supports.
        supported: u32,
    },
    /// The file's structural layout is invalid: truncated slabs,
    /// misaligned section offsets, out-of-range node indices or
    /// inconsistent slab lengths in a binary artifact. Distinct from
    /// [`ArtifactError::Parse`] so operators can tell a torn download
    /// from a file that hashes correctly but violates the layout
    /// contract.
    Layout(String),
    /// The model payload does not hash to the fingerprint in the header.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        expected: u64,
        /// Fingerprint recomputed from the payload.
        found: u64,
    },
    /// The model cannot be compiled into an artifact (e.g. a custom
    /// dynamic model, whose prediction code lives outside the artifact).
    Unsupported(String),
    /// Durable persistence of the artifact failed (`ENOSPC`, failed
    /// fsync, torn write) — the typed storage failure, so the service
    /// layer can answer a structured 507 on a full disk.
    Storage(flaml_store::StorageError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::Parse(msg) => write!(f, "artifact parse error: {msg}"),
            ArtifactError::BadMagic { found } => {
                write!(f, "not a flaml artifact (magic {found:?})")
            }
            ArtifactError::Version { found, supported } => {
                write!(
                    f,
                    "artifact format v{found} not supported (this build reads v{supported})"
                )
            }
            ArtifactError::Layout(msg) => write!(f, "artifact layout error: {msg}"),
            ArtifactError::FingerprintMismatch { expected, found } => {
                write!(
                    f,
                    "artifact fingerprint mismatch: header {expected:#018x}, payload {found:#018x}"
                )
            }
            ArtifactError::Unsupported(msg) => write!(f, "model cannot be compiled: {msg}"),
            ArtifactError::Storage(e) => write!(f, "artifact storage error: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> ArtifactError {
        ArtifactError::Io(e)
    }
}

impl From<flaml_store::StorageError> for ArtifactError {
    fn from(e: flaml_store::StorageError) -> ArtifactError {
        ArtifactError::Storage(e)
    }
}

impl ArtifactError {
    /// Whether the failure means the device is out of space.
    pub fn is_no_space(&self) -> bool {
        matches!(self, ArtifactError::Storage(e) if e.is_no_space())
    }
}
