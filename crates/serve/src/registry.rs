//! The model registry: named serving slots with versioned, atomic
//! hot-swap and rollback.
//!
//! Each slot holds the full version history of the models published to
//! it. Readers take an `Arc` snapshot of the current version under a
//! read lock — a reader either sees the version that was current before
//! a concurrent publish or the one after it, never a torn or
//! half-written model, because the model behind the `Arc` is immutable.
//! Publishing appends a new version and swaps the current pointer under
//! the write lock; rollback steps the pointer back without discarding
//! history, so a rolled-back version can be rolled forward again by
//! republishing.

use crate::artifact::{fingerprint, CompiledModel};
use flaml_exec::{EventSink, TrialEvent, TrialEventKind};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// One published model version: immutable once created, shared by
/// `Arc` so a hot-swap never invalidates an in-flight reader.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedModel {
    /// Slot the model was published to.
    pub name: String,
    /// Version within the slot (1-based, monotonically increasing).
    pub version: u64,
    /// FNV-1a fingerprint of the model's serialized payload (the same
    /// value an artifact file records).
    pub fingerprint: u64,
    /// The compiled model.
    pub model: CompiledModel,
}

#[derive(Debug)]
struct Slot {
    versions: Vec<Arc<VersionedModel>>,
    current: usize,
}

/// Why a model version was promoted into its slot. Surfaced in the
/// promotion event's message and counted per reason by
/// [`crate::ServeTelemetry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteReason {
    /// An online challenger beat the champion after a detected drift.
    Drift,
    /// A scheduled (warmup or periodic) challenger round won.
    Scheduled,
    /// An operator or API client published directly.
    Manual,
}

impl PromoteReason {
    /// Stable lowercase name ("drift" | "scheduled" | "manual").
    pub fn name(&self) -> &'static str {
        match self {
            PromoteReason::Drift => "drift",
            PromoteReason::Scheduled => "scheduled",
            PromoteReason::Manual => "manual",
        }
    }

    /// Parses a name as printed by [`PromoteReason::name`].
    pub fn parse(s: &str) -> Option<PromoteReason> {
        match s {
            "drift" => Some(PromoteReason::Drift),
            "scheduled" => Some(PromoteReason::Scheduled),
            "manual" => Some(PromoteReason::Manual),
            _ => None,
        }
    }
}

/// The outcome of a publish: the new current version and the version
/// that was current immediately before it (`None` for a fresh slot).
/// The previous version is the exact rollback target an online
/// promoter records in its journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Published {
    /// The version just published (now current).
    pub version: u64,
    /// The version that was being served before this publish, if any.
    pub previous: Option<u64>,
}

/// Named, versioned serving slots with atomic hot-swap (see the module
/// docs for the consistency guarantees).
#[derive(Debug, Default)]
pub struct ModelRegistry {
    slots: RwLock<BTreeMap<String, Slot>>,
    sink: Option<EventSink>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// An empty registry emitting [`TrialEventKind::ServePromoted`] /
    /// [`TrialEventKind::ServeRolledBack`] events into `sink`.
    pub fn with_sink(sink: EventSink) -> ModelRegistry {
        ModelRegistry {
            slots: RwLock::new(BTreeMap::new()),
            sink: Some(sink),
        }
    }

    /// Publishes `model` as the next version of slot `name` and makes
    /// it current, attributed to [`PromoteReason::Manual`]. Returns the
    /// new version number and the previously-served one.
    pub fn publish(&self, name: &str, model: CompiledModel) -> Published {
        self.publish_with(name, model, PromoteReason::Manual)
    }

    /// [`ModelRegistry::publish`] with an explicit promotion reason
    /// (carried on the emitted event and tallied per reason by
    /// [`crate::ServeTelemetry`]).
    pub fn publish_with(
        &self,
        name: &str,
        model: CompiledModel,
        reason: PromoteReason,
    ) -> Published {
        let payload = serde_json::to_string(&model).expect("compiled models always serialize");
        let fp = fingerprint(&payload);
        let version;
        let previous;
        {
            let mut slots = self.slots.write().expect("registry lock");
            let slot = slots.entry(name.to_string()).or_insert(Slot {
                versions: Vec::new(),
                current: 0,
            });
            previous = slot.versions.get(slot.current).map(|v| v.version);
            version = slot.versions.last().map_or(1, |v| v.version + 1);
            slot.versions.push(Arc::new(VersionedModel {
                name: name.to_string(),
                version,
                fingerprint: fp,
                model,
            }));
            slot.current = slot.versions.len() - 1;
        }
        if let Some(sink) = &self.sink {
            let mut ev = TrialEvent::new(TrialEventKind::ServePromoted);
            ev.label = name.to_string();
            ev.job_id = version;
            ev.message = Some(reason.name().to_string());
            sink.emit(ev);
        }
        Published { version, previous }
    }

    /// The currently served version of slot `name`, or `None` for an
    /// unknown slot. The returned snapshot stays valid (and unchanged)
    /// across any number of concurrent publishes.
    pub fn get(&self, name: &str) -> Option<Arc<VersionedModel>> {
        let slots = self.slots.read().expect("registry lock");
        slots
            .get(name)
            .and_then(|slot| slot.versions.get(slot.current).cloned())
    }

    /// Steps slot `name` back to the previous version. Returns the
    /// version now being served, or `None` if the slot is unknown or
    /// already at its oldest version.
    pub fn rollback(&self, name: &str) -> Option<u64> {
        let version;
        {
            let mut slots = self.slots.write().expect("registry lock");
            let slot = slots.get_mut(name)?;
            if slot.current == 0 {
                return None;
            }
            slot.current -= 1;
            version = slot.versions[slot.current].version;
        }
        self.emit(TrialEventKind::ServeRolledBack, name, version);
        Some(version)
    }

    /// Number of versions ever published to slot `name` (rollback does
    /// not shrink history).
    pub fn n_versions(&self, name: &str) -> usize {
        let slots = self.slots.read().expect("registry lock");
        slots.get(name).map_or(0, |slot| slot.versions.len())
    }

    /// Names of all slots, sorted.
    pub fn slot_names(&self) -> Vec<String> {
        let slots = self.slots.read().expect("registry lock");
        slots.keys().cloned().collect()
    }

    fn emit(&self, kind: TrialEventKind, name: &str, version: u64) {
        if let Some(sink) = &self.sink {
            let mut ev = TrialEvent::new(kind);
            ev.label = name.to_string();
            ev.job_id = version;
            ev.message = Some(format!("v{version}"));
            sink.emit(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::CompiledLinear;
    use flaml_data::Task;
    use flaml_exec::{event_channel, Telemetry};
    use flaml_learners::Encoding;

    fn model(w: f64) -> CompiledModel {
        CompiledModel::Linear(CompiledLinear {
            encodings: vec![Encoding::Numeric {
                mean: 0.0,
                std: 1.0,
            }],
            weights: vec![vec![w, 0.0]],
            task: Task::Regression,
            y_mean: 0.0,
            y_std: 1.0,
        })
    }

    #[test]
    fn publish_get_rollback_cycle() {
        let (sink, rx) = event_channel();
        let reg = ModelRegistry::with_sink(sink);
        assert!(reg.get("m").is_none());
        assert_eq!(
            reg.publish("m", model(1.0)),
            Published {
                version: 1,
                previous: None
            }
        );
        assert_eq!(
            reg.publish("m", model(2.0)),
            Published {
                version: 2,
                previous: Some(1)
            }
        );
        assert_eq!(reg.get("m").unwrap().version, 2);
        assert_eq!(reg.rollback("m"), Some(1));
        assert_eq!(reg.get("m").unwrap().version, 1);
        assert_eq!(reg.rollback("m"), None, "already at the oldest version");
        assert_eq!(reg.n_versions("m"), 2, "rollback keeps history");
        // Republishing after a rollback continues the version sequence;
        // `previous` reports the *served* version, i.e. the rollback
        // target, not the newest history entry.
        assert_eq!(
            reg.publish("m", model(3.0)),
            Published {
                version: 3,
                previous: Some(1)
            }
        );
        assert_eq!(reg.get("m").unwrap().version, 3);
        assert_eq!(reg.slot_names(), vec!["m".to_string()]);
        let t = Telemetry::new().drain(&rx);
        assert_eq!(t.serve_promoted, 3);
        assert_eq!(t.serve_rolled_back, 1);
    }

    #[test]
    fn snapshots_survive_later_publishes() {
        let reg = ModelRegistry::new();
        reg.publish("m", model(1.0));
        let snap = reg.get("m").unwrap();
        reg.publish("m", model(2.0));
        assert_eq!(snap.version, 1, "snapshot is immutable");
        assert_eq!(snap.model, model(1.0));
        assert_eq!(reg.get("m").unwrap().version, 2);
    }

    #[test]
    fn fingerprint_matches_artifact_fingerprint() {
        let reg = ModelRegistry::new();
        reg.publish("m", model(1.5));
        let published = reg.get("m").unwrap();
        let dir = std::env::temp_dir().join("flaml-serve-registry-test");
        let path = dir.join("m.json");
        let fp = model(1.5).save(&path).unwrap();
        assert_eq!(published.fingerprint, fp);
    }
}
