//! Batched inference over the exec pool.
//!
//! A [`BatchEngine`] splits each request matrix into fixed-size row
//! chunks and runs them as pool jobs. Because [`crate::CompiledModel::bind`]
//! does all per-request setup up front and chunk evaluation is pure
//! per-row math, concatenating the chunk results in submission order —
//! which [`flaml_exec::ExecPool::run_batch`] guarantees — produces
//! output byte-identical to one sequential pass, regardless of worker
//! count or dispatch interleaving.
//!
//! Every completed chunk emits a [`TrialEventKind::ServeBatch`] event:
//! `label` carries the slot name, `sample_size` the chunk's row count,
//! `wall_secs` the chunk latency and `cost` the batch occupancy (rows
//! over configured batch capacity). [`crate::ServeTelemetry`] folds
//! these into per-slot latency percentiles and throughput.

use crate::artifact::CompiledModel;
use flaml_data::DatasetView;
use flaml_exec::{EventSink, ExecPool, Job, JobStatus, TrialEvent, TrialEventKind};
use flaml_metrics::Pred;

/// Batched inference engine over a shared [`ExecPool`].
#[derive(Debug)]
pub struct BatchEngine<'p> {
    pool: &'p ExecPool,
    batch_rows: usize,
    sink: Option<EventSink>,
}

impl<'p> BatchEngine<'p> {
    /// An engine chunking requests into `batch_rows`-row batches
    /// (clamped to at least 1).
    pub fn new(pool: &'p ExecPool, batch_rows: usize) -> BatchEngine<'p> {
        BatchEngine {
            pool,
            batch_rows: batch_rows.max(1),
            sink: None,
        }
    }

    /// Attaches a telemetry sink receiving one
    /// [`TrialEventKind::ServeBatch`] event per completed chunk.
    #[must_use]
    pub fn with_sink(mut self, sink: EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Configured rows per batch.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Predicts on `data` with the compiled model, chunked across the
    /// pool. Byte-identical to `model.predict(data)` and to the source
    /// interpreted model.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong feature count or a chunk
    /// evaluation panics.
    pub fn predict(&self, slot: &str, model: &CompiledModel, data: impl Into<DatasetView>) -> Pred {
        let data: DatasetView = data.into();
        let bound = model.bind(&data);
        let n = bound.n_rows();
        let chunks: Vec<(usize, usize)> = (0..n)
            .step_by(self.batch_rows)
            .map(|lo| (lo, (lo + self.batch_rows).min(n)))
            .collect();
        let bound_ref = &bound;
        let jobs: Vec<Job<'_, Vec<f64>>> = chunks
            .iter()
            .map(|&(lo, hi)| {
                Job::new(move |_| bound_ref.eval_range(lo, hi)).label(format!("{slot}[{lo}..{hi}]"))
            })
            .collect();
        // Results come back in submission order even under parallel
        // dispatch, so the concatenation below is deterministic.
        let results = self.pool.run_batch(jobs, None);
        let mut flat = Vec::with_capacity(n * bound.width());
        for (result, &(lo, hi)) in results.into_iter().zip(&chunks) {
            self.emit(slot, hi - lo, result.wall_secs);
            match result.status {
                JobStatus::Panicked(msg) => {
                    panic!("serving batch {slot} rows {lo}..{hi} panicked: {msg}")
                }
                status => flat.extend(status.into_value().expect("non-panic jobs carry a value")),
            }
        }
        bound.finish(flat)
    }

    fn emit(&self, slot: &str, rows: usize, wall_secs: f64) {
        if let Some(sink) = &self.sink {
            let mut ev = TrialEvent::new(TrialEventKind::ServeBatch);
            ev.label = slot.to_string();
            ev.sample_size = rows;
            ev.wall_secs = Some(wall_secs);
            ev.cost = Some(rows as f64 / self.batch_rows as f64);
            sink.emit(ev);
        }
    }
}
