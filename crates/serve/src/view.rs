//! Borrowed slab views: one evaluation path over any slab backing.
//!
//! [`CompiledModel`] owns its structure-of-arrays slabs as `Vec`s; the
//! binary blob format (`flaml-blob`) maps the same slabs straight off
//! disk. Both render themselves as a [`ModelView`] — a tree of borrowed
//! slices — and every prediction in the stack runs through the single
//! evaluator defined here. That is what makes the "bit-identical across
//! backings" contract structural rather than aspirational: there is
//! exactly one accumulation order, owned and mapped models merely feed
//! it different pointers.
//!
//! Two tiny enums absorb the representational differences a mapped
//! backing needs:
//!
//! * [`LeafFlags`] — `Vec<bool>` in owned models, a raw `u8` slab on
//!   disk (reinterpreting mapped bytes as `bool` would be UB).
//! * [`FloatSlab`] — `f64` thresholds/cuts, or the optional
//!   f32-quantized section of a blob. Quantized slabs are only ever
//!   written when every value round-trips `f64 → f32 → f64` exactly, so
//!   the widening read here reproduces the original bits by
//!   construction.

use crate::artifact::{
    CompiledForest, CompiledGbdt, CompiledLinear, CompiledModel, CompiledStacked,
};
use flaml_data::{DatasetView, Task};
use flaml_learners::link::{sigmoid, softmax_in_place};
use flaml_learners::{goes_left, BinMapper, LinearModel, PreparedBins};
use flaml_metrics::Pred;

/// Per-node leaf flags over either backing.
#[derive(Debug, Clone, Copy)]
pub enum LeafFlags<'a> {
    /// Owned models store `Vec<bool>`.
    Bools(&'a [bool]),
    /// Mapped slabs store one byte per node (nonzero = leaf).
    Bytes(&'a [u8]),
}

impl LeafFlags<'_> {
    /// Whether node `i` is a leaf.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self {
            LeafFlags::Bools(b) => b[i],
            LeafFlags::Bytes(b) => b[i] != 0,
        }
    }

    /// Nodes covered by the flags.
    pub fn len(&self) -> usize {
        match self {
            LeafFlags::Bools(b) => b.len(),
            LeafFlags::Bytes(b) => b.len(),
        }
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A float slab over either precision. Reads widen `f32 → f64`, which
/// is exact for every value a quantized section is allowed to hold.
#[derive(Debug, Clone, Copy)]
pub enum FloatSlab<'a> {
    /// Full-precision values.
    F64(&'a [f64]),
    /// Quantized values (each round-trips to its original `f64` bits).
    F32(&'a [f32]),
}

impl FloatSlab<'_> {
    /// Value `i`, widened to `f64`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            FloatSlab::F64(v) => v[i],
            FloatSlab::F32(v) => f64::from(v[i]),
        }
    }

    /// Values in the slab.
    pub fn len(&self) -> usize {
        match self {
            FloatSlab::F64(v) => v.len(),
            FloatSlab::F32(v) => v.len(),
        }
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole slab as owned `f64`s.
    pub fn to_vec(&self) -> Vec<f64> {
        match self {
            FloatSlab::F64(v) => v.to_vec(),
            FloatSlab::F32(v) => v.iter().map(|&x| f64::from(x)).collect(),
        }
    }
}

/// Per-feature bin cut points over either layout: nested `Vec`s (owned
/// models) or a flat value slab with prefix-sum offsets (mapped blobs).
#[derive(Debug, Clone, Copy)]
pub enum CutsRef<'a> {
    /// Owned ragged cuts.
    Nested(&'a [Vec<f64>]),
    /// Flat cuts: feature `j` owns `values[offsets[j]..offsets[j + 1]]`.
    Flat {
        /// `n_features + 1` nondecreasing prefix offsets.
        offsets: &'a [u64],
        /// All cut points, feature-major.
        values: FloatSlab<'a>,
    },
}

impl CutsRef<'_> {
    /// Feature columns the cuts describe.
    pub fn n_features(&self) -> usize {
        match self {
            CutsRef::Nested(c) => c.len(),
            CutsRef::Flat { offsets, .. } => offsets.len().saturating_sub(1),
        }
    }

    /// Materializes the ragged form [`BinMapper::from_cuts`] consumes.
    pub fn to_vecs(&self) -> Vec<Vec<f64>> {
        match self {
            CutsRef::Nested(c) => c.to_vec(),
            CutsRef::Flat { offsets, values } => offsets
                .windows(2)
                .map(|w| {
                    (w[0] as usize..w[1] as usize)
                        .map(|i| values.get(i))
                        .collect()
                })
                .collect(),
        }
    }
}

/// A boosted ensemble's slabs, borrowed from either backing. See
/// [`crate::CompiledGbdt`] for the layout contract.
#[derive(Debug, Clone)]
pub struct GbdtView<'a> {
    /// Task the model was trained for.
    pub task: Task,
    /// Score groups per boosting round.
    pub n_groups: usize,
    /// Initial score per group.
    pub init_scores: &'a [f64],
    /// Per-feature bin cut points of the training-time mapper.
    pub cuts: CutsRef<'a>,
    /// Slab index of each tree's root, in boosting order.
    pub tree_roots: &'a [u32],
    /// Split feature per node.
    pub feature: &'a [u32],
    /// Split threshold (bin index) per node.
    pub threshold: &'a [u32],
    /// Absolute slab index of the left child per node.
    pub left: &'a [u32],
    /// Absolute slab index of the right child per node.
    pub right: &'a [u32],
    /// Leaf value per node.
    pub leaf_value: &'a [f64],
    /// Whether each node is a leaf.
    pub is_leaf: LeafFlags<'a>,
}

impl GbdtView<'_> {
    fn eval_tree(&self, root: u32, binned: &flaml_learners::BinnedDataset, row: usize) -> f64 {
        let mut at = root as usize;
        loop {
            if self.is_leaf.get(at) {
                return self.leaf_value[at];
            }
            let bin = binned.column(self.feature[at] as usize)[row];
            at = if bin <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }
}

/// A forest's slabs, borrowed from either backing. See
/// [`crate::CompiledForest`] for the layout contract.
#[derive(Debug, Clone)]
pub struct ForestView<'a> {
    /// Task the model was trained for.
    pub task: Task,
    /// Feature columns the model was trained on.
    pub n_features: usize,
    /// Values stored per leaf.
    pub leaf_width: usize,
    /// Slab index of each tree's root.
    pub tree_roots: &'a [u32],
    /// Split feature per node.
    pub feature: &'a [u32],
    /// Split threshold (raw feature value) per node; possibly the
    /// quantized section, whose widening read is exact by construction.
    pub threshold: FloatSlab<'a>,
    /// Absolute slab index of the left child per node.
    pub left: &'a [u32],
    /// Absolute slab index of the right child per node.
    pub right: &'a [u32],
    /// Whether each node is a leaf.
    pub is_leaf: LeafFlags<'a>,
    /// `leaf_width` output values per node, node-parallel.
    pub values: &'a [f64],
}

impl ForestView<'_> {
    fn leaf_of(&self, root: u32, cols: &[Vec<f64>], row: usize) -> usize {
        let mut at = root as usize;
        loop {
            if self.is_leaf.get(at) {
                return at;
            }
            let v = cols[self.feature[at] as usize][row];
            at = if goes_left(v, self.threshold.get(at)) {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }
}

/// Any compiled model rendered as borrowed slabs — the input of the one
/// evaluator both the JSON-backed [`CompiledModel`] and mmap-backed
/// blobs share.
#[derive(Debug, Clone)]
pub enum ModelView<'a> {
    /// Boosted trees.
    Gbdt(GbdtView<'a>),
    /// Random forest / extra-trees.
    Forest(ForestView<'a>),
    /// Logistic / ridge regression (evaluated through the training-time
    /// [`LinearModel`], restored from these parts).
    Linear(&'a CompiledLinear),
    /// Stacked ensemble: member views plus the linear meta-learner.
    Stacked {
        /// Base members, in ensemble order.
        members: Vec<ModelView<'a>>,
        /// The meta-learner over member prediction columns.
        meta: &'a CompiledLinear,
        /// Task the ensemble was assembled for.
        task: Task,
    },
}

impl<'m> ModelView<'m> {
    /// The task the viewed model predicts.
    pub fn task(&self) -> Task {
        match self {
            ModelView::Gbdt(v) => v.task,
            ModelView::Forest(v) => v.task,
            ModelView::Linear(m) => m.task,
            ModelView::Stacked { task, .. } => *task,
        }
    }

    /// Feature columns the model expects at [`ModelView::bind`] time.
    pub fn n_features(&self) -> usize {
        match self {
            ModelView::Gbdt(v) => v.cuts.n_features(),
            ModelView::Forest(v) => v.n_features,
            ModelView::Linear(m) => m.encodings.len(),
            ModelView::Stacked { members, .. } => {
                members.first().map(ModelView::n_features).unwrap_or(0)
            }
        }
    }

    /// The meta-feature columns for `data`: the same extraction
    /// [`flaml_learners::member_columns`] performs, but over member
    /// predictions (which are bit-identical to interpreted ones).
    fn member_columns(members: &[ModelView<'m>], data: &DatasetView) -> Vec<Vec<f64>> {
        let n = data.n_rows();
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for member in members {
            match member.clone().predict_view(data) {
                Pred::Values(v) => {
                    assert_eq!(v.len(), n);
                    columns.push(v);
                }
                Pred::Probs { n_classes, p } => {
                    for c in 0..n_classes.saturating_sub(1) {
                        columns.push(p.chunks_exact(n_classes).map(|row| row[c]).collect());
                    }
                }
            }
        }
        columns
    }

    /// Binds the view to one request matrix: bins / gathers / encodes
    /// the matrix **once**, returning an evaluator whose
    /// [`Bound::eval_range`] is pure per-row work. Binding up front is
    /// what makes row-chunked batched inference byte-identical to a
    /// single sequential pass.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different feature count than the model
    /// was trained on.
    pub fn bind(self, data: &DatasetView) -> Bound<'m> {
        let n_rows = data.n_rows();
        let inner = match self {
            ModelView::Gbdt(view) => {
                assert_eq!(
                    data.n_features(),
                    view.cuts.n_features(),
                    "predicting with a different feature count"
                );
                // The request matrix is binned once through the
                // training-time mapper, exactly as the interpreted
                // model's predict does.
                let bins =
                    PreparedBins::from_mapper(BinMapper::from_cuts(view.cuts.to_vecs()), data);
                BoundInner::Gbdt { view, bins }
            }
            ModelView::Forest(view) => {
                assert_eq!(
                    data.n_features(),
                    view.n_features,
                    "predicting with a different feature count"
                );
                let cols = gather_columns(data);
                BoundInner::Forest { view, cols }
            }
            ModelView::Linear(m) => BoundInner::Linear {
                model: m.to_model(),
                cols: gather_columns(data),
            },
            ModelView::Stacked { members, meta, .. } => BoundInner::Linear {
                model: meta.to_model(),
                cols: ModelView::member_columns(&members, data),
            },
        };
        Bound { inner, n_rows }
    }

    /// Predicts on `data` through the shared evaluator.
    pub fn predict_view(self, data: &DatasetView) -> Pred {
        let bound = self.bind(data);
        let flat = bound.eval_range(0, bound.n_rows());
        bound.finish(flat)
    }

    /// Materializes the view as an owned [`CompiledModel`] — a straight
    /// slab copy with no re-flattening, so a mapped blob can enter
    /// registries that hold owned models. Note the copy preserves the
    /// *stored* node order: a hot-first blob materializes with permuted
    /// slabs (predictions are identical; slab-level `==` against the
    /// original compiled model is not).
    pub fn to_compiled(&self) -> CompiledModel {
        match self {
            ModelView::Gbdt(v) => CompiledModel::Gbdt(CompiledGbdt {
                cuts: v.cuts.to_vecs(),
                n_groups: v.n_groups,
                init_scores: v.init_scores.to_vec(),
                task: v.task,
                tree_roots: v.tree_roots.to_vec(),
                feature: v.feature.to_vec(),
                threshold: v.threshold.to_vec(),
                left: v.left.to_vec(),
                right: v.right.to_vec(),
                leaf_value: v.leaf_value.to_vec(),
                is_leaf: (0..v.is_leaf.len()).map(|i| v.is_leaf.get(i)).collect(),
            }),
            ModelView::Forest(v) => CompiledModel::Forest(CompiledForest {
                task: v.task,
                n_features: v.n_features,
                leaf_width: v.leaf_width,
                tree_roots: v.tree_roots.to_vec(),
                feature: v.feature.to_vec(),
                threshold: v.threshold.to_vec(),
                left: v.left.to_vec(),
                right: v.right.to_vec(),
                is_leaf: (0..v.is_leaf.len()).map(|i| v.is_leaf.get(i)).collect(),
                values: v.values.to_vec(),
            }),
            ModelView::Linear(m) => CompiledModel::Linear((*m).clone()),
            ModelView::Stacked {
                members,
                meta,
                task,
            } => CompiledModel::Stacked(Box::new(CompiledStacked {
                members: members.iter().map(ModelView::to_compiled).collect(),
                meta: (*meta).clone(),
                task: *task,
            })),
        }
    }
}

impl CompiledModel {
    /// Renders the owned model as borrowed slabs (see [`ModelView`]).
    pub fn view(&self) -> ModelView<'_> {
        match self {
            CompiledModel::Gbdt(m) => ModelView::Gbdt(GbdtView {
                task: m.task,
                n_groups: m.n_groups,
                init_scores: &m.init_scores,
                cuts: CutsRef::Nested(&m.cuts),
                tree_roots: &m.tree_roots,
                feature: &m.feature,
                threshold: &m.threshold,
                left: &m.left,
                right: &m.right,
                leaf_value: &m.leaf_value,
                is_leaf: LeafFlags::Bools(&m.is_leaf),
            }),
            CompiledModel::Forest(m) => ModelView::Forest(ForestView {
                task: m.task,
                n_features: m.n_features,
                leaf_width: m.leaf_width,
                tree_roots: &m.tree_roots,
                feature: &m.feature,
                threshold: FloatSlab::F64(&m.threshold),
                left: &m.left,
                right: &m.right,
                is_leaf: LeafFlags::Bools(&m.is_leaf),
                values: &m.values,
            }),
            CompiledModel::Linear(m) => ModelView::Linear(m),
            CompiledModel::Stacked(m) => ModelView::Stacked {
                members: m.members.iter().map(CompiledModel::view).collect(),
                meta: &m.meta,
                task: m.task,
            },
        }
    }
}

fn gather_columns(data: &DatasetView) -> Vec<Vec<f64>> {
    (0..data.n_features())
        .map(|j| data.column_values(j).collect())
        .collect()
}

/// A model view bound to one request matrix (see [`ModelView::bind`]).
/// All per-request setup — binning, column gathering, member
/// prediction — happened at bind time; [`Bound::eval_range`] touches
/// only the rows it is asked for, so disjoint ranges can run on
/// different workers and concatenate into exactly the sequential
/// result.
pub struct Bound<'m> {
    inner: BoundInner<'m>,
    n_rows: usize,
}

enum BoundInner<'m> {
    Gbdt {
        view: GbdtView<'m>,
        bins: PreparedBins,
    },
    Forest {
        view: ForestView<'m>,
        cols: Vec<Vec<f64>>,
    },
    Linear {
        model: LinearModel,
        cols: Vec<Vec<f64>>,
    },
}

impl Bound<'_> {
    /// Rows in the bound request matrix.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Output values per row in the flat representation
    /// [`Bound::eval_range`] produces.
    pub fn width(&self) -> usize {
        match &self.inner {
            BoundInner::Gbdt { view, .. } => match view.task {
                Task::Regression | Task::Binary => 1,
                Task::MultiClass(k) => k,
            },
            BoundInner::Forest { view, .. } => view.leaf_width,
            BoundInner::Linear { model, .. } => match model.task() {
                Task::Regression | Task::Binary => 1,
                Task::MultiClass(k) => k,
            },
        }
    }

    /// Evaluates rows `lo..hi`, returning `(hi - lo) * width` values in
    /// row-major order. Row-independent math: the concatenation of
    /// adjacent ranges is bitwise equal to one evaluation of the union.
    pub fn eval_range(&self, lo: usize, hi: usize) -> Vec<f64> {
        match &self.inner {
            BoundInner::Gbdt { view, bins } => {
                let n = hi - lo;
                let k = view.n_groups;
                let mut scores = vec![0.0; n * k];
                for slot in scores.chunks_exact_mut(k) {
                    slot.copy_from_slice(view.init_scores);
                }
                // Tree-outer accumulation in boosting order: per row,
                // additions happen in exactly the interpreted
                // `raw_scores` order.
                for (t, &root) in view.tree_roots.iter().enumerate() {
                    let c = t % k;
                    for (r, slot) in scores.chunks_exact_mut(k).enumerate() {
                        slot[c] += view.eval_tree(root, bins.binned(), lo + r);
                    }
                }
                match view.task {
                    Task::Regression => scores,
                    Task::Binary => scores.iter().map(|&f| sigmoid(f)).collect(),
                    Task::MultiClass(k) => {
                        let mut p = scores;
                        for row in p.chunks_exact_mut(k) {
                            softmax_in_place(row);
                        }
                        p
                    }
                }
            }
            BoundInner::Forest { view, cols } => {
                let n = hi - lo;
                let w = view.leaf_width;
                let m = view.tree_roots.len() as f64;
                let mut out = vec![0.0; n * w];
                for &root in view.tree_roots {
                    for (r, slot) in out.chunks_exact_mut(w).enumerate() {
                        let leaf = view.leaf_of(root, cols, lo + r);
                        let vals = &view.values[leaf * w..(leaf + 1) * w];
                        for (o, v) in slot.iter_mut().zip(vals) {
                            *o += *v;
                        }
                    }
                }
                for v in &mut out {
                    *v /= m;
                }
                out
            }
            BoundInner::Linear { model, cols } => {
                let sub: Vec<Vec<f64>> = cols.iter().map(|c| c[lo..hi].to_vec()).collect();
                match model.predict_columns(&sub, hi - lo) {
                    Pred::Values(v) => v,
                    pred @ Pred::Probs { .. } => match model.task() {
                        Task::Binary => pred
                            .positive_scores()
                            .expect("binary probabilities carry positive scores"),
                        _ => pred.probs().expect("probabilities").1.to_vec(),
                    },
                }
            }
        }
    }

    /// Wraps a full flat evaluation (the concatenation of
    /// [`Bound::eval_range`] chunks covering every row, in order) into
    /// the model's [`Pred`], exactly as the interpreted predict does.
    pub fn finish(&self, flat: Vec<f64>) -> Pred {
        match &self.inner {
            BoundInner::Gbdt { view, .. } => match view.task {
                Task::Regression => Pred::from_values(flat),
                Task::Binary => Pred::binary_probs(flat),
                Task::MultiClass(k) => Pred::Probs {
                    n_classes: k,
                    p: flat,
                },
            },
            BoundInner::Forest { view, .. } => match view.task {
                Task::Regression => Pred::from_values(flat),
                Task::Binary | Task::MultiClass(_) => Pred::Probs {
                    n_classes: view.leaf_width,
                    p: flat,
                },
            },
            BoundInner::Linear { model, .. } => match model.task() {
                Task::Regression => Pred::from_values(flat),
                Task::Binary => Pred::binary_probs(flat),
                Task::MultiClass(k) => Pred::Probs {
                    n_classes: k,
                    p: flat,
                },
            },
        }
    }
}
