//! Model serving for the FLAML reproduction: compiled tree artifacts,
//! a versioned hot-swap registry, and batched inference on the shared
//! exec pool.
//!
//! The serving stack closes the loop the paper's library leaves to its
//! host application: once AutoML has found and fit a model, this crate
//! turns it into something a service can load, swap and query.
//!
//! * [`CompiledModel`] — every learner flattened into
//!   structure-of-arrays node slabs with a versioned, fingerprinted
//!   on-disk JSON format ([`CompiledModel::save`] /
//!   [`CompiledModel::load`]). Compiled predictions are bit-identical
//!   to the interpreted [`flaml_learners::FittedModel::predict`].
//! * [`BatchEngine`] — row-chunked batched inference over an
//!   [`flaml_exec::ExecPool`]; submission-order reduction keeps batched
//!   output byte-identical to a sequential pass.
//! * [`ModelRegistry`] — named, versioned serving slots with atomic
//!   `Arc`-swap hot-reload and rollback; a reader never observes a torn
//!   model.
//! * [`ServeTelemetry`] — per-slot latency percentiles, throughput and
//!   batch occupancy, fed by the same [`flaml_exec::TrialEvent`] stream
//!   the training stack uses.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use flaml_data::{Dataset, Task};
//! use flaml_learners::{FittedModel, Gbdt, GbdtParams};
//! use flaml_serve::{BatchEngine, CompiledModel, ModelRegistry};
//! use flaml_exec::ExecPool;
//!
//! let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
//! let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 0.5)).collect();
//! let data = Dataset::new("step", Task::Binary, vec![x], y)?;
//! let model: FittedModel = Gbdt::fit(&data, &GbdtParams::default(), 0)?.into();
//!
//! let compiled = CompiledModel::compile(&model)?;
//! assert_eq!(compiled.predict(&data), model.predict(&data));
//!
//! let registry = ModelRegistry::new();
//! registry.publish("step", compiled);
//!
//! let pool = ExecPool::new(2);
//! let engine = BatchEngine::new(&pool, 64);
//! let served = registry.get("step").unwrap();
//! let batched = engine.predict("step", &served.model, &data);
//! assert_eq!(batched, model.predict(&data));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod artifact;
mod batch;
mod error;
mod registry;
mod telemetry;
mod view;

pub use artifact::{
    fingerprint, ArtifactFile, CompiledForest, CompiledGbdt, CompiledLinear, CompiledModel,
    CompiledStacked, ARTIFACT_MAGIC, ARTIFACT_VERSION,
};
pub use batch::BatchEngine;
pub use error::ArtifactError;
pub use registry::{ModelRegistry, PromoteReason, Published, VersionedModel};
pub use telemetry::{ServeTelemetry, SlotStats};
pub use view::{Bound, CutsRef, FloatSlab, ForestView, GbdtView, LeafFlags, ModelView};
