//! Compiled serving artifacts: every learner flattened into
//! structure-of-arrays node slabs with a versioned, fingerprinted
//! on-disk format.
//!
//! A [`CompiledModel`] is a self-contained, serializable rendering of a
//! fitted model. Tree ensembles become flat parallel arrays (feature /
//! threshold / child / leaf-value slabs with per-tree root offsets —
//! the layout serving-oriented tree compilers use), linear models keep
//! their encodings and weight groups verbatim. The compiled evaluators
//! replicate the interpreted models' accumulation orders *exactly*, so
//! compiled predictions are bit-identical to
//! [`flaml_learners::FittedModel::predict`].
//!
//! On disk an artifact is one JSON document: a magic string, a format
//! version, an FNV-1a fingerprint of the serialized model payload, and
//! the payload itself. [`CompiledModel::load`] rejects foreign files,
//! unknown versions, truncation and payload corruption with typed
//! [`ArtifactError`]s before a single prediction is made.

use crate::error::ArtifactError;
use crate::view::Bound;
use flaml_data::{DatasetView, Task};
use flaml_learners::{Encoding, FittedModel, ForestModel, GbdtModel, LinearModel, StackedModel};
use flaml_metrics::Pred;
use flaml_store::{atomic_write_file, Storage};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Magic string opening every artifact file.
pub const ARTIFACT_MAGIC: &str = "flaml-artifact";

/// Artifact format version this build writes and reads.
pub const ARTIFACT_VERSION: u32 = 1;

/// FNV-1a hash of a serialized payload (the artifact integrity check).
pub fn fingerprint(payload: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in payload.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A boosted ensemble compiled to structure-of-arrays form.
///
/// All trees are concatenated into one node slab; `tree_roots[t]` is
/// the slab index of tree `t`'s root and child indices are absolute
/// slab indices. Thresholds are bin indices against the mapper rebuilt
/// from `cuts` (a row goes left when `bin <= threshold`), exactly as in
/// the interpreted trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledGbdt {
    /// Per-feature sorted bin cut points of the training-time mapper.
    pub cuts: Vec<Vec<f64>>,
    /// Score groups per boosting round (1, or the class count).
    pub n_groups: usize,
    /// Initial score per group.
    pub init_scores: Vec<f64>,
    /// Task the model was trained for.
    pub task: Task,
    /// Slab index of each tree's root, in boosting order.
    pub tree_roots: Vec<u32>,
    /// Split feature per node.
    pub feature: Vec<u32>,
    /// Split threshold (bin index) per node.
    pub threshold: Vec<u32>,
    /// Absolute slab index of the left child per node.
    pub left: Vec<u32>,
    /// Absolute slab index of the right child per node.
    pub right: Vec<u32>,
    /// Leaf value per node (0 for internal nodes).
    pub leaf_value: Vec<f64>,
    /// Whether the node is a leaf.
    pub is_leaf: Vec<bool>,
}

impl CompiledGbdt {
    /// Flattens a fitted boosting model.
    pub fn from_model(m: &GbdtModel) -> CompiledGbdt {
        let mut tree_roots = Vec::new();
        let mut feature = Vec::new();
        let mut threshold = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut leaf_value = Vec::new();
        let mut is_leaf = Vec::new();
        for tree in m.export_trees() {
            let base = feature.len() as u32;
            tree_roots.push(base);
            for n in tree {
                feature.push(n.feature);
                threshold.push(n.threshold);
                left.push(base + n.left);
                right.push(base + n.right);
                leaf_value.push(n.leaf_value);
                is_leaf.push(n.is_leaf);
            }
        }
        CompiledGbdt {
            cuts: m.mapper().cuts().to_vec(),
            n_groups: m.n_groups(),
            init_scores: m.init_scores().to_vec(),
            task: m.task(),
            tree_roots,
            feature,
            threshold,
            left,
            right,
            leaf_value,
            is_leaf,
        }
    }
}

/// A forest compiled to structure-of-arrays form.
///
/// Same slab layout as [`CompiledGbdt`], but thresholds are raw feature
/// values compared with [`flaml_learners::goes_left`] and every node
/// carries `leaf_width` output values (leaf class distribution or leaf
/// mean; zeros for internal nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledForest {
    /// Task the model was trained for.
    pub task: Task,
    /// Feature columns the model was trained on.
    pub n_features: usize,
    /// Values stored per leaf (1 for regression, class count otherwise).
    pub leaf_width: usize,
    /// Slab index of each tree's root.
    pub tree_roots: Vec<u32>,
    /// Split feature per node.
    pub feature: Vec<u32>,
    /// Split threshold (raw feature value) per node.
    pub threshold: Vec<f64>,
    /// Absolute slab index of the left child per node.
    pub left: Vec<u32>,
    /// Absolute slab index of the right child per node.
    pub right: Vec<u32>,
    /// Whether the node is a leaf.
    pub is_leaf: Vec<bool>,
    /// `leaf_width` output values per node, node-parallel.
    pub values: Vec<f64>,
}

impl CompiledForest {
    /// Flattens a fitted forest.
    pub fn from_model(m: &ForestModel) -> CompiledForest {
        let leaf_width = m.task().n_classes().unwrap_or(1);
        let mut tree_roots = Vec::new();
        let mut feature = Vec::new();
        let mut threshold = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut is_leaf = Vec::new();
        let mut values = Vec::new();
        for tree in m.trees() {
            let base = feature.len() as u32;
            tree_roots.push(base);
            for n in tree.export_nodes() {
                feature.push(n.feature);
                threshold.push(n.threshold);
                left.push(base + n.left);
                right.push(base + n.right);
                is_leaf.push(n.is_leaf);
                if n.is_leaf {
                    assert_eq!(n.value.len(), leaf_width, "leaf value width");
                    values.extend_from_slice(&n.value);
                } else {
                    values.extend(std::iter::repeat_n(0.0, leaf_width));
                }
            }
        }
        CompiledForest {
            task: m.task(),
            n_features: m.n_features(),
            leaf_width,
            tree_roots,
            feature,
            threshold,
            left,
            right,
            is_leaf,
            values,
        }
    }
}

/// A linear model in artifact form: the exact encodings and weight
/// groups of the fitted model, restored verbatim at serving time so the
/// compiled path *is* the interpreted path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledLinear {
    /// Per-feature input encodings.
    pub encodings: Vec<Encoding>,
    /// Weight groups (design columns plus intercept each).
    pub weights: Vec<Vec<f64>>,
    /// Task the model was trained for.
    pub task: Task,
    /// Regression target mean (0 for classification).
    pub y_mean: f64,
    /// Regression target standard deviation (1 for classification).
    pub y_std: f64,
}

impl CompiledLinear {
    /// Captures a fitted linear model.
    pub fn from_model(m: &LinearModel) -> CompiledLinear {
        CompiledLinear {
            encodings: m.encodings().to_vec(),
            weights: m.weights().to_vec(),
            task: m.task(),
            y_mean: m.y_mean(),
            y_std: m.y_std(),
        }
    }

    /// Restores the live model (shares all prediction code with
    /// training-time models).
    pub fn to_model(&self) -> LinearModel {
        LinearModel::from_parts(
            self.encodings.clone(),
            self.weights.clone(),
            self.task,
            self.y_mean,
            self.y_std,
        )
    }
}

/// A stacked ensemble in artifact form: compiled members plus the
/// linear meta-learner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledStacked {
    /// Compiled base members, in ensemble order.
    pub members: Vec<CompiledModel>,
    /// The meta-learner over member prediction columns.
    pub meta: CompiledLinear,
    /// Task the ensemble was assembled for.
    pub task: Task,
}

impl CompiledStacked {
    /// Compiles a stacked ensemble (members first, then the meta model).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Unsupported`] if any member cannot be
    /// compiled.
    pub fn from_model(m: &StackedModel) -> Result<CompiledStacked, ArtifactError> {
        let members = m
            .members()
            .iter()
            .map(CompiledModel::compile)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledStacked {
            members,
            meta: CompiledLinear::from_model(m.meta()),
            task: m.task(),
        })
    }
}

/// Any learner compiled into serving form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompiledModel {
    /// Boosted trees.
    Gbdt(CompiledGbdt),
    /// Random forest / extra-trees.
    Forest(CompiledForest),
    /// Logistic / ridge regression.
    Linear(CompiledLinear),
    /// Stacked ensemble.
    Stacked(Box<CompiledStacked>),
}

impl CompiledModel {
    /// Compiles a fitted model into artifact form.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Unsupported`] for custom dynamic models,
    /// whose prediction code cannot be captured in a data-only artifact.
    pub fn compile(model: &FittedModel) -> Result<CompiledModel, ArtifactError> {
        match model {
            FittedModel::Gbdt(m) => Ok(CompiledModel::Gbdt(CompiledGbdt::from_model(m))),
            FittedModel::Forest(m) => Ok(CompiledModel::Forest(CompiledForest::from_model(m))),
            FittedModel::Linear(m) => Ok(CompiledModel::Linear(CompiledLinear::from_model(m))),
            FittedModel::Stacked(m) => Ok(CompiledModel::Stacked(Box::new(
                CompiledStacked::from_model(m)?,
            ))),
            FittedModel::Custom(_) => Err(ArtifactError::Unsupported(
                "custom dynamic models carry no serializable structure".into(),
            )),
        }
    }

    /// The task the compiled model predicts.
    pub fn task(&self) -> Task {
        match self {
            CompiledModel::Gbdt(m) => m.task,
            CompiledModel::Forest(m) => m.task,
            CompiledModel::Linear(m) => m.task,
            CompiledModel::Stacked(m) => m.task,
        }
    }

    /// Feature columns the model expects at [`CompiledModel::bind`]
    /// time. Lets callers (e.g. a request front end) reject a
    /// mis-shaped matrix with a typed error instead of panicking.
    pub fn n_features(&self) -> usize {
        match self {
            CompiledModel::Gbdt(m) => m.cuts.len(),
            CompiledModel::Forest(m) => m.n_features,
            CompiledModel::Linear(m) => m.encodings.len(),
            CompiledModel::Stacked(m) => m
                .members
                .first()
                .map(CompiledModel::n_features)
                .unwrap_or(0),
        }
    }

    /// Binds the model to one request matrix: bins / gathers / encodes
    /// the matrix **once**, returning an evaluator whose
    /// [`Bound::eval_range`] is pure per-row work. Binding up front is
    /// what makes row-chunked batched inference byte-identical to a
    /// single sequential pass.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different feature count than the model
    /// was trained on.
    pub fn bind(&self, data: &DatasetView) -> Bound<'_> {
        self.view().bind(data)
    }

    /// Predicts on `data` through the compiled evaluator. Bit-identical
    /// to the source [`FittedModel::predict`].
    pub fn predict(&self, data: impl Into<DatasetView>) -> Pred {
        let data: DatasetView = data.into();
        let bound = self.bind(&data);
        let flat = bound.eval_range(0, bound.n_rows());
        bound.finish(flat)
    }

    /// Serializes into the artifact document (magic + version +
    /// fingerprint + payload).
    pub fn to_artifact_string(&self) -> String {
        let payload = serde_json::to_string(self).expect("compiled models always serialize");
        let file = ArtifactFile {
            magic: ARTIFACT_MAGIC.to_string(),
            version: ARTIFACT_VERSION,
            fingerprint: fingerprint(&payload),
            model: self.clone(),
        };
        serde_json::to_string(&file).expect("artifact files always serialize")
    }

    /// Parses and verifies an artifact document.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Parse`] for corrupt or truncated JSON,
    /// [`ArtifactError::BadMagic`] / [`ArtifactError::Version`] for
    /// foreign or future files, [`ArtifactError::FingerprintMismatch`]
    /// when the payload does not hash to the recorded fingerprint.
    pub fn from_artifact_str(text: &str) -> Result<CompiledModel, ArtifactError> {
        // Probe the header first (the derived deserializer ignores the
        // unknown `model` field) so magic/version mismatches get their
        // typed error instead of a generic payload parse failure.
        let header: ArtifactHeader =
            serde_json::from_str(text).map_err(|e| ArtifactError::Parse(e.to_string()))?;
        if header.magic != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic {
                found: header.magic,
            });
        }
        if header.version != ARTIFACT_VERSION {
            return Err(ArtifactError::Version {
                found: header.version,
                supported: ARTIFACT_VERSION,
            });
        }
        let file: ArtifactFile =
            serde_json::from_str(text).map_err(|e| ArtifactError::Parse(e.to_string()))?;
        let payload =
            serde_json::to_string(&file.model).map_err(|e| ArtifactError::Parse(e.to_string()))?;
        let found = fingerprint(&payload);
        if found != file.fingerprint {
            return Err(ArtifactError::FingerprintMismatch {
                expected: file.fingerprint,
                found,
            });
        }
        Ok(file.model)
    }

    /// Writes the artifact to `path` (creating parent directories) and
    /// returns its payload fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, ArtifactError> {
        self.save_with(flaml_store::disk().as_ref(), path.as_ref())
    }

    /// [`CompiledModel::save`] against an explicit
    /// [`flaml_store::Storage`]. The artifact is published atomically —
    /// temp file, fsync, rename, parent-dir fsync — so a crash at any
    /// point leaves either the previous artifact or none, never a torn
    /// file under the final name.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Storage`] on persistence failures.
    pub fn save_with(&self, storage: &dyn Storage, path: &Path) -> Result<u64, ArtifactError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                storage.create_dir_all(parent)?;
            }
        }
        let text = self.to_artifact_string();
        let payload = serde_json::to_string(self).expect("compiled models always serialize");
        atomic_write_file(storage, path, text.as_bytes())?;
        Ok(fingerprint(&payload))
    }

    /// Reads and verifies an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::from_artifact_str`], plus
    /// [`ArtifactError::Io`] on read failures.
    pub fn load(path: impl AsRef<Path>) -> Result<CompiledModel, ArtifactError> {
        let text = std::fs::read_to_string(path)?;
        CompiledModel::from_artifact_str(&text)
    }

    /// [`CompiledModel::load`] against an explicit
    /// [`flaml_store::Storage`].
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::from_artifact_str`], plus
    /// [`ArtifactError::Storage`] on read failures.
    pub fn load_with(storage: &dyn Storage, path: &Path) -> Result<CompiledModel, ArtifactError> {
        let bytes = storage.read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        CompiledModel::from_artifact_str(&text)
    }
}

/// The on-disk artifact document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactFile {
    /// Always [`ARTIFACT_MAGIC`].
    pub magic: String,
    /// Format version ([`ARTIFACT_VERSION`]).
    pub version: u32,
    /// FNV-1a fingerprint of the serialized `model` payload.
    pub fingerprint: u64,
    /// The compiled model payload.
    pub model: CompiledModel,
}

/// Header-only probe of an artifact document (the payload field is
/// ignored during deserialization).
#[derive(Debug, Deserialize)]
struct ArtifactHeader {
    magic: String,
    version: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_fnv1a() {
        // Known FNV-1a vectors.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn artifact_header_rejections_are_typed() {
        let linear = CompiledModel::Linear(CompiledLinear {
            encodings: vec![Encoding::Numeric {
                mean: 0.0,
                std: 1.0,
            }],
            weights: vec![vec![0.5, 0.1]],
            task: Task::Regression,
            y_mean: 0.0,
            y_std: 1.0,
        });
        let text = linear.to_artifact_string();

        let foreign = text.replace(ARTIFACT_MAGIC, "not-an-artifact");
        assert!(matches!(
            CompiledModel::from_artifact_str(&foreign),
            Err(ArtifactError::BadMagic { .. })
        ));

        let future = text.replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            CompiledModel::from_artifact_str(&future),
            Err(ArtifactError::Version { found: 99, .. })
        ));

        let truncated = &text[..text.len() / 2];
        assert!(matches!(
            CompiledModel::from_artifact_str(truncated),
            Err(ArtifactError::Parse(_))
        ));

        let corrupted = text.replace("0.5", "0.25");
        assert!(matches!(
            CompiledModel::from_artifact_str(&corrupted),
            Err(ArtifactError::FingerprintMismatch { .. })
        ));

        assert!(CompiledModel::from_artifact_str(&text).is_ok());
    }
}
