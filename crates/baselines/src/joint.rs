//! The joint learner × hyperparameter search space used by the baselines.
//!
//! HpBandSter, auto-sklearn-style BO and random search all search one flat
//! space whose first coordinate selects the learner and whose remaining
//! coordinates are the union of every learner's Table 5 parameters
//! (inactive coordinates are simply ignored at evaluation time, the
//! standard flat encoding of conditional spaces).

use flaml_core::LearnerKind;
use flaml_search::{Config, Domain, ParamDef, SearchSpace};

/// A flat joint space over several learners.
#[derive(Debug, Clone)]
pub struct JointSpace {
    space: SearchSpace,
    learners: Vec<LearnerKind>,
    subspaces: Vec<SearchSpace>,
    offsets: Vec<usize>,
}

impl JointSpace {
    /// Builds the joint space for the given learners and dataset size.
    ///
    /// # Panics
    ///
    /// Panics if `learners` has fewer than 2 entries (the categorical
    /// learner dimension needs at least two choices).
    pub fn new(learners: &[LearnerKind], n_rows: usize) -> JointSpace {
        assert!(
            learners.len() >= 2,
            "joint space needs at least two learners"
        );
        let mut params = vec![ParamDef::new(
            "learner",
            Domain::categorical(learners.len()),
            0.0,
        )];
        let mut subspaces = Vec::with_capacity(learners.len());
        let mut offsets = Vec::with_capacity(learners.len());
        for kind in learners {
            let sub = kind.space(n_rows);
            offsets.push(params.len());
            for p in sub.params() {
                params.push(ParamDef::new(
                    format!("{}_{}", kind.name(), p.name),
                    p.domain,
                    p.init,
                ));
            }
            subspaces.push(sub);
        }
        JointSpace {
            space: SearchSpace::new(params).expect("joint space is well-formed"),
            learners: learners.to_vec(),
            subspaces,
            offsets,
        }
    }

    /// The flat search space (for samplers and surrogates).
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The learners covered.
    pub fn learners(&self) -> &[LearnerKind] {
        &self.learners
    }

    /// Splits a unit-cube point of the joint space into the selected
    /// learner, its decoded configuration, and its subspace.
    ///
    /// # Panics
    ///
    /// Panics if the point length does not match the joint dimension.
    pub fn split(&self, point: &[f64]) -> (LearnerKind, Config, &SearchSpace) {
        assert_eq!(point.len(), self.space.dim(), "point/space mismatch");
        let l_idx = (point[0] * self.learners.len() as f64)
            .floor()
            .min(self.learners.len() as f64 - 1.0)
            .max(0.0) as usize;
        let sub = &self.subspaces[l_idx];
        let off = self.offsets[l_idx];
        let sub_point: Vec<f64> = point[off..off + sub.dim()].to_vec();
        (self.learners[l_idx], sub.decode(&sub_point), sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_add_up() {
        let learners = [LearnerKind::LightGbm, LearnerKind::XgBoost, LearnerKind::Lr];
        let js = JointSpace::new(&learners, 1000);
        assert_eq!(js.space().dim(), 1 + 9 + 9 + 1);
    }

    #[test]
    fn split_selects_each_learner() {
        let learners = [LearnerKind::LightGbm, LearnerKind::Lr];
        let js = JointSpace::new(&learners, 1000);
        let d = js.space().dim();
        let mut point = vec![0.5; d];
        point[0] = 0.1;
        let (k, _, sub) = js.split(&point);
        assert_eq!(k, LearnerKind::LightGbm);
        assert_eq!(sub.dim(), 9);
        point[0] = 0.9;
        let (k, cfg, sub) = js.split(&point);
        assert_eq!(k, LearnerKind::Lr);
        assert_eq!(sub.dim(), 1);
        assert!(cfg.get(sub, "c") > 0.0);
    }

    #[test]
    fn split_round_trips_subspace_values() {
        let learners = [LearnerKind::Rf, LearnerKind::Lr];
        let js = JointSpace::new(&learners, 500);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let p = js.space().random_point(&mut rng);
            let (k, cfg, sub) = js.split(&p);
            // Every decoded value must lie in its domain.
            for (def, &v) in sub.params().iter().zip(cfg.values()) {
                let u = def.domain.encode(v);
                let back = def.domain.decode(u);
                assert!(
                    (back - v).abs() < 1e-9,
                    "{k}: {} = {v} not stable",
                    def.name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two learners")]
    fn single_learner_panics() {
        let _ = JointSpace::new(&[LearnerKind::Lr], 100);
    }
}
