//! The AutoML benchmark's scaled-score calibration (Gijsbers et al. 2019),
//! used throughout the paper's Figures 5, 6, 8 and Table 9: a constant
//! class-prior (or label-mean) predictor maps to score 0 and a tuned
//! random forest maps to score 1.

use flaml_core::{
    fit_learner, run_trial, AutoMlError, BudgetClock, ExecPool, LearnerKind, ResampleRule,
    TimeSource, TrialInfo,
};
use flaml_data::{Dataset, Task};
use flaml_learners::FittedModel;
use flaml_metrics::{Metric, Pred, ScaleAnchors};
use flaml_search::RandomSearch;
use std::time::{Duration, Instant};

/// The constant baseline predictor: class priors for classification,
/// label mean for regression, fitted on `train` and emitted for `n_test`
/// rows.
pub fn constant_predictor(train: &Dataset, n_test: usize) -> Pred {
    match train.task() {
        Task::Regression => {
            let mean = train.target().iter().sum::<f64>() / train.n_rows() as f64;
            Pred::from_values(vec![mean; n_test])
        }
        _ => {
            let priors = train.class_priors().expect("classification task");
            let k = priors.len();
            let mut p = Vec::with_capacity(n_test * k);
            for _ in 0..n_test {
                p.extend_from_slice(&priors);
            }
            Pred::Probs { n_classes: k, p }
        }
    }
}

/// Tunes a random forest by random search under `budget_secs`, returning
/// the best model refit on all of `train`. This is the benchmark's
/// reference model (scaled score 1).
///
/// # Errors
///
/// Returns [`AutoMlError::NoViableModel`] if no configuration could be
/// evaluated.
pub fn tuned_random_forest(
    train: &Dataset,
    metric: Metric,
    budget_secs: f64,
    seed: u64,
    time_source: TimeSource,
    max_trials: Option<usize>,
) -> Result<FittedModel, AutoMlError> {
    let kind = LearnerKind::Rf;
    let shuffled = train.shuffled(seed);
    let n = shuffled.n_rows();
    let space = kind.space(n);
    let strategy = ResampleRule::default().choose(n, shuffled.n_features(), budget_secs);
    let mut clock = BudgetClock::new(time_source);
    let mut sampler = RandomSearch::new(space.clone(), seed);
    let mut best: Option<(flaml_search::Config, f64)> = None;
    let mut iter = 0usize;
    loop {
        if let Some(cap) = max_trials {
            if iter >= cap {
                break;
            }
        }
        if iter > 0 && clock.elapsed() >= budget_secs {
            break;
        }
        let point = sampler.ask();
        let config = space.decode(&point);
        let deadline = if clock.is_wall() {
            Some(Duration::from_secs_f64(
                (budget_secs - clock.elapsed()).max(0.05),
            ))
        } else {
            None
        };
        let t0 = Instant::now();
        let outcome = run_trial(
            &shuffled,
            &flaml_core::Estimator::Builtin(kind),
            &config,
            &space,
            n,
            strategy,
            metric,
            seed.wrapping_add(iter as u64),
            deadline,
            &ExecPool::sequential(),
        );
        let measured = t0.elapsed().as_secs_f64();
        clock.charge(
            &TrialInfo {
                learner_cost_constant: kind.cost_constant(),
                sample_size: n,
                n_features: shuffled.n_features(),
                cost_factor: outcome.cost_factor,
                n_fits: outcome.n_fits.max(1),
            },
            measured,
        );
        sampler.tell(outcome.error);
        if outcome.error.is_finite()
            && best
                .as_ref()
                .map(|(_, e)| outcome.error < *e)
                .unwrap_or(true)
        {
            best = Some((config, outcome.error));
        }
        iter += 1;
    }
    let Some((config, _)) = best else {
        return Err(AutoMlError::NoViableModel);
    };
    fit_learner(kind, &shuffled, &config, &space, seed, None).map_err(AutoMlError::RefitFailed)
}

/// Computes the benchmark's scale anchors on a train/test pair: the raw
/// score of the constant predictor (anchor 0) and of the tuned random
/// forest (anchor 1), both evaluated on `test`.
///
/// # Errors
///
/// Returns [`AutoMlError`] if the reference forest could not be tuned.
pub fn calibration_anchors(
    train: &Dataset,
    test: &Dataset,
    metric: Metric,
    rf_budget_secs: f64,
    seed: u64,
    time_source: TimeSource,
    max_trials: Option<usize>,
) -> Result<ScaleAnchors, AutoMlError> {
    let baseline_pred = constant_predictor(train, test.n_rows());
    let baseline = metric
        .score(&baseline_pred, test.target())
        .unwrap_or(f64::NEG_INFINITY);
    let rf = tuned_random_forest(train, metric, rf_budget_secs, seed, time_source, max_trials)?;
    let reference = metric
        .score(&rf.predict(test), test.target())
        .unwrap_or(f64::NEG_INFINITY);
    Ok(ScaleAnchors::new(baseline, reference))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_core::default_virtual_cost;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn split_dataset(n: usize, seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| f64::from((x0[i] - 0.5) * (x1[i] - 0.5) > 0.0))
            .collect();
        let d = Dataset::new("cal", Task::Binary, vec![x0, x1], y).unwrap();
        let cut = n * 4 / 5;
        let train = d.select(&(0..cut).collect::<Vec<_>>());
        let test = d.select(&(cut..n).collect::<Vec<_>>());
        (train, test)
    }

    #[test]
    fn constant_predictor_matches_priors() {
        let (train, _) = split_dataset(200, 0);
        let pred = constant_predictor(&train, 3);
        let (k, p) = pred.probs().unwrap();
        assert_eq!(k, 2);
        let priors = train.class_priors().unwrap();
        assert!((p[0] - priors[0]).abs() < 1e-12);
        assert_eq!(pred.n_rows(), 3);
    }

    #[test]
    fn constant_predictor_regression_is_mean() {
        let y = vec![1.0, 2.0, 3.0];
        let train = Dataset::new("r", Task::Regression, vec![vec![0.0, 1.0, 2.0]], y).unwrap();
        let pred = constant_predictor(&train, 2);
        assert_eq!(pred.values().unwrap(), &[2.0, 2.0]);
    }

    #[test]
    fn anchors_order_sensibly() {
        let (train, test) = split_dataset(800, 1);
        let anchors = calibration_anchors(
            &train,
            &test,
            Metric::RocAuc,
            1.0,
            0,
            TimeSource::Virtual(default_virtual_cost),
            Some(4),
        )
        .unwrap();
        // A tuned forest must beat the constant predictor on a learnable
        // task (auc 0.5 for the constant model).
        assert!(
            anchors.reference > anchors.baseline,
            "rf {} <= const {}",
            anchors.reference,
            anchors.baseline
        );
    }
}
