//! One driver for all baseline AutoML systems, sharing FLAML's trial
//! executor, budget clock and record format so traces are directly
//! comparable.

use crate::joint::JointSpace;
use flaml_core::{
    fit_learner, run_trial, AutoMlError, AutoMlResult, BudgetClock, ExecPool, LearnerKind,
    ResampleRule, ResampleStrategy, TimeSource, TrialInfo, TrialMode, TrialRecord,
};
use flaml_data::Dataset;
use flaml_metrics::Metric;
use flaml_search::{Config, Hyperband, JobSource, RandomSearch, SearchSpace, Tpe};
use std::time::{Duration, Instant};

/// Which baseline system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// TPE × Hyperband over sample-size fidelity (HpBandSter/BOHB).
    Bohb,
    /// TPE over the joint space on full data (BO family: auto-sklearn,
    /// cloud-automl stand-in).
    Bo,
    /// Uniform random search on full data (randomized-grid stand-in).
    RandomSearch,
    /// Random configs under Hyperband allocation (Li et al. 2017).
    Hyperband,
}

impl BaselineKind {
    /// Display name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::Bohb => "bohb",
            BaselineKind::Bo => "bo",
            BaselineKind::RandomSearch => "random",
            BaselineKind::Hyperband => "hyperband",
        }
    }
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Settings shared by all baselines (mirrors [`flaml_core::AutoMl`]).
#[derive(Debug, Clone)]
pub struct BaselineSettings {
    /// Time budget in (wall or virtual) seconds.
    pub time_budget: f64,
    /// Metric to optimize; `None` = the task's benchmark default.
    pub metric: Option<Metric>,
    /// Learners in the joint space.
    pub estimators: Vec<LearnerKind>,
    /// Random seed.
    pub seed: u64,
    /// Minimum sample size for fidelity-based baselines (BOHB,
    /// Hyperband); `r_min = sample_size_min / n`.
    pub sample_size_min: usize,
    /// Resampling rule (same thresholds as FLAML).
    pub resample_rule: ResampleRule,
    /// Trial cap for deterministic tests.
    pub max_trials: Option<usize>,
    /// Wall or virtual budget accounting.
    pub time_source: TimeSource,
    /// Worker count of the trial-execution pool (CV folds evaluate
    /// concurrently; 1 = the sequential fold loop).
    pub workers: usize,
}

impl Default for BaselineSettings {
    fn default() -> Self {
        BaselineSettings {
            time_budget: 60.0,
            metric: None,
            estimators: LearnerKind::ALL.to_vec(),
            seed: 0,
            sample_size_min: 500,
            resample_rule: ResampleRule::default(),
            max_trials: None,
            time_source: TimeSource::Wall,
            workers: 1,
        }
    }
}

enum Proposer {
    Random(RandomSearch),
    Bo(Tpe),
    Bohb {
        tpe: Tpe,
        hb: Hyperband,
    },
    Hyperband {
        sampler: RandomSearch,
        hb: Hyperband,
    },
}

/// Runs a baseline AutoML system on `data` and returns a result in the
/// same shape as FLAML's.
///
/// # Errors
///
/// Returns [`AutoMlError`] if the estimator list has fewer than two
/// entries or no trial produced a finite error.
pub fn run_baseline(
    kind: BaselineKind,
    data: &Dataset,
    settings: &BaselineSettings,
) -> Result<AutoMlResult, AutoMlError> {
    if settings.estimators.len() < 2 {
        return Err(AutoMlError::NoEstimators);
    }
    let metric = settings
        .metric
        .unwrap_or_else(|| Metric::default_for(data.task()));
    let mut clock = BudgetClock::new(settings.time_source);
    let shuffled = data.shuffled(settings.seed);
    let n = shuffled.n_rows();
    let d = shuffled.n_features();
    let strategy = settings.resample_rule.choose(n, d, settings.time_budget);
    let joint = JointSpace::new(&settings.estimators, n);
    let r_min = (settings.sample_size_min.min(n) as f64 / n as f64).clamp(1e-6, 1.0);

    // Per-baseline seed offsets keep the proposal streams of different
    // systems independent even when the caller passes one seed.
    let seed = settings.seed
        ^ match kind {
            BaselineKind::RandomSearch => 0x52414e44,
            BaselineKind::Bo => 0x424f,
            BaselineKind::Bohb => 0x424f4842,
            BaselineKind::Hyperband => 0x48422121,
        };
    let mut proposer = match kind {
        BaselineKind::RandomSearch => {
            Proposer::Random(RandomSearch::new(joint.space().clone(), seed))
        }
        BaselineKind::Bo => Proposer::Bo(Tpe::new(joint.space().clone(), seed)),
        BaselineKind::Bohb => Proposer::Bohb {
            tpe: Tpe::new(joint.space().clone(), seed),
            hb: Hyperband::new(3, r_min),
        },
        BaselineKind::Hyperband => Proposer::Hyperband {
            sampler: RandomSearch::new(joint.space().clone(), seed),
            hb: Hyperband::new(3, r_min),
        },
    };

    let pool = ExecPool::new(settings.workers.max(1));
    let mut trials: Vec<TrialRecord> = Vec::new();
    let mut best: Option<(LearnerKind, Config, SearchSpace, f64)> = None;
    let mut best_model = None;
    let mut iter = 0usize;

    loop {
        if let Some(cap) = settings.max_trials {
            if iter >= cap {
                break;
            }
        }
        if iter > 0 && clock.elapsed() >= settings.time_budget {
            break;
        }

        // Propose a joint point and a sample size.
        let (point, sample_size, mode, job) = match &mut proposer {
            Proposer::Random(rs) => (rs.ask(), n, TrialMode::Search, None),
            Proposer::Bo(tpe) => (tpe.ask(), n, TrialMode::Search, None),
            Proposer::Bohb { tpe, hb } => {
                let job = hb.next_job();
                let s = ((job.fidelity * n as f64).round() as usize).clamp(1, n);
                match &job.source {
                    JobSource::Fresh => (tpe.ask(), s, TrialMode::Search, Some(job)),
                    JobSource::Promoted(cfg) => (cfg.clone(), s, TrialMode::SampleUp, Some(job)),
                }
            }
            Proposer::Hyperband { sampler, hb } => {
                let job = hb.next_job();
                let s = ((job.fidelity * n as f64).round() as usize).clamp(1, n);
                match &job.source {
                    JobSource::Fresh => (sampler.ask(), s, TrialMode::Search, Some(job)),
                    JobSource::Promoted(cfg) => (cfg.clone(), s, TrialMode::SampleUp, Some(job)),
                }
            }
        };

        let (learner, config, subspace) = joint.split(&point);
        let estimator = flaml_core::Estimator::Builtin(learner);
        let deadline = if clock.is_wall() {
            let remaining = settings.time_budget - clock.elapsed();
            Some(Duration::from_secs_f64(remaining.max(0.05)))
        } else {
            None
        };
        let t0 = Instant::now();
        let mut outcome = run_trial(
            &shuffled,
            &estimator,
            &config,
            subspace,
            sample_size,
            strategy,
            metric,
            settings.seed.wrapping_add(iter as u64),
            deadline,
            &pool,
        );
        let measured = t0.elapsed().as_secs_f64();
        let info = TrialInfo {
            learner_cost_constant: learner.cost_constant(),
            sample_size,
            n_features: d,
            cost_factor: outcome.cost_factor,
            n_fits: outcome.n_fits.max(1),
        };
        let cost = clock.charge(&info, measured);

        // Feed the proposer.
        match &mut proposer {
            Proposer::Random(rs) => rs.tell(outcome.error),
            Proposer::Bo(tpe) => tpe.tell(outcome.error),
            Proposer::Bohb { tpe, hb } => {
                let job = job.expect("bohb issues jobs");
                match &job.source {
                    JobSource::Fresh => tpe.tell(outcome.error),
                    JobSource::Promoted(_) => {}
                }
                hb.report(&job, point.clone(), outcome.error);
            }
            Proposer::Hyperband { sampler, hb } => {
                let job = job.expect("hyperband issues jobs");
                match &job.source {
                    JobSource::Fresh => sampler.tell(outcome.error),
                    JobSource::Promoted(_) => {}
                }
                hb.report(&job, point.clone(), outcome.error);
            }
        }

        let improved_global = outcome.error.is_finite()
            && best
                .as_ref()
                .map(|(_, _, _, e)| outcome.error < *e)
                .unwrap_or(true);
        if improved_global {
            best = Some((learner, config.clone(), subspace.clone(), outcome.error));
            best_model = outcome.model.take();
        }
        iter += 1;
        trials.push(TrialRecord {
            iter,
            learner: learner.name().to_string(),
            config: config.render(subspace),
            config_values: config.values().to_vec(),
            sample_size,
            error: outcome.error,
            cost,
            total_time: clock.elapsed(),
            mode,
            improved_global,
            best_error_so_far: best
                .as_ref()
                .map(|(_, _, _, e)| *e)
                .unwrap_or(f64::INFINITY),
            eci_snapshot: Vec::new(),
            timed_out: outcome.timed_out(),
            panicked: outcome.panicked(),
            status: outcome.status,
            n_retries: 0,
        });
    }

    let Some((best_learner, best_config, best_space, best_error)) = best else {
        return Err(AutoMlError::NoViableModel);
    };
    // Same clamp as FLAML's controller: the refit gets the time actually
    // left, never a budget gift; an exhausted budget reuses the trial's
    // model when one exists.
    let remaining = if clock.is_wall() {
        Some((settings.time_budget - clock.elapsed()).max(0.0))
    } else {
        None
    };
    let out_of_budget = remaining.map(|r| r <= 0.0).unwrap_or(false);
    let refit_budget =
        remaining.map(|r| Duration::from_secs_f64(r.max(0.05).min(settings.time_budget)));
    let model = match (out_of_budget, best_model) {
        (true, Some(m)) => m,
        (_, best_model) => match fit_learner(
            best_learner,
            &shuffled,
            &best_config,
            &best_space,
            settings.seed,
            refit_budget,
        ) {
            Ok(m) => m,
            Err(e) => match best_model {
                Some(m) => m,
                None => return Err(AutoMlError::RefitFailed(e)),
            },
        },
    };

    Ok(AutoMlResult {
        best_learner: best_learner.name().to_string(),
        best_config_rendered: best_config.render(&best_space),
        best_config,
        best_error,
        model,
        trials,
        strategy: match strategy {
            ResampleStrategy::Cv { folds } => ResampleStrategy::Cv { folds },
            ResampleStrategy::Holdout { ratio } => ResampleStrategy::Holdout { ratio },
        },
        metric,
        n_retries: 0,
        n_quarantined: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_core::default_virtual_cost;
    use flaml_data::Task;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| f64::from(x0[i] + x1[i] * 0.5 > 0.75))
            .collect();
        Dataset::new("b", Task::Binary, vec![x0, x1], y).unwrap()
    }

    fn settings(budget: f64) -> BaselineSettings {
        BaselineSettings {
            time_budget: budget,
            estimators: vec![LearnerKind::LightGbm, LearnerKind::Lr],
            sample_size_min: 100,
            time_source: TimeSource::Virtual(default_virtual_cost),
            ..BaselineSettings::default()
        }
    }

    #[test]
    fn every_baseline_runs_end_to_end() {
        let data = dataset(600, 0);
        for kind in [
            BaselineKind::RandomSearch,
            BaselineKind::Bo,
            BaselineKind::Bohb,
            BaselineKind::Hyperband,
        ] {
            let r = run_baseline(kind, &data, &settings(1.0)).unwrap();
            assert!(!r.trials.is_empty(), "{kind}");
            assert!(r.best_error.is_finite(), "{kind}");
            assert_eq!(r.model.predict(&data).n_rows(), 600, "{kind}");
        }
    }

    #[test]
    fn bohb_uses_low_fidelity_first() {
        let data = dataset(900, 1);
        // Uncapped budget + trial cap: bracket 2 has 9 rung-0 jobs, so by
        // trial 13 a promoted (SampleUp) job must have been issued.
        let mut s = settings(1e9);
        s.max_trials = Some(13);
        let r = run_baseline(BaselineKind::Bohb, &data, &s).unwrap();
        let first = &r.trials[0];
        assert!(
            first.sample_size < 900,
            "BOHB's first bracket must subsample, got {}",
            first.sample_size
        );
        // Some promoted jobs must appear at higher fidelity.
        assert!(r.trials.iter().any(|t| t.mode == TrialMode::SampleUp));
    }

    #[test]
    fn random_search_uses_full_data() {
        let data = dataset(400, 2);
        let r = run_baseline(BaselineKind::RandomSearch, &data, &settings(1.0)).unwrap();
        assert!(r.trials.iter().all(|t| t.sample_size == 400));
    }

    #[test]
    fn single_learner_is_rejected() {
        let data = dataset(100, 3);
        let mut s = settings(1.0);
        s.estimators = vec![LearnerKind::Lr];
        assert!(matches!(
            run_baseline(BaselineKind::Bo, &data, &s),
            Err(AutoMlError::NoEstimators)
        ));
    }

    #[test]
    fn deterministic_under_virtual_clock() {
        let data = dataset(500, 4);
        let run = |seed| {
            let mut s = settings(0.5);
            s.seed = seed;
            run_baseline(BaselineKind::Bohb, &data, &s)
                .unwrap()
                .trials
                .iter()
                .map(|t| (t.learner.clone(), t.config.clone(), t.sample_size))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn max_trials_caps_all_baselines() {
        let data = dataset(300, 5);
        for kind in [BaselineKind::RandomSearch, BaselineKind::Bohb] {
            let mut s = settings(1e9);
            s.max_trials = Some(5);
            let r = run_baseline(kind, &data, &s).unwrap();
            assert_eq!(r.trials.len(), 5, "{kind}");
        }
    }
}
