//! Baseline AutoML systems the paper compares FLAML against.
//!
//! * [`BaselineKind::Bohb`] — HpBandSter: TPE surrogate × Hyperband over
//!   sample-size fidelity, sharing FLAML's exact search space (the paper's
//!   apples-to-apples baseline in Figures 1, 5, 6 and Table 3).
//! * [`BaselineKind::Bo`] — Bayesian optimization (TPE) over the joint
//!   learner × hyperparameter space on full data; stands in for the
//!   BO-based auto-sklearn/cloud-automl family (§4 of DESIGN.md).
//! * [`BaselineKind::RandomSearch`] — uniform joint search on full data;
//!   stands in for randomized-grid systems (H2O-style).
//! * [`BaselineKind::Hyperband`] — random configs under Hyperband
//!   allocation (Li et al. 2017), the pure bandit baseline.
//!
//! All baselines run through one driver ([`run_baseline`]) that uses the
//! same trial executor, resampling rule, budget clock and trial-record
//! format as FLAML's controller, so traces are directly comparable. The
//! crate also provides the benchmark's score calibration anchors
//! ([`calibration_anchors`]): a constant predictor (score 0) and a tuned
//! random forest (score 1).

#![warn(missing_docs)]

mod calibrate;
mod driver;
mod joint;

pub use calibrate::{calibration_anchors, constant_predictor, tuned_random_forest};
pub use driver::{run_baseline, BaselineKind, BaselineSettings};
pub use joint::JointSpace;
