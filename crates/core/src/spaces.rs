//! The learner registry and the default search spaces of the paper's
//! Table 5.
//!
//! Each learner's space lists its searched hyperparameters with ranges and
//! the low-cost initial values (the table's bold entries); upper bounds on
//! tree and leaf counts depend on the training-set size `S` as
//! `min(32768, S)` (`min(2048, S)` for the sklearn forests).

use flaml_search::{Domain, ParamDef, SearchSpace};
use serde::{Deserialize, Serialize};

/// The six learners of FLAML's default ML layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LearnerKind {
    /// Leaf-wise histogram GBDT (LightGBM-style).
    LightGbm,
    /// Depth-wise histogram GBDT (XGBoost-style).
    XgBoost,
    /// Oblivious-tree GBDT with early stopping (CatBoost-style).
    CatBoost,
    /// Random forest (sklearn-style).
    Rf,
    /// Extremely randomized trees (sklearn-style).
    ExtraTrees,
    /// L2-regularized logistic/ridge regression (sklearn lr).
    Lr,
}

impl LearnerKind {
    /// All learners, in FLAML's default estimator-list order.
    pub const ALL: [LearnerKind; 6] = [
        LearnerKind::LightGbm,
        LearnerKind::XgBoost,
        LearnerKind::CatBoost,
        LearnerKind::Rf,
        LearnerKind::ExtraTrees,
        LearnerKind::Lr,
    ];

    /// Short name used in logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            LearnerKind::LightGbm => "lightgbm",
            LearnerKind::XgBoost => "xgboost",
            LearnerKind::CatBoost => "catboost",
            LearnerKind::Rf => "rf",
            LearnerKind::ExtraTrees => "extra_tree",
            LearnerKind::Lr => "lr",
        }
    }

    /// Parses a learner name as used by [`LearnerKind::name`].
    pub fn parse(name: &str) -> Option<LearnerKind> {
        LearnerKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// The paper's predefined cost constants (appendix): the expected cost
    /// of a learner's cheapest configuration as a multiple of the fastest
    /// learner's cheapest trial.
    pub fn cost_constant(&self) -> f64 {
        match self {
            LearnerKind::LightGbm => 1.0,
            LearnerKind::XgBoost => 1.6,
            LearnerKind::ExtraTrees => 1.9,
            LearnerKind::Rf => 2.0,
            LearnerKind::CatBoost => 15.0,
            LearnerKind::Lr => 160.0,
        }
    }

    /// The default search space for a training set of `n_rows` rows
    /// (Table 5). Initial values are the table's bold entries.
    pub fn space(&self, n_rows: usize) -> SearchSpace {
        let s = n_rows.max(5) as i64;
        let boost_cap = s.min(32_768);
        let forest_cap = s.min(2_048);
        let params = match self {
            LearnerKind::XgBoost => vec![
                ParamDef::new("tree_num", Domain::log_int(4, boost_cap), 4.0),
                ParamDef::new("leaf_num", Domain::log_int(4, boost_cap), 4.0),
                ParamDef::new("min_child_weight", Domain::log_float(0.01, 20.0), 20.0),
                ParamDef::new("learning_rate", Domain::log_float(0.01, 1.0), 0.1),
                ParamDef::new("subsample", Domain::float(0.6, 1.0), 1.0),
                ParamDef::new("reg_alpha", Domain::log_float(1e-10, 1.0), 1e-10),
                ParamDef::new("reg_lambda", Domain::log_float(1e-10, 1.0), 1.0),
                ParamDef::new("colsample_bylevel", Domain::float(0.6, 1.0), 1.0),
                ParamDef::new("colsample_bytree", Domain::float(0.7, 1.0), 1.0),
            ],
            LearnerKind::LightGbm => vec![
                ParamDef::new("tree_num", Domain::log_int(4, boost_cap), 4.0),
                ParamDef::new("leaf_num", Domain::log_int(4, boost_cap), 4.0),
                ParamDef::new("min_child_weight", Domain::log_float(0.01, 20.0), 20.0),
                ParamDef::new("learning_rate", Domain::log_float(0.01, 1.0), 0.1),
                ParamDef::new("subsample", Domain::float(0.6, 1.0), 1.0),
                ParamDef::new("reg_alpha", Domain::log_float(1e-10, 1.0), 1e-10),
                ParamDef::new("reg_lambda", Domain::log_float(1e-10, 1.0), 1.0),
                ParamDef::new("max_bin", Domain::log_int(7, 1023), 255.0),
                ParamDef::new("colsample_bytree", Domain::float(0.7, 1.0), 1.0),
            ],
            LearnerKind::CatBoost => vec![
                ParamDef::new("early_stop_rounds", Domain::int(10, 150), 10.0),
                ParamDef::new("learning_rate", Domain::log_float(0.005, 0.2), 0.1),
            ],
            LearnerKind::Rf | LearnerKind::ExtraTrees => vec![
                ParamDef::new("tree_num", Domain::log_int(4, forest_cap), 4.0),
                ParamDef::new("max_features", Domain::float(0.1, 1.0), 1.0),
                ParamDef::new("split_criterion", Domain::categorical(2), 0.0),
            ],
            LearnerKind::Lr => vec![ParamDef::new(
                "c",
                Domain::log_float(0.03125, 32_768.0),
                1.0,
            )],
        };
        SearchSpace::new(params).expect("table 5 spaces are well-formed")
    }
}

impl std::fmt::Display for LearnerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_round_trip() {
        for k in LearnerKind::ALL {
            assert_eq!(LearnerKind::parse(k.name()), Some(k));
        }
        assert_eq!(LearnerKind::parse("nope"), None);
    }

    #[test]
    fn cost_constants_match_the_appendix() {
        assert_eq!(LearnerKind::LightGbm.cost_constant(), 1.0);
        assert_eq!(LearnerKind::XgBoost.cost_constant(), 1.6);
        assert_eq!(LearnerKind::ExtraTrees.cost_constant(), 1.9);
        assert_eq!(LearnerKind::Rf.cost_constant(), 2.0);
        assert_eq!(LearnerKind::CatBoost.cost_constant(), 15.0);
        assert_eq!(LearnerKind::Lr.cost_constant(), 160.0);
    }

    #[test]
    fn tree_caps_depend_on_dataset_size() {
        let small = LearnerKind::XgBoost.space(100);
        let c = small.init_config();
        assert_eq!(c.get(&small, "tree_num"), 4.0);
        // Upper bound is min(32768, S): decode(1.0) must be 100.
        let idx = small.index_of("tree_num").unwrap();
        assert_eq!(small.params()[idx].domain.decode(1.0), 100.0);
        let big = LearnerKind::XgBoost.space(1_000_000);
        let idx = big.index_of("tree_num").unwrap();
        assert_eq!(big.params()[idx].domain.decode(1.0), 32_768.0);
    }

    #[test]
    fn init_values_are_low_cost() {
        for k in LearnerKind::ALL {
            let space = k.space(10_000);
            let init = space.init_config();
            if let Some(i) = space.index_of("tree_num") {
                assert_eq!(init.values()[i], 4.0, "{k}: init tree_num");
            }
            if let Some(i) = space.index_of("leaf_num") {
                assert_eq!(init.values()[i], 4.0, "{k}: init leaf_num");
            }
        }
    }

    #[test]
    fn spaces_have_expected_dimensions() {
        assert_eq!(LearnerKind::XgBoost.space(1000).dim(), 9);
        assert_eq!(LearnerKind::LightGbm.space(1000).dim(), 9);
        assert_eq!(LearnerKind::CatBoost.space(1000).dim(), 2);
        assert_eq!(LearnerKind::Rf.space(1000).dim(), 3);
        assert_eq!(LearnerKind::ExtraTrees.space(1000).dim(), 3);
        assert_eq!(LearnerKind::Lr.space(1000).dim(), 1);
    }
}
