//! The FLAML AutoML layer (the paper's contribution, Section 4).
//!
//! The system has two layers: the ML layer ([`flaml_learners`]) holds the
//! candidate learners, and this AutoML layer drives the search with four
//! components (paper Figure 3):
//!
//! 1. **Resampling-strategy proposer** ([`ResampleRule`]) — cross
//!    validation vs. holdout by a thresholding rule on data size and
//!    budget.
//! 2. **Learner proposer** ([`EciState`]) — each learner is chosen with
//!    probability proportional to `1/ECI`, its *estimated cost for
//!    improvement*.
//! 3. **Hyperparameter and sample-size proposer** — FLOW² randomized
//!    direct search ([`flaml_search::Flow2`]) interleaved with
//!    sample-size doubling, choosing between them by comparing `ECI1`
//!    with `ECI2`.
//! 4. **Controller** — runs trials, observes error and cost, and feeds
//!    both back.
//!
//! The entry point is [`AutoMl`]:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use flaml_core::{AutoMl, LearnerKind};
//! use flaml_data::{Dataset, Task};
//!
//! let x: Vec<f64> = (0..400).map(|i| (i % 97) as f64 / 97.0).collect();
//! let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 0.4)).collect();
//! let data = Dataset::new("quick", Task::Binary, vec![x], y)?;
//!
//! let result = AutoMl::new()
//!     .time_budget(1.0)
//!     .estimators([LearnerKind::LightGbm, LearnerKind::Lr])
//!     .fit(&data)?;
//! println!("best: {} ({})", result.best_learner, result.best_config_rendered);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod automl;
mod clock;
mod controller;
mod custom;
mod dataplane;
mod eci;
mod ensemble;
mod handle;
mod learner;
mod resample;
mod serving;
mod spaces;
mod treecache;

pub use automl::{
    retrain_from_log, AutoMl, AutoMlError, AutoMlResult, LearnerSelection, ResampleChoice,
    Retrained, TrialMode, TrialRecord,
};
pub use clock::{default_virtual_cost, BudgetClock, TimeSource, TrialInfo};
pub use custom::{CustomLearner, Estimator};
pub use dataplane::{DataPlane, FoldData, PrepStats, TrialData};
pub use eci::{sample_by_inverse_eci, EciState};
pub use ensemble::{build_stacked, MemberSpec};
pub use handle::{SearchHandle, SliceOutcome};
pub use learner::{config_cost_factor, fit_learner, fit_learner_prepared};
pub use resample::{
    run_trial, run_trial_prepared, ResampleRule, ResampleStrategy, TrialOutcome, TrialStatus,
};
pub use serving::{export_artifact_from_log, export_artifact_from_log_as};
pub use spaces::LearnerKind;
pub use treecache::{TreeCache, TreeCacheStats, TreeKey, TrialBoost};

// Re-export the execution runtime so downstream crates can size pools and
// subscribe to trial telemetry without depending on flaml-exec directly.
pub use flaml_exec::{
    event_channel, EventSink, ExecPool, FaultPlan, InjectedFault, Telemetry, TenantUsage,
    TrialEvent, TrialEventKind,
};

// Re-export the journal so resume/warm-start workflows (read a log, seed
// `starting_points`, inspect best trials) need only this crate.
pub use flaml_journal::{
    discover, DiscoveredJournal, Journal, JournalError, JournalHeader, TrialLine,
};

// Re-export the storage layer so fault-injection tests and durability
// tooling (chaos plans, atomic publish) need only this crate.
pub use flaml_store::{
    atomic_write_file, disk, is_stale_tmp, ChaosStorage, DiskStorage, IoFault, IoFaultPlan,
    Storage, StorageError, StorageFile,
};

// Re-export the serving stack so "fit, then serve" needs only this crate:
// compile the winner, publish it to a registry, batch-predict on the pool.
pub use flaml_serve::{
    ArtifactError, BatchEngine, CompiledModel, ModelRegistry, PromoteReason, Published,
    ServeTelemetry, SlotStats, VersionedModel,
};

// Re-export the binary artifact layer alongside: same "fit, then
// serve" story, mmap-backed.
pub use flaml_blob::{
    encode_blob, save_blob, save_blob_with, ArtifactFormat, BlobModel, BlobOptions, BLOB_MAGIC,
};
