//! Mapping from search-space configurations to concrete learner
//! parameters, and the trial-time fit entry point.

use crate::spaces::LearnerKind;
use flaml_data::DatasetView;
use flaml_learners::{
    FitError, FittedModel, Forest, ForestParams, Gbdt, GbdtFitState, GbdtParams, Growth, Linear,
    LinearParams, PreparedBins, SplitCriterion,
};
use flaml_search::{Config, SearchSpace};
use std::sync::Arc;
use std::time::Duration;

/// The CatBoost-style learner's round cap; the searched hyperparameter is
/// the early-stopping patience, as in Table 5.
const CATBOOST_MAX_ROUNDS: usize = 2048;
/// Oblivious-tree leaf budget (depth 6, CatBoost's default).
const CATBOOST_MAX_LEAVES: usize = 64;

/// Builds the concrete learner parameters for `kind` from a decoded
/// configuration, fits on `data`, and returns the model.
///
/// `budget` bounds the training time (the controller passes the remaining
/// AutoML budget so no trial can overrun it).
///
/// # Errors
///
/// Returns [`FitError`] if the configuration is invalid for the learner or
/// the data is unusable (e.g. a single-class subsample).
pub fn fit_learner(
    kind: LearnerKind,
    data: impl Into<DatasetView>,
    config: &Config,
    space: &SearchSpace,
    seed: u64,
    budget: Option<Duration>,
) -> Result<FittedModel, FitError> {
    let data: DatasetView = data.into();
    fit_learner_prepared(kind, &data, config, space, seed, budget, None)
}

/// Like [`fit_learner`], but lets GBDT learners reuse a pre-binned
/// training matrix prepared by the data plane. `prepared` is consulted
/// only when its `max_bin` equals the configuration's (the learner
/// verifies the match); otherwise bins are computed from `data`, so the
/// fitted model is bit-identical with or without the artifact.
///
/// # Errors
///
/// Returns [`FitError`] if the configuration is invalid for the learner or
/// the data is unusable (e.g. a single-class subsample).
pub fn fit_learner_prepared(
    kind: LearnerKind,
    data: &DatasetView,
    config: &Config,
    space: &SearchSpace,
    seed: u64,
    budget: Option<Duration>,
    prepared: Option<&PreparedBins>,
) -> Result<FittedModel, FitError> {
    match kind {
        LearnerKind::LightGbm => {
            let params = lightgbm_params(config, space);
            Gbdt::fit_prepared(data, &params, seed, budget, prepared).map(FittedModel::from)
        }
        LearnerKind::XgBoost => {
            let params = xgboost_params(config, space);
            Gbdt::fit_prepared(data, &params, seed, budget, prepared).map(FittedModel::from)
        }
        LearnerKind::CatBoost => {
            let params = GbdtParams {
                n_trees: CATBOOST_MAX_ROUNDS,
                max_leaves: CATBOOST_MAX_LEAVES,
                min_child_weight: 1e-3,
                learning_rate: config.get(space, "learning_rate"),
                subsample: 1.0,
                reg_alpha: 1e-10,
                reg_lambda: 3.0,
                colsample_bytree: 1.0,
                colsample_bylevel: 1.0,
                max_bin: 255,
                growth: Growth::Oblivious,
                early_stop_rounds: Some(config.get(space, "early_stop_rounds") as usize),
            };
            Gbdt::fit_prepared(data, &params, seed, budget, prepared).map(FittedModel::from)
        }
        LearnerKind::Rf | LearnerKind::ExtraTrees => {
            let params = ForestParams {
                n_trees: config.get(space, "tree_num") as usize,
                max_features: config.get(space, "max_features"),
                criterion: if config.get(space, "split_criterion") as i64 == 0 {
                    SplitCriterion::Gini
                } else {
                    SplitCriterion::Entropy
                },
                extra: kind == LearnerKind::ExtraTrees,
                max_depth: None,
            };
            Forest::fit_bounded(data, &params, seed, budget).map(FittedModel::from)
        }
        LearnerKind::Lr => {
            let params = LinearParams {
                c: config.get(space, "c"),
                max_iter: 25,
            };
            Linear::fit_bounded(data, &params, seed, budget).map(FittedModel::from)
        }
    }
}

fn lightgbm_params(config: &Config, space: &SearchSpace) -> GbdtParams {
    GbdtParams {
        n_trees: config.get(space, "tree_num") as usize,
        max_leaves: config.get(space, "leaf_num") as usize,
        min_child_weight: config.get(space, "min_child_weight"),
        learning_rate: config.get(space, "learning_rate"),
        subsample: config.get(space, "subsample"),
        reg_alpha: config.get(space, "reg_alpha"),
        reg_lambda: config.get(space, "reg_lambda"),
        colsample_bytree: config.get(space, "colsample_bytree"),
        colsample_bylevel: 1.0,
        max_bin: config.get(space, "max_bin") as usize,
        growth: Growth::LeafWise,
        early_stop_rounds: None,
    }
}

fn xgboost_params(config: &Config, space: &SearchSpace) -> GbdtParams {
    GbdtParams {
        n_trees: config.get(space, "tree_num") as usize,
        max_leaves: config.get(space, "leaf_num") as usize,
        min_child_weight: config.get(space, "min_child_weight"),
        learning_rate: config.get(space, "learning_rate"),
        subsample: config.get(space, "subsample"),
        reg_alpha: config.get(space, "reg_alpha"),
        reg_lambda: config.get(space, "reg_lambda"),
        colsample_bytree: config.get(space, "colsample_bytree"),
        colsample_bylevel: config.get(space, "colsample_bylevel"),
        max_bin: 255,
        growth: Growth::DepthWise,
        early_stop_rounds: None,
    }
}

/// The boosting parameters for `kind`'s trial fit when (and only when)
/// that fit is eligible for cross-trial prefix caching: a builtin
/// LightGBM/XGBoost-style learner whose configuration draws nothing from
/// the RNG (no row or column subsampling), making the tree sequence
/// seed-invariant and prefix-stable. CatBoost-style fits are excluded:
/// their round count is governed by searched early stopping, so a
/// continued run would not be prefix-stable.
pub(crate) fn cacheable_gbdt_params(
    kind: LearnerKind,
    config: &Config,
    space: &SearchSpace,
) -> Option<GbdtParams> {
    let params = match kind {
        LearnerKind::LightGbm => lightgbm_params(config, space),
        LearnerKind::XgBoost => xgboost_params(config, space),
        _ => return None,
    };
    let seed_invariant = params.subsample >= 1.0
        && params.colsample_bytree >= 1.0
        && params.colsample_bylevel >= 1.0;
    seed_invariant.then_some(params)
}

/// Fits a cache-eligible boosting run, continuing from `warm` when given:
/// the bit-exactness contract of [`Gbdt::fit_continue`] makes the result
/// identical to a cold fit at `params.n_trees`. Returns the model
/// together with the (possibly grown) fit state for store-back. When the
/// cached prefix already covers the target, no boosting happens at all —
/// the model is a snapshot of the prefix and the state is returned
/// untouched.
pub(crate) fn fit_gbdt_warm(
    data: &DatasetView,
    params: &GbdtParams,
    seed: u64,
    budget: Option<Duration>,
    prepared: Option<&PreparedBins>,
    warm: Option<Arc<GbdtFitState>>,
) -> Result<(FittedModel, Arc<GbdtFitState>), FitError> {
    if let Some(w) = warm {
        if w.rounds_done() >= params.n_trees {
            let model = w.model_at(params.n_trees);
            return Ok((model.into(), w));
        }
        let mut state = (*w).clone();
        let extra = params.n_trees - state.rounds_done();
        Gbdt::fit_continue_bounded(&mut state, extra, budget);
        let state = Arc::new(state);
        let model = state.model_at(state.rounds_done());
        return Ok((model.into(), state));
    }
    let mut state = Gbdt::fit_start(data, params, seed, prepared)?;
    Gbdt::fit_continue_bounded(&mut state, params.n_trees, budget);
    let state = Arc::new(state);
    let model = state.model_at(state.rounds_done());
    Ok((model.into(), state))
}

/// A rough complexity factor for the configuration, used by the virtual
/// clock's deterministic cost model (`trees x leaves` for tree learners).
pub fn config_cost_factor(kind: LearnerKind, config: &Config, space: &SearchSpace) -> f64 {
    match kind {
        LearnerKind::LightGbm | LearnerKind::XgBoost => {
            config.get(space, "tree_num") * config.get(space, "leaf_num")
        }
        LearnerKind::CatBoost => {
            // Rounds are governed by early stopping; patience is a proxy.
            config.get(space, "early_stop_rounds") * CATBOOST_MAX_LEAVES as f64
        }
        LearnerKind::Rf | LearnerKind::ExtraTrees => config.get(space, "tree_num") * 32.0,
        LearnerKind::Lr => 64.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::{Dataset, Task};

    fn toy_binary(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let x2: Vec<f64> = (0..n).map(|i| ((i * 7) % n) as f64 / n as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| f64::from(v > 0.5)).collect();
        Dataset::new("toy", Task::Binary, vec![x, x2], y).unwrap()
    }

    #[test]
    fn every_learner_fits_its_init_config() {
        let data = toy_binary(120);
        for kind in LearnerKind::ALL {
            let space = kind.space(data.n_rows());
            let config = space.init_config();
            let model = fit_learner(kind, &data, &config, &space, 0, None)
                .unwrap_or_else(|e| panic!("{kind} failed on init config: {e}"));
            let pred = model.predict(&data);
            assert_eq!(pred.n_rows(), data.n_rows(), "{kind}");
        }
    }

    #[test]
    fn every_learner_fits_regression() {
        let n = 120;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| v * 2.0 + 1.0).collect();
        let data = Dataset::new("reg", Task::Regression, vec![x], y).unwrap();
        for kind in LearnerKind::ALL {
            let space = kind.space(data.n_rows());
            let config = space.init_config();
            let model = fit_learner(kind, &data, &config, &space, 0, None)
                .unwrap_or_else(|e| panic!("{kind} failed on regression: {e}"));
            assert!(model.predict(&data).values().is_ok(), "{kind}");
        }
    }

    #[test]
    fn cost_factor_grows_with_model_size() {
        let space = LearnerKind::LightGbm.space(100_000);
        let small = space.init_config();
        let big = space.decode(&vec![1.0; space.dim()]);
        assert!(
            config_cost_factor(LearnerKind::LightGbm, &big, &space)
                > config_cost_factor(LearnerKind::LightGbm, &small, &space)
        );
    }
}
