//! Step 0 of FLAML's search: the resampling-strategy proposer, plus the
//! trial evaluation that executes a configuration under the chosen
//! strategy.
//!
//! The paper's thresholding rule: use 5-fold cross-validation when the
//! training set has fewer than 100K instances *and* `#instances x
//! #features / budget` is below 10M per hour; otherwise use holdout with
//! ratio 0.1.

use crate::custom::Estimator;
use flaml_data::{stratified_kfold, train_test_split, Dataset};
use flaml_learners::FittedModel;
use flaml_metrics::Metric;
use flaml_search::{Config, SearchSpace};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The resampling strategy used to assess each trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResampleStrategy {
    /// k-fold cross-validation.
    Cv {
        /// Number of folds.
        folds: usize,
    },
    /// Holdout with the given validation ratio.
    Holdout {
        /// Fraction of rows held out for validation.
        ratio: f64,
    },
}

impl std::fmt::Display for ResampleStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResampleStrategy::Cv { folds } => write!(f, "cv{folds}"),
            ResampleStrategy::Holdout { ratio } => write!(f, "holdout{ratio}"),
        }
    }
}

/// Thresholds of the strategy rule; the defaults are the paper's numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResampleRule {
    /// Use holdout above this instance count (paper: 100K).
    pub instance_threshold: usize,
    /// Use holdout above this `instances x features / budget-seconds`
    /// rate (paper: 10M per hour).
    pub rate_threshold: f64,
    /// Folds for cross-validation (paper: 5).
    pub cv_folds: usize,
    /// Holdout ratio (paper: 0.1).
    pub holdout_ratio: f64,
}

impl Default for ResampleRule {
    fn default() -> Self {
        ResampleRule {
            instance_threshold: 100_000,
            rate_threshold: 10.0e6 / 3600.0,
            cv_folds: 5,
            holdout_ratio: 0.1,
        }
    }
}

impl ResampleRule {
    /// Applies the thresholding rule for a dataset and time budget.
    pub fn choose(&self, n_rows: usize, n_features: usize, budget_secs: f64) -> ResampleStrategy {
        let rate = n_rows as f64 * n_features as f64 / budget_secs.max(1e-9);
        if n_rows < self.instance_threshold && rate < self.rate_threshold {
            ResampleStrategy::Cv {
                folds: self.cv_folds,
            }
        } else {
            ResampleStrategy::Holdout {
                ratio: self.holdout_ratio,
            }
        }
    }
}

/// The observable result of one trial.
#[derive(Debug)]
pub struct TrialOutcome {
    /// Validation error (the metric's loss; `INFINITY` if the trial
    /// failed, e.g. a single-class subsample).
    pub error: f64,
    /// The model trained during the trial (holdout only; CV trials defer
    /// training the final model).
    pub model: Option<FittedModel>,
    /// Number of model fits the trial performed.
    pub n_fits: usize,
    /// Virtual-cost complexity factor of the evaluated configuration.
    pub cost_factor: f64,
}

/// Evaluates `config` for `kind` on the first `sample_size` rows of the
/// (pre-shuffled) dataset under `strategy`, scoring with `metric`.
///
/// Failures (unfittable subsample, degenerate metric) surface as
/// `error = INFINITY` rather than an `Err`, because a failed trial is a
/// legitimate observation for the search.
#[allow(clippy::too_many_arguments)]
pub fn run_trial(
    shuffled: &Dataset,
    kind: &Estimator,
    config: &Config,
    space: &SearchSpace,
    sample_size: usize,
    strategy: ResampleStrategy,
    metric: Metric,
    seed: u64,
    deadline: Option<Duration>,
) -> TrialOutcome {
    let sample = shuffled.prefix(sample_size);
    let cost_factor = kind.cost_factor(config, space);
    match strategy {
        ResampleStrategy::Holdout { ratio } => {
            let Ok(fold) = train_test_split(sample.n_rows(), ratio) else {
                return TrialOutcome {
                    error: f64::INFINITY,
                    model: None,
                    n_fits: 0,
                    cost_factor,
                };
            };
            let train = sample.select(&fold.train);
            let valid = sample.select(&fold.valid);
            let error = match kind.fit(&train, config, space, seed, deadline) {
                Ok(model) => {
                    let err = metric
                        .loss(&model.predict(&valid), valid.target())
                        .unwrap_or(f64::INFINITY);
                    return TrialOutcome {
                        error: err,
                        model: Some(model),
                        n_fits: 1,
                        cost_factor,
                    };
                }
                Err(_) => f64::INFINITY,
            };
            TrialOutcome {
                error,
                model: None,
                n_fits: 1,
                cost_factor,
            }
        }
        ResampleStrategy::Cv { folds } => {
            let Ok(folds_idx) = stratified_kfold(&sample, folds) else {
                return TrialOutcome {
                    error: f64::INFINITY,
                    model: None,
                    n_fits: 0,
                    cost_factor,
                };
            };
            let mut total = 0.0;
            let mut n_ok = 0usize;
            let n_fits = folds_idx.len();
            // Split any deadline evenly across folds so CV cannot overrun.
            let per_fold = deadline.map(|d| d / n_fits as u32);
            for fold in &folds_idx {
                let train = sample.select(&fold.train);
                let valid = sample.select(&fold.valid);
                match kind.fit(&train, config, space, seed, per_fold) {
                    Ok(model) => {
                        let err = metric
                            .loss(&model.predict(&valid), valid.target())
                            .unwrap_or(f64::INFINITY);
                        total += err;
                        n_ok += 1;
                    }
                    Err(_) => {
                        total = f64::INFINITY;
                        break;
                    }
                }
            }
            let error = if n_ok == n_fits && n_fits > 0 {
                total / n_fits as f64
            } else {
                f64::INFINITY
            };
            TrialOutcome {
                error,
                model: None,
                n_fits,
                cost_factor,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::Task;

    fn data(n: usize, d: usize) -> Dataset {
        let cols: Vec<Vec<f64>> = (0..d)
            .map(|j| (0..n).map(|i| ((i * (j + 3)) % 17) as f64 + i as f64 / n as f64).collect())
            .collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(i % 2 == 0)).collect();
        Dataset::new("d", Task::Binary, cols, y).unwrap()
    }

    #[test]
    fn rule_picks_cv_for_small_cheap_tasks() {
        let rule = ResampleRule::default();
        // 1000 x 5 over 3600s => rate 1.39/s, far below 2778/s.
        assert_eq!(
            rule.choose(1_000, 5, 3600.0),
            ResampleStrategy::Cv { folds: 5 }
        );
    }

    #[test]
    fn rule_picks_holdout_for_big_data() {
        let rule = ResampleRule::default();
        assert_eq!(
            rule.choose(200_000, 5, 3600.0),
            ResampleStrategy::Holdout { ratio: 0.1 }
        );
    }

    #[test]
    fn rule_picks_holdout_when_budget_is_tight() {
        let rule = ResampleRule::default();
        // 50k x 100 over 60s => 83k/s >> 2778/s.
        assert_eq!(
            rule.choose(50_000, 100, 60.0),
            ResampleStrategy::Holdout { ratio: 0.1 }
        );
    }

    #[test]
    fn holdout_trial_returns_model_and_finite_error() {
        let d = data(200, 3).shuffled(0);
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(200);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            200,
            ResampleStrategy::Holdout { ratio: 0.1 },
            Metric::RocAuc,
            0,
            None,
        );
        assert!(out.error.is_finite());
        assert!(out.model.is_some());
        assert_eq!(out.n_fits, 1);
    }

    #[test]
    fn cv_trial_averages_folds() {
        let d = data(200, 3).shuffled(0);
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(200);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            200,
            ResampleStrategy::Cv { folds: 5 },
            Metric::RocAuc,
            0,
            None,
        );
        assert!(out.error.is_finite());
        assert!(out.model.is_none(), "cv defers the final model");
        assert_eq!(out.n_fits, 5);
    }

    #[test]
    fn subsampling_uses_prefix() {
        let d = data(1000, 3).shuffled(0);
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(1000);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            100,
            ResampleStrategy::Holdout { ratio: 0.1 },
            Metric::RocAuc,
            0,
            None,
        );
        assert!(out.error.is_finite());
    }

    #[test]
    fn degenerate_sample_fails_softly() {
        // All-positive dataset: binary GBDT cannot fit.
        let n = 50;
        let col: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = vec![1.0; n];
        let d = Dataset::new("deg", Task::Binary, vec![col], y).unwrap();
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(n);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            n,
            ResampleStrategy::Holdout { ratio: 0.1 },
            Metric::RocAuc,
            0,
            None,
        );
        assert!(out.error.is_infinite());
    }
}
