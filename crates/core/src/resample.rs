//! Step 0 of FLAML's search: the resampling-strategy proposer, plus the
//! trial evaluation that executes a configuration under the chosen
//! strategy.
//!
//! The paper's thresholding rule: use 5-fold cross-validation when the
//! training set has fewer than 100K instances *and* `#instances x
//! #features / budget` is below 10M per hour; otherwise use holdout with
//! ratio 0.1.
//!
//! Evaluation runs on a [`flaml_exec::ExecPool`]: the k folds of a CV
//! trial execute as independent pool jobs (concurrently when the pool
//! has more than one worker), every model fit is panic-isolated (a
//! panicking learner becomes a failed trial, not a dead process), and
//! deadlines are enforced cooperatively through the job context. A
//! single-worker pool evaluates folds inline in fold order, reproducing
//! the sequential fold loop bit-for-bit.

use crate::custom::Estimator;
use crate::dataplane::{DataPlane, TrialData};
use crate::treecache::TrialBoost;
use flaml_data::Dataset;
use flaml_exec::{ExecPool, Job, JobStatus};
use flaml_learners::{FittedModel, GbdtFitState};
use flaml_metrics::Metric;
use flaml_search::{Config, SearchSpace};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The resampling strategy used to assess each trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResampleStrategy {
    /// k-fold cross-validation.
    Cv {
        /// Number of folds.
        folds: usize,
    },
    /// Holdout with the given validation ratio.
    Holdout {
        /// Fraction of rows held out for validation.
        ratio: f64,
    },
}

impl ResampleStrategy {
    /// Number of model fits one trial performs under this strategy.
    pub fn fits_per_trial(&self) -> usize {
        match self {
            ResampleStrategy::Cv { folds } => *folds,
            ResampleStrategy::Holdout { .. } => 1,
        }
    }
}

impl std::fmt::Display for ResampleStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResampleStrategy::Cv { folds } => write!(f, "cv{folds}"),
            ResampleStrategy::Holdout { ratio } => write!(f, "holdout{ratio}"),
        }
    }
}

/// Thresholds of the strategy rule; the defaults are the paper's numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResampleRule {
    /// Use holdout above this instance count (paper: 100K).
    pub instance_threshold: usize,
    /// Use holdout above this `instances x features / budget-seconds`
    /// rate (paper: 10M per hour).
    pub rate_threshold: f64,
    /// Folds for cross-validation (paper: 5).
    pub cv_folds: usize,
    /// Holdout ratio (paper: 0.1).
    pub holdout_ratio: f64,
}

impl Default for ResampleRule {
    fn default() -> Self {
        ResampleRule {
            instance_threshold: 100_000,
            rate_threshold: 10.0e6 / 3600.0,
            cv_folds: 5,
            holdout_ratio: 0.1,
        }
    }
}

impl ResampleRule {
    /// Applies the thresholding rule for a dataset and time budget.
    pub fn choose(&self, n_rows: usize, n_features: usize, budget_secs: f64) -> ResampleStrategy {
        let rate = n_rows as f64 * n_features as f64 / budget_secs.max(1e-9);
        if n_rows < self.instance_threshold && rate < self.rate_threshold {
            ResampleStrategy::Cv {
                folds: self.cv_folds,
            }
        } else {
            ResampleStrategy::Holdout {
                ratio: self.holdout_ratio,
            }
        }
    }
}

/// How a trial ended: the typed outcome the controller's failure policy
/// dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrialStatus {
    /// The trial produced a usable validation error within its deadline.
    #[default]
    Ok,
    /// The trial failed deterministically: an unfittable subsample, a fit
    /// error, or a degenerate metric. Retrying would fail identically.
    Failed,
    /// Some fit ran past its cooperative deadline (the value, if any, is
    /// still usable — the budget was simply overrun).
    TimedOut,
    /// A fit panicked; the panic was absorbed and the trial failed.
    Panicked,
    /// The trial scored, but the loss came back `NaN` — sanitized to
    /// `INFINITY` before it can reach any incumbent.
    NonFiniteLoss,
}

impl TrialStatus {
    /// Stable lowercase name (used in logs and telemetry messages).
    pub fn name(&self) -> &'static str {
        match self {
            TrialStatus::Ok => "ok",
            TrialStatus::Failed => "failed",
            TrialStatus::TimedOut => "timed-out",
            TrialStatus::Panicked => "panicked",
            TrialStatus::NonFiniteLoss => "non-finite-loss",
        }
    }

    /// Parses a status name as produced by [`TrialStatus::name`] (how a
    /// journaled status string becomes a typed status again on replay).
    pub fn parse(name: &str) -> Option<TrialStatus> {
        [
            TrialStatus::Ok,
            TrialStatus::Failed,
            TrialStatus::TimedOut,
            TrialStatus::Panicked,
            TrialStatus::NonFiniteLoss,
        ]
        .into_iter()
        .find(|s| s.name() == name)
    }

    /// Whether the failure is *transient* — worth retrying. Panics and
    /// non-finite losses can come from flaky environments (or injected
    /// faults keyed by attempt); deterministic failures and timeouts
    /// would only burn budget on an identical re-run.
    pub fn transient(&self) -> bool {
        matches!(self, TrialStatus::Panicked | TrialStatus::NonFiniteLoss)
    }
}

impl std::fmt::Display for TrialStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The observable result of one trial.
#[derive(Debug)]
pub struct TrialOutcome {
    /// Validation error (the metric's loss; `INFINITY` if the trial
    /// failed, e.g. a single-class subsample). Never `NaN`: a `NaN` loss
    /// is sanitized to `INFINITY` and flagged
    /// [`TrialStatus::NonFiniteLoss`].
    pub error: f64,
    /// The model trained during the trial (holdout only; CV trials defer
    /// training the final model).
    pub model: Option<FittedModel>,
    /// Number of model fits the trial performed.
    pub n_fits: usize,
    /// Virtual-cost complexity factor of the evaluated configuration.
    pub cost_factor: f64,
    /// How the trial ended.
    pub status: TrialStatus,
    /// Panic or diagnostic message, if any.
    pub message: Option<String>,
    /// Per-fold boosting states after a warm (tree-cache-eligible) trial,
    /// in fold order — what the controller stores back into the
    /// [`crate::TreeCache`]. Empty when the trial ran without a
    /// continuation plan or aborted before any fit.
    pub fold_states: Vec<Option<Arc<GbdtFitState>>>,
}

impl TrialOutcome {
    /// A trial that failed before any model fit.
    fn aborted(cost_factor: f64) -> TrialOutcome {
        TrialOutcome {
            error: f64::INFINITY,
            model: None,
            n_fits: 0,
            cost_factor,
            status: TrialStatus::Failed,
            message: None,
            fold_states: Vec::new(),
        }
    }

    /// Whether any fit of this trial panicked.
    pub fn panicked(&self) -> bool {
        self.status == TrialStatus::Panicked
    }

    /// Whether this trial ran past its cooperative deadline.
    pub fn timed_out(&self) -> bool {
        self.status == TrialStatus::TimedOut
    }
}

/// One fold's evaluation inside a CV trial.
enum FoldEval {
    /// The fold trained and scored (the loss may still be infinite).
    Scored(f64),
    /// The learner returned a fit error.
    FitFailed,
    /// An earlier fold already failed; this fold was skipped.
    Skipped,
}

/// Evaluates `config` for `kind` on the first `sample_size` rows of the
/// (pre-shuffled) dataset under `strategy`, scoring with `metric`.
///
/// A convenience wrapper around [`run_trial_prepared`] that derives the
/// trial's views (and, for binned learners, its bin artifacts) fresh —
/// what the controller's [`DataPlane`] would produce on a cache miss.
#[allow(clippy::too_many_arguments)]
pub fn run_trial(
    shuffled: &Dataset,
    kind: &Estimator,
    config: &Config,
    space: &SearchSpace,
    sample_size: usize,
    strategy: ResampleStrategy,
    metric: Metric,
    seed: u64,
    deadline: Option<Duration>,
    pool: &ExecPool,
) -> TrialOutcome {
    let mut plane = DataPlane::new(shuffled.view(), strategy, true, usize::MAX);
    let (trial, _) = plane.prepare(sample_size, kind.max_bin(config, space));
    run_trial_prepared(
        &trial, kind, config, space, strategy, metric, seed, deadline, pool, None,
    )
}

/// Evaluates `config` for `kind` on a prepared [`TrialData`] under
/// `strategy`, scoring with `metric`. Model fits are dispatched as jobs
/// on `pool`: CV folds run concurrently when the pool has more than one
/// worker, and a `pool` with one worker reproduces the sequential fold
/// loop exactly.
///
/// Failures (unfittable subsample, degenerate metric, a panicking
/// learner) surface as `error = INFINITY` rather than an `Err`, because
/// a failed trial is a legitimate observation for the search.
///
/// `boost`, when given, switches cache-eligible boosting fits to the
/// warm-continuation path: each fold continues from its cached prefix in
/// `boost.warm` (or starts cold under the same staged code path) and the
/// resulting states come back in [`TrialOutcome::fold_states`] for
/// store-back. Warm and cold fits are bit-identical by the
/// [`flaml_learners::Gbdt::fit_continue`] contract.
#[allow(clippy::too_many_arguments)]
pub fn run_trial_prepared(
    trial: &TrialData,
    kind: &Estimator,
    config: &Config,
    space: &SearchSpace,
    strategy: ResampleStrategy,
    metric: Metric,
    seed: u64,
    deadline: Option<Duration>,
    pool: &ExecPool,
    boost: Option<&TrialBoost>,
) -> TrialOutcome {
    let cost_factor = kind.cost_factor(config, space);
    match strategy {
        ResampleStrategy::Holdout { .. } => {
            let Some(fold) = trial.folds.first() else {
                return TrialOutcome::aborted(cost_factor);
            };
            let job = Job::new(move |ctx: &flaml_exec::JobCtx| {
                let fitted = match boost {
                    Some(b) => crate::learner::fit_gbdt_warm(
                        &fold.train,
                        &b.params,
                        seed,
                        ctx.remaining(),
                        fold.bins.as_deref(),
                        b.warm.first().cloned().flatten(),
                    )
                    .map(|(model, state)| (model, Some(state))),
                    None => kind
                        .fit_prepared(
                            &fold.train,
                            config,
                            space,
                            seed,
                            ctx.remaining(),
                            fold.bins.as_deref(),
                        )
                        .map(|model| (model, None)),
                };
                match fitted {
                    Ok((model, state)) => {
                        // Keep the raw loss (possibly NaN) so the commit
                        // path can distinguish a non-finite loss from a
                        // deterministic fit failure.
                        let err = metric
                            .loss(&model.predict(&fold.valid), &fold.valid_target)
                            .unwrap_or(f64::INFINITY);
                        (FoldEval::Scored(err), Some(model), state)
                    }
                    Err(_) => (FoldEval::FitFailed, None, None),
                }
            })
            .deadline(deadline);
            let result = pool
                .run_batch(vec![job], None)
                .pop()
                .expect("one job in, one result out");
            let timed_out = result.status.timed_out();
            match result.status {
                JobStatus::Finished((eval, model, state))
                | JobStatus::TimedOut((eval, model, state)) => {
                    let fold_states = vec![state];
                    match eval {
                        FoldEval::Scored(err) => {
                            let (error, status) = if err.is_nan() {
                                (f64::INFINITY, TrialStatus::NonFiniteLoss)
                            } else if err.is_infinite() {
                                (err, TrialStatus::Failed)
                            } else if timed_out {
                                (err, TrialStatus::TimedOut)
                            } else {
                                (err, TrialStatus::Ok)
                            };
                            TrialOutcome {
                                error,
                                model,
                                n_fits: 1,
                                cost_factor,
                                status,
                                message: None,
                                fold_states,
                            }
                        }
                        FoldEval::FitFailed | FoldEval::Skipped => TrialOutcome {
                            error: f64::INFINITY,
                            model: None,
                            n_fits: 1,
                            cost_factor,
                            status: TrialStatus::Failed,
                            message: None,
                            fold_states,
                        },
                    }
                }
                JobStatus::Panicked(msg) => TrialOutcome {
                    error: f64::INFINITY,
                    model: None,
                    n_fits: 1,
                    cost_factor,
                    status: TrialStatus::Panicked,
                    message: Some(msg),
                    fold_states: vec![None],
                },
            }
        }
        ResampleStrategy::Cv { .. } => {
            if trial.folds.is_empty() {
                return TrialOutcome::aborted(cost_factor);
            }
            let n_fits = trial.folds.len();
            // Split any deadline evenly across folds so CV cannot overrun
            // even when folds run one after another.
            let per_fold = deadline.map(|d| d / n_fits as u32);
            // Once one fold's fit fails the trial error is infinite
            // regardless of the other folds; later folds short-circuit.
            // With one worker this reproduces the sequential loop's early
            // break exactly.
            let aborted = AtomicBool::new(false);
            let aborted_ref = &aborted;
            let jobs: Vec<Job<'_, (FoldEval, Option<Arc<GbdtFitState>>)>> = trial
                .folds
                .iter()
                .enumerate()
                .map(|(fi, fold)| {
                    Job::new(move |ctx: &flaml_exec::JobCtx| {
                        if aborted_ref.load(Ordering::SeqCst) {
                            return (FoldEval::Skipped, None);
                        }
                        let fitted = match boost {
                            Some(b) => crate::learner::fit_gbdt_warm(
                                &fold.train,
                                &b.params,
                                seed,
                                ctx.remaining(),
                                fold.bins.as_deref(),
                                b.warm.get(fi).cloned().flatten(),
                            )
                            .map(|(model, state)| (model, Some(state))),
                            None => kind
                                .fit_prepared(
                                    &fold.train,
                                    config,
                                    space,
                                    seed,
                                    ctx.remaining(),
                                    fold.bins.as_deref(),
                                )
                                .map(|model| (model, None)),
                        };
                        match fitted {
                            Ok((model, state)) => {
                                let err = metric
                                    .loss(&model.predict(&fold.valid), &fold.valid_target)
                                    .unwrap_or(f64::INFINITY);
                                (FoldEval::Scored(err), state)
                            }
                            Err(_) => {
                                aborted_ref.store(true, Ordering::SeqCst);
                                (FoldEval::FitFailed, None)
                            }
                        }
                    })
                    .deadline(per_fold)
                })
                .collect();
            let results = pool.run_batch(jobs, None);

            // Aggregate in fold (= submission) order so the floating-point
            // sum is identical to the sequential loop's.
            let mut total = 0.0;
            let mut n_ok = 0usize;
            let mut saw_nan = false;
            let mut panicked = false;
            let mut timed_out = false;
            let mut message = None;
            let mut fold_states: Vec<Option<Arc<GbdtFitState>>> = Vec::with_capacity(n_fits);
            for result in results {
                if result.status.timed_out() {
                    timed_out = true;
                }
                match result.status {
                    JobStatus::Finished((FoldEval::Scored(err), state))
                    | JobStatus::TimedOut((FoldEval::Scored(err), state)) => {
                        fold_states.push(state);
                        if err.is_nan() {
                            saw_nan = true;
                        } else {
                            total += err;
                            n_ok += 1;
                        }
                    }
                    JobStatus::Finished((_, state)) | JobStatus::TimedOut((_, state)) => {
                        fold_states.push(state);
                    }
                    JobStatus::Panicked(msg) => {
                        fold_states.push(None);
                        panicked = true;
                        message.get_or_insert(msg);
                    }
                }
            }
            let error = if n_ok == n_fits && n_fits > 0 {
                total / n_fits as f64
            } else {
                f64::INFINITY
            };
            let status = if panicked {
                TrialStatus::Panicked
            } else if saw_nan {
                TrialStatus::NonFiniteLoss
            } else if !error.is_finite() {
                TrialStatus::Failed
            } else if timed_out {
                TrialStatus::TimedOut
            } else {
                TrialStatus::Ok
            };
            TrialOutcome {
                error,
                model: None,
                n_fits,
                cost_factor,
                status,
                message,
                fold_states,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::Task;

    fn data(n: usize, d: usize) -> Dataset {
        let cols: Vec<Vec<f64>> = (0..d)
            .map(|j| {
                (0..n)
                    .map(|i| ((i * (j + 3)) % 17) as f64 + i as f64 / n as f64)
                    .collect()
            })
            .collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(i % 2 == 0)).collect();
        Dataset::new("d", Task::Binary, cols, y).unwrap()
    }

    #[test]
    fn rule_picks_cv_for_small_cheap_tasks() {
        let rule = ResampleRule::default();
        // 1000 x 5 over 3600s => rate 1.39/s, far below 2778/s.
        assert_eq!(
            rule.choose(1_000, 5, 3600.0),
            ResampleStrategy::Cv { folds: 5 }
        );
    }

    #[test]
    fn rule_picks_holdout_for_big_data() {
        let rule = ResampleRule::default();
        assert_eq!(
            rule.choose(200_000, 5, 3600.0),
            ResampleStrategy::Holdout { ratio: 0.1 }
        );
    }

    #[test]
    fn rule_picks_holdout_when_budget_is_tight() {
        let rule = ResampleRule::default();
        // 50k x 100 over 60s => 83k/s >> 2778/s.
        assert_eq!(
            rule.choose(50_000, 100, 60.0),
            ResampleStrategy::Holdout { ratio: 0.1 }
        );
    }

    #[test]
    fn holdout_trial_returns_model_and_finite_error() {
        let d = data(200, 3).shuffled(0);
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(200);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            200,
            ResampleStrategy::Holdout { ratio: 0.1 },
            Metric::RocAuc,
            0,
            None,
            &ExecPool::sequential(),
        );
        assert!(out.error.is_finite());
        assert!(out.model.is_some());
        assert_eq!(out.n_fits, 1);
        assert_eq!(out.status, TrialStatus::Ok);
    }

    #[test]
    fn cv_trial_averages_folds() {
        let d = data(200, 3).shuffled(0);
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(200);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            200,
            ResampleStrategy::Cv { folds: 5 },
            Metric::RocAuc,
            0,
            None,
            &ExecPool::sequential(),
        );
        assert!(out.error.is_finite());
        assert!(out.model.is_none(), "cv defers the final model");
        assert_eq!(out.n_fits, 5);
    }

    #[test]
    fn cv_trial_is_identical_across_worker_counts() {
        let d = data(300, 4).shuffled(1);
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(300);
        let run = |workers: usize| {
            run_trial(
                &d,
                &kind,
                &space.init_config(),
                &space,
                300,
                ResampleStrategy::Cv { folds: 5 },
                Metric::RocAuc,
                7,
                None,
                &ExecPool::new(workers),
            )
        };
        let seq = run(1);
        for workers in [2, 4, 8] {
            let par = run(workers);
            assert_eq!(
                seq.error.to_bits(),
                par.error.to_bits(),
                "workers={workers}"
            );
            assert_eq!(seq.n_fits, par.n_fits);
        }
    }

    #[test]
    fn subsampling_uses_prefix() {
        let d = data(1000, 3).shuffled(0);
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(1000);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            100,
            ResampleStrategy::Holdout { ratio: 0.1 },
            Metric::RocAuc,
            0,
            None,
            &ExecPool::sequential(),
        );
        assert!(out.error.is_finite());
    }

    #[test]
    fn degenerate_sample_fails_softly() {
        // All-positive dataset: binary GBDT cannot fit.
        let n = 50;
        let col: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = vec![1.0; n];
        let d = Dataset::new("deg", Task::Binary, vec![col], y).unwrap();
        let kind = Estimator::Builtin(crate::LearnerKind::LightGbm);
        let space = kind.space(n);
        let out = run_trial(
            &d,
            &kind,
            &space.init_config(),
            &space,
            n,
            ResampleStrategy::Holdout { ratio: 0.1 },
            Metric::RocAuc,
            0,
            None,
            &ExecPool::sequential(),
        );
        assert!(out.error.is_infinite());
        assert!(!out.panicked());
        assert_eq!(out.status, TrialStatus::Failed);
    }

    #[test]
    fn panicking_learner_becomes_failed_trial() {
        use crate::custom::CustomLearner;
        use flaml_search::{Domain, ParamDef};
        use std::sync::Arc;

        #[derive(Debug)]
        struct Bomb;
        impl CustomLearner for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn space(&self, _n: usize) -> SearchSpace {
                SearchSpace::new(vec![ParamDef::new("x", Domain::float(0.0, 1.0), 0.5)])
                    .expect("valid space")
            }
            fn fit(
                &self,
                _data: &flaml_data::DatasetView,
                _config: &Config,
                _space: &SearchSpace,
                _seed: u64,
                _budget: Option<Duration>,
            ) -> Result<FittedModel, flaml_learners::FitError> {
                panic!("bomb learner always panics");
            }
        }

        let d = data(120, 2).shuffled(0);
        let kind = Estimator::Custom(Arc::new(Bomb));
        let space = kind.space(120);
        for strategy in [
            ResampleStrategy::Holdout { ratio: 0.1 },
            ResampleStrategy::Cv { folds: 3 },
        ] {
            let out = run_trial(
                &d,
                &kind,
                &space.init_config(),
                &space,
                120,
                strategy,
                Metric::RocAuc,
                0,
                None,
                &ExecPool::sequential(),
            );
            assert!(out.error.is_infinite(), "{strategy}");
            assert_eq!(out.status, TrialStatus::Panicked, "{strategy}");
            assert!(out.status.transient(), "{strategy}");
            assert!(
                out.message.as_deref().unwrap_or("").contains("bomb"),
                "{strategy}"
            );
        }
    }
}
