//! The public AutoML API: settings, trial records, and results.
//!
//! Mirrors the paper's scikit-learn-style interface:
//!
//! ```text
//! automl.fit(X_train, y_train, time_budget=60, estimator_list=[...])
//! ```
//!
//! becomes
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use flaml_core::AutoMl;
//! use flaml_data::{Dataset, Task};
//!
//! let x: Vec<f64> = (0..300).map(|i| i as f64 / 300.0).collect();
//! let noise: Vec<f64> = (0..300).map(|i| ((i * 31) % 17) as f64).collect();
//! let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 0.5)).collect();
//! let data = Dataset::new("demo", Task::Binary, vec![x, noise], y)?;
//!
//! let result = AutoMl::new()
//!     .time_budget(1.0)
//!     .seed(42)
//!     .fit(&data)?;
//! let predictions = result.model.predict(&data);
//! # let _ = predictions;
//! # Ok(())
//! # }
//! ```

use crate::clock::TimeSource;
use crate::controller;
use crate::custom::{CustomLearner, Estimator};
use crate::resample::{ResampleRule, ResampleStrategy, TrialStatus};
use crate::spaces::LearnerKind;
use flaml_data::Dataset;
use flaml_exec::FaultPlan;
use flaml_journal::JournalError;
use flaml_learners::FittedModel;
use flaml_metrics::Metric;
use flaml_search::Config;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// How the learner proposer picks the next learner (Step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LearnerSelection {
    /// ECI-based randomized prioritization (FLAML).
    Eci,
    /// Round-robin over the estimator list (the paper's `roundrobin`
    /// ablation).
    RoundRobin,
}

impl LearnerSelection {
    /// Stable lowercase name, as recorded in a trial journal's header.
    pub fn name(&self) -> &'static str {
        match self {
            LearnerSelection::Eci => "eci",
            LearnerSelection::RoundRobin => "round-robin",
        }
    }
}

/// How the resampling strategy is chosen (Step 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResampleChoice {
    /// The paper's thresholding rule.
    Auto,
    /// Always cross-validate (the paper's `cv` ablation).
    AlwaysCv,
    /// Always hold out.
    AlwaysHoldout,
}

impl ResampleChoice {
    /// Stable lowercase name, as recorded in a trial journal's header.
    pub fn name(&self) -> &'static str {
        match self {
            ResampleChoice::Auto => "auto",
            ResampleChoice::AlwaysCv => "cv",
            ResampleChoice::AlwaysHoldout => "holdout",
        }
    }
}

/// Whether a trial searched a new configuration or grew the sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrialMode {
    /// A new configuration proposed by FLOW².
    Search,
    /// The incumbent configuration re-evaluated at a doubled sample size.
    SampleUp,
}

impl TrialMode {
    /// Stable lowercase name, as recorded in a trial journal.
    pub fn name(&self) -> &'static str {
        match self {
            TrialMode::Search => "search",
            TrialMode::SampleUp => "sample-up",
        }
    }

    /// Parses a mode name as produced by [`TrialMode::name`].
    pub fn parse(name: &str) -> Option<TrialMode> {
        match name {
            "search" => Some(TrialMode::Search),
            "sample-up" => Some(TrialMode::SampleUp),
            _ => None,
        }
    }
}

/// One completed trial, as recorded in [`AutoMlResult::trials`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialRecord {
    /// 1-based trial index.
    pub iter: usize,
    /// Name of the learner evaluated.
    pub learner: String,
    /// The configuration, rendered as `name=value` pairs.
    pub config: String,
    /// Sample size used.
    pub sample_size: usize,
    /// Validation error observed (metric loss; may be infinite).
    pub error: f64,
    /// Cost charged for this trial (seconds of the active clock).
    pub cost: f64,
    /// Total budget consumed when the trial finished.
    pub total_time: f64,
    /// Search or sample-growth trial.
    pub mode: TrialMode,
    /// Whether this trial improved the global best error.
    pub improved_global: bool,
    /// Best global error after this trial.
    pub best_error_so_far: f64,
    /// ECI of every learner after this trial (empty under round-robin).
    pub eci_snapshot: Vec<(String, f64)>,
    /// Whether a fit of this trial ran past its cooperative deadline.
    #[serde(default)]
    pub timed_out: bool,
    /// Whether a fit of this trial panicked (absorbed as a failure).
    #[serde(default)]
    pub panicked: bool,
    /// How the trial's final attempt ended.
    #[serde(default)]
    pub status: TrialStatus,
    /// Number of retries this trial consumed (0 = succeeded or gave up
    /// on the first attempt).
    #[serde(default)]
    pub n_retries: usize,
    /// The configuration's natural-unit values in parameter order. The
    /// lossless counterpart of the rendered `config` string (which
    /// truncates floats for readability).
    #[serde(default)]
    pub config_values: Vec<f64>,
}

/// Error from [`AutoMl::fit`].
#[derive(Debug)]
pub enum AutoMlError {
    /// The estimator list was empty.
    NoEstimators,
    /// No trial produced a finite validation error, so there is no model
    /// to return.
    NoViableModel,
    /// The final refit of the best configuration failed.
    RefitFailed(flaml_learners::FitError),
    /// The dataset has too few rows to split into train and validation.
    TooFewRows {
        /// Rows present.
        rows: usize,
        /// Minimum rows required.
        needed: usize,
    },
    /// A classification target with fewer than two classes present —
    /// nothing to discriminate, so every trial would fail.
    DegenerateTarget {
        /// Distinct classes actually present in the target.
        classes_present: usize,
    },
    /// Every feature column is degenerate (constant or all-NaN), so no
    /// model can learn anything after dropping them.
    NoUsableFeatures,
    /// A trial journal could not be opened (unreadable file, missing or
    /// corrupt header, unsupported schema version).
    Journal(JournalError),
    /// The journal file could not be created or written.
    JournalIo(std::io::Error),
    /// Durable persistence failed mid-run (`ENOSPC`, failed fsync, torn
    /// write): records the search believed committed may not be on
    /// disk, so the run fails with the typed storage error instead of
    /// returning a result whose journal silently lies. The journal file
    /// itself is already truncated back to its last committed record.
    Durability(flaml_store::StorageError),
    /// The journal was recorded under a different run configuration or
    /// dataset; resuming or retraining from it would be meaningless.
    ResumeMismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value recorded in the journal.
        journal: String,
        /// The value of the run asked to resume.
        run: String,
    },
    /// Replay proposed a different trial than the journal recorded — the
    /// journal does not belong to this run's deterministic trajectory.
    ResumeDiverged {
        /// 1-based trial number at which replay and journal disagreed.
        trial: usize,
        /// What disagreed.
        detail: String,
    },
    /// The journal's best trial used a learner this build cannot
    /// reconstruct by name (e.g. a custom learner).
    UnknownLearner(String),
    /// Compiling, saving or loading a serving artifact failed.
    Artifact(flaml_serve::ArtifactError),
}

impl fmt::Display for AutoMlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoMlError::NoEstimators => write!(f, "estimator list is empty"),
            AutoMlError::NoViableModel => {
                write!(f, "no trial produced a finite validation error")
            }
            AutoMlError::RefitFailed(e) => write!(f, "refit of best config failed: {e}"),
            AutoMlError::TooFewRows { rows, needed } => {
                write!(f, "dataset has {rows} rows; at least {needed} are required")
            }
            AutoMlError::DegenerateTarget { classes_present } => write!(
                f,
                "classification target has {classes_present} distinct class(es); at least 2 are required"
            ),
            AutoMlError::NoUsableFeatures => {
                write!(f, "every feature column is constant or all-NaN")
            }
            AutoMlError::Journal(e) => write!(f, "trial journal unusable: {e}"),
            AutoMlError::JournalIo(e) => write!(f, "trial journal write failed: {e}"),
            AutoMlError::Durability(e) => write!(f, "durable persistence failed: {e}"),
            AutoMlError::ResumeMismatch { field, journal, run } => write!(
                f,
                "journal does not match this run: {field} is {journal} in the journal but {run} here"
            ),
            AutoMlError::ResumeDiverged { trial, detail } => write!(
                f,
                "replay diverged from the journal at trial {trial}: {detail}"
            ),
            AutoMlError::UnknownLearner(name) => {
                write!(f, "journaled learner {name:?} is not a builtin learner")
            }
            AutoMlError::Artifact(e) => write!(f, "serving artifact error: {e}"),
        }
    }
}

impl Error for AutoMlError {}

impl From<JournalError> for AutoMlError {
    fn from(e: JournalError) -> AutoMlError {
        AutoMlError::Journal(e)
    }
}

impl From<flaml_serve::ArtifactError> for AutoMlError {
    fn from(e: flaml_serve::ArtifactError) -> AutoMlError {
        AutoMlError::Artifact(e)
    }
}

/// The outcome of an AutoML run.
#[derive(Debug)]
pub struct AutoMlResult {
    /// Name of the best configuration's learner.
    pub best_learner: String,
    /// Best configuration (natural units).
    pub best_config: Config,
    /// Best configuration rendered as `name=value` pairs.
    pub best_config_rendered: String,
    /// Best validation error.
    pub best_error: f64,
    /// The final model, retrained on all training rows.
    pub model: FittedModel,
    /// Every trial in order.
    pub trials: Vec<TrialRecord>,
    /// The resampling strategy used.
    pub strategy: ResampleStrategy,
    /// The metric optimized.
    pub metric: Metric,
    /// Total retries spent across all trials.
    pub n_retries: usize,
    /// Number of quarantine episodes (a learner entering quarantine;
    /// the same learner can contribute more than once if it recovers
    /// and relapses).
    pub n_quarantined: usize,
}

/// Serializable summary of an [`AutoMlResult`] (everything except the
/// model itself).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ResultSummary {
    best_learner: String,
    best_config: String,
    best_config_values: Vec<f64>,
    best_error: f64,
    metric: String,
    strategy: String,
    n_trials: usize,
    n_retries: usize,
    n_quarantined: usize,
    trials: Vec<TrialRecord>,
}

/// Serializable best-configuration record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BestConfigSummary {
    learner: String,
    config: String,
    values: Vec<f64>,
    error: f64,
}

impl AutoMlResult {
    /// The best configuration as a compact JSON object:
    /// `{"learner", "config", "values", "error"}`, where `values` are the
    /// lossless natural-unit parameter values (in parameter order) and
    /// `config` is the human-readable rendering.
    pub fn best_config_json(&self) -> String {
        serde_json::to_string(&BestConfigSummary {
            learner: self.best_learner.clone(),
            config: self.best_config_rendered.clone(),
            values: self.best_config.values().to_vec(),
            error: self.best_error,
        })
        .expect("summary serialization is infallible")
    }

    /// The whole result (minus the trained model) as a JSON object:
    /// best learner/config/error, metric, resampling strategy, failure
    /// counters, and the full trial trace.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&ResultSummary {
            best_learner: self.best_learner.clone(),
            best_config: self.best_config_rendered.clone(),
            best_config_values: self.best_config.values().to_vec(),
            best_error: self.best_error,
            metric: self.metric.name().to_string(),
            strategy: self.strategy.to_string(),
            n_trials: self.trials.len(),
            n_retries: self.n_retries,
            n_quarantined: self.n_quarantined,
            trials: self.trials.clone(),
        })
        .expect("summary serialization is infallible")
    }
}

/// A model rebuilt from a journal by [`retrain_from_log`], without any
/// searching.
#[derive(Debug)]
pub struct Retrained {
    /// Name of the journaled best learner.
    pub learner: String,
    /// The journaled best configuration (natural units).
    pub config: Config,
    /// The configuration rendered as `name=value` pairs.
    pub config_rendered: String,
    /// The journaled validation loss of that configuration.
    pub loss: f64,
    /// The model, retrained exactly as the original run's final refit:
    /// same learner, configuration, seed, and data preparation.
    pub model: FittedModel,
}

/// Rebuilds the best model recorded in the journal at `path` — FLAML's
/// `retrain_from_log` — without running a single search trial. The
/// dataset must fingerprint-match the journal's header; the refit then
/// repeats the original run's final refit (same degenerate-column
/// cleanup, same seeded shuffle, same learner/configuration/seed), so
/// its predictions equal the original best model's exactly.
///
/// # Errors
///
/// Returns [`AutoMlError`] if the journal is unusable, records no
/// finite-loss trial, was recorded against different data, names a
/// non-builtin learner, or the refit fails.
pub fn retrain_from_log(
    path: impl AsRef<std::path::Path>,
    data: &Dataset,
) -> Result<Retrained, AutoMlError> {
    let journal = flaml_journal::Journal::read(path)?;
    let best = journal.best_trial().ok_or(AutoMlError::NoViableModel)?;
    let kind = LearnerKind::parse(&best.learner)
        .ok_or_else(|| AutoMlError::UnknownLearner(best.learner.clone()))?;

    // Repeat the controller's data preparation bit-for-bit.
    let dropped = data.degenerate_columns();
    let cleaned: Dataset;
    let data: &Dataset = if dropped.is_empty() {
        data
    } else {
        cleaned = data
            .drop_columns(&dropped)
            .map_err(|_| AutoMlError::NoUsableFeatures)?;
        &cleaned
    };
    let fingerprint = data.fingerprint();
    if fingerprint != journal.header.dataset.fingerprint {
        return Err(AutoMlError::ResumeMismatch {
            field: "dataset fingerprint",
            journal: format!("{:#018x}", journal.header.dataset.fingerprint),
            run: format!("{fingerprint:#018x}"),
        });
    }

    let shuffled = data.shuffled(journal.header.seed);
    let space = kind.space(shuffled.n_rows());
    let config = Config::from(best.config_values.clone());
    let model = Estimator::Builtin(kind)
        .fit(&shuffled, &config, &space, journal.header.seed, None)
        .map_err(AutoMlError::RefitFailed)?;
    Ok(Retrained {
        learner: best.learner.clone(),
        config_rendered: config.render(&space),
        config,
        loss: best.loss,
        model,
    })
}

/// Builder-style AutoML entry point (the library's `fit()`).
#[derive(Debug, Clone)]
pub struct AutoMl {
    pub(crate) time_budget: f64,
    pub(crate) metric: Option<Metric>,
    pub(crate) estimators: Vec<LearnerKind>,
    pub(crate) seed: u64,
    pub(crate) sample_size_init: usize,
    pub(crate) sampling: bool,
    pub(crate) learner_selection: LearnerSelection,
    pub(crate) resample_choice: ResampleChoice,
    pub(crate) resample_rule: ResampleRule,
    pub(crate) max_trials: Option<usize>,
    pub(crate) time_source: TimeSource,
    pub(crate) sample_growth: f64,
    pub(crate) ensemble: bool,
    pub(crate) custom_learners: Vec<std::sync::Arc<dyn CustomLearner>>,
    pub(crate) workers: usize,
    pub(crate) event_sink: Option<flaml_exec::EventSink>,
    pub(crate) max_retries: usize,
    pub(crate) quarantine_after: usize,
    pub(crate) quarantine_probe_every: usize,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) journal_path: Option<PathBuf>,
    pub(crate) resume: bool,
    /// Overrides the `max_trials` value recorded in a freshly created
    /// journal header. [`crate::SearchHandle`] runs a search as a series
    /// of slices, each a `fit` with a small trial cap; recording the
    /// *target* cap instead keeps a sliced run's journal byte-identical
    /// to a single-shot run's (resume deliberately ignores the field).
    pub(crate) header_max_trials: Option<Option<usize>>,
    pub(crate) starting_points: Vec<(String, Vec<f64>, f64)>,
    pub(crate) prepared_cache: bool,
    pub(crate) prepared_cache_bytes: usize,
    pub(crate) tree_cache: bool,
    pub(crate) tree_cache_bytes: usize,
    /// Storage backend for journal persistence. `None` means the real
    /// filesystem ([`flaml_store::DiskStorage`]); tests inject
    /// [`flaml_store::ChaosStorage`] here to fault the journal's I/O.
    pub(crate) storage: Option<std::sync::Arc<dyn flaml_store::Storage>>,
}

impl Default for AutoMl {
    fn default() -> Self {
        AutoMl {
            time_budget: 60.0,
            metric: None,
            estimators: LearnerKind::ALL.to_vec(),
            seed: 0,
            // The paper starts at 10K rows on datasets up to 1M rows; this
            // reproduction's workloads are ~100x smaller, so the scaled
            // default keeps the same number of doublings available.
            sample_size_init: 500,
            sampling: true,
            learner_selection: LearnerSelection::Eci,
            resample_choice: ResampleChoice::Auto,
            resample_rule: ResampleRule::default(),
            max_trials: None,
            time_source: TimeSource::Wall,
            sample_growth: 2.0,
            ensemble: false,
            custom_learners: Vec::new(),
            workers: 1,
            event_sink: None,
            max_retries: 1,
            quarantine_after: 3,
            quarantine_probe_every: 8,
            fault_plan: None,
            journal_path: None,
            resume: false,
            header_max_trials: None,
            starting_points: Vec::new(),
            prepared_cache: true,
            prepared_cache_bytes: 256 * 1024 * 1024,
            tree_cache: true,
            tree_cache_bytes: 256 * 1024 * 1024,
            storage: None,
        }
    }
}

impl AutoMl {
    /// Creates an AutoML instance with the paper's defaults.
    pub fn new() -> AutoMl {
        AutoMl::default()
    }

    /// Sets the time budget in seconds (wall or virtual).
    pub fn time_budget(mut self, seconds: f64) -> AutoMl {
        self.time_budget = seconds;
        self
    }

    /// Sets the optimization metric (default: the task's benchmark
    /// metric — roc-auc / log-loss / r2).
    pub fn metric(mut self, metric: Metric) -> AutoMl {
        self.metric = Some(metric);
        self
    }

    /// Restricts the estimator list (the API's `estimator_list`).
    pub fn estimators(mut self, estimators: impl Into<Vec<LearnerKind>>) -> AutoMl {
        self.estimators = estimators.into();
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> AutoMl {
        self.seed = seed;
        self
    }

    /// Sets the initial sample size for data subsampling.
    pub fn sample_size_init(mut self, s: usize) -> AutoMl {
        self.sample_size_init = s.max(1);
        self
    }

    /// Enables or disables data subsampling (disable = the paper's
    /// `fulldata` ablation).
    pub fn sampling(mut self, on: bool) -> AutoMl {
        self.sampling = on;
        self
    }

    /// Chooses the learner-selection strategy (ECI or round-robin).
    pub fn learner_selection(mut self, sel: LearnerSelection) -> AutoMl {
        self.learner_selection = sel;
        self
    }

    /// Overrides the resampling-strategy choice.
    pub fn resample(mut self, choice: ResampleChoice) -> AutoMl {
        self.resample_choice = choice;
        self
    }

    /// Overrides the thresholds of the automatic resampling rule.
    pub fn resample_rule(mut self, rule: ResampleRule) -> AutoMl {
        self.resample_rule = rule;
        self
    }

    /// Caps the number of trials (useful for deterministic tests).
    pub fn max_trials(mut self, n: usize) -> AutoMl {
        self.max_trials = Some(n);
        self
    }

    /// Switches budget accounting to a deterministic virtual cost model.
    pub fn time_source(mut self, source: TimeSource) -> AutoMl {
        self.time_source = source;
        self
    }

    /// Registers a user-defined learner (the paper's `add_learner`). The
    /// learner joins the estimator list and is searched like any builtin
    /// one: ECI prioritization, FLOW² over its declared space, and the
    /// sample-size schedule all apply.
    pub fn add_learner(mut self, learner: std::sync::Arc<dyn CustomLearner>) -> AutoMl {
        self.custom_learners.push(learner);
        self
    }

    /// The full estimator roster: builtins then custom learners.
    pub(crate) fn roster(&self) -> Vec<Estimator> {
        let mut out: Vec<Estimator> = Vec::new();
        for &k in &self.estimators {
            if !out
                .iter()
                .any(|e| matches!(e, Estimator::Builtin(b) if *b == k))
            {
                out.push(Estimator::Builtin(k));
            }
        }
        for c in &self.custom_learners {
            out.push(Estimator::Custom(c.clone()));
        }
        out
    }

    /// Sets the worker count of the trial-execution pool (default 1 =
    /// fully sequential, the paper's setting). With more workers,
    /// cross-validation folds evaluate concurrently; under round-robin
    /// learner selection the controller additionally pre-executes
    /// upcoming trials speculatively on idle workers, committing their
    /// results in submission order — so a virtual-clock run produces the
    /// same trial trace at any worker count.
    pub fn workers(mut self, workers: usize) -> AutoMl {
        self.workers = workers.max(1);
        self
    }

    /// Subscribes a [`flaml_exec::EventSink`] to this run's trial
    /// telemetry: one `Started` event per trial plus a terminal
    /// `Finished` / `TimedOut` / `Panicked` event carrying learner,
    /// config, sample size, error and charged cost.
    pub fn event_sink(mut self, sink: flaml_exec::EventSink) -> AutoMl {
        self.event_sink = Some(sink);
        self
    }

    /// Caps the number of retries a trial may spend on *transient*
    /// failures (panics, non-finite losses). Retries are charged to the
    /// trial's own budget; deterministic failures and timeouts are never
    /// retried. Default: 1.
    pub fn max_retries(mut self, n: usize) -> AutoMl {
        self.max_retries = n;
        self
    }

    /// Enables or disables the zero-copy data plane (fold views and
    /// pre-binned matrices memoized across trials). Disabling it falls
    /// back to the copy-based data flow: every trial materializes owned
    /// sample and fold datasets and every fit re-bins its columns. The
    /// plane is observationally pure — the trial trace is bit-identical
    /// either way — so this knob only trades memory for speed.
    /// Default: on.
    pub fn prepared_cache(mut self, on: bool) -> AutoMl {
        self.prepared_cache = on;
        self
    }

    /// Caps the bytes the prepared-data cache may hold; the oldest
    /// entries are evicted first when the budget is exceeded. Default:
    /// 256 MiB.
    pub fn prepared_cache_bytes(mut self, bytes: usize) -> AutoMl {
        self.prepared_cache_bytes = bytes;
        self
    }

    /// Enables or disables the cross-trial tree cache (fitted boosting
    /// prefixes memoized per (config-without-`tree_num`, sample, fold)
    /// and continued by later trials — see [`crate::TreeCache`]).
    /// Continuation is bit-identical to fitting from scratch, so the
    /// trial trace is byte-identical either way; this knob only trades
    /// memory for speed. Default: on.
    pub fn tree_cache(mut self, on: bool) -> AutoMl {
        self.tree_cache = on;
        self
    }

    /// Caps the bytes the tree cache may hold; the oldest-stored
    /// prefixes are evicted first when the budget is exceeded. Default:
    /// 256 MiB.
    pub fn tree_cache_bytes(mut self, bytes: usize) -> AutoMl {
        self.tree_cache_bytes = bytes;
        self
    }

    /// Quarantines a learner after this many *consecutive* failed trials
    /// (non-finite final error). A quarantined learner is skipped by the
    /// ECI proposer until its next scheduled probe; a successful probe
    /// lifts the quarantine. `0` disables quarantining. Default: 3.
    pub fn quarantine_after(mut self, n: usize) -> AutoMl {
        self.quarantine_after = n;
        self
    }

    /// Sets how many iterations a quarantined learner sits out before it
    /// is offered one probe trial. Default: 8.
    pub fn quarantine_probe_every(mut self, n: usize) -> AutoMl {
        self.quarantine_probe_every = n.max(1);
        self
    }

    /// Injects deterministic faults (panics, slowdowns, poisoned losses)
    /// into trial execution — chaos testing for the failure policy. The
    /// plan is a pure function of `(seed, trial, attempt)`, so injected
    /// faults are identical at any worker count.
    pub fn fault_plan(mut self, plan: FaultPlan) -> AutoMl {
        self.fault_plan = Some(plan);
        self
    }

    /// Journals every committed trial to a crash-safe JSONL log at
    /// `path` (created or truncated at fit time; parent directories are
    /// created). Each record is fsynced before the search proceeds, so a
    /// killed run can be continued with [`AutoMl::resume_from`] losing
    /// at most the trial that was in flight.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> AutoMl {
        self.journal_path = Some(path.into());
        self.resume = false;
        self
    }

    /// Resumes an interrupted run from the journal at `path`: every
    /// committed trial is replayed through the controller (restoring
    /// FLOW² incumbents, ECI state, quarantine counters, and spent
    /// budget exactly), then the search continues — and keeps journaling
    /// — from where the previous process died. The run's settings, seed,
    /// and dataset must match the journal's header; the time budget and
    /// trial cap may differ, which is also how a finished run is
    /// *extended*. Under a virtual clock the continued trace is
    /// byte-identical to an uninterrupted run.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> AutoMl {
        self.journal_path = Some(path.into());
        self.resume = true;
        self
    }

    /// Routes journal persistence through an explicit
    /// [`flaml_store::Storage`] backend instead of the real filesystem —
    /// the disk-fault-injection entry point
    /// ([`flaml_store::ChaosStorage`]). Storage choice never affects the
    /// search trajectory: with faults disabled, traces are byte-identical
    /// to the default backend's.
    pub fn storage(mut self, storage: std::sync::Arc<dyn flaml_store::Storage>) -> AutoMl {
        self.storage = Some(storage);
        self
    }

    /// Seeds the search from prior results (warm start): for each
    /// `(learner, config_values, loss)` triple — typically
    /// [`flaml_journal::Journal::best_configs`] from an earlier run's
    /// journal — the named learner's FLOW² thread starts at that
    /// configuration instead of its default low-cost init, and its ECI
    /// state is primed with the prior loss. Learners not in the current
    /// estimator list are ignored.
    pub fn starting_points(mut self, points: Vec<(String, Vec<f64>, f64)>) -> AutoMl {
        self.starting_points = points;
        self
    }

    /// Enables stacked-ensemble post-processing (paper appendix): the best
    /// configuration of each learner becomes a member, a linear
    /// meta-learner is trained on out-of-fold predictions, and the
    /// returned model is the stack. Off by default to keep overhead low;
    /// the extra training happens after the search budget, as in FLAML.
    pub fn ensemble(mut self, on: bool) -> AutoMl {
        self.ensemble = on;
        self
    }

    /// Runs the search on `data` and returns the best model found.
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError`] if the estimator list is empty, the
    /// dataset is degenerate (fewer than 2 rows, a single-class
    /// classification target, or no usable feature after dropping
    /// constant/all-NaN columns), no trial succeeded, or the final refit
    /// failed.
    pub fn fit(&self, data: &Dataset) -> Result<AutoMlResult, AutoMlError> {
        controller::run(data, self)
    }
}
