//! The AutoML controller: FLAML's main loop (paper Figure 3).
//!
//! Step 0 chooses the resampling strategy once; then Steps 1–3 repeat
//! until the budget runs out: sample a learner with probability `∝ 1/ECI`,
//! let its proposer either grow the sample size (when `ECI1 >= ECI2`) or
//! ask FLOW² for new hyperparameters, run the trial, and feed the observed
//! error and cost back into ECI and FLOW². Step-size adaptation and
//! restarts are enabled only at the full sample size; a restart resets the
//! learner's sample size to the initial value.

use crate::automl::{
    AutoMl, AutoMlError, AutoMlResult, LearnerSelection, ResampleChoice, TrialMode, TrialRecord,
};
use crate::ensemble::{build_stacked, MemberSpec};
use crate::clock::{BudgetClock, TrialInfo};
use crate::custom::Estimator;
use crate::eci::{sample_by_inverse_eci, EciState};
use crate::resample::{run_trial, ResampleStrategy};
use flaml_data::Dataset;
use flaml_metrics::Metric;
use flaml_search::{Config, Flow2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

struct LearnerState {
    kind: Estimator,
    space: flaml_search::SearchSpace,
    flow2: Flow2,
    eci: EciState,
    sample_size: usize,
}

pub(crate) fn run(data: &Dataset, settings: &AutoMl) -> Result<AutoMlResult, AutoMlError> {
    let roster = settings.roster();
    if roster.is_empty() {
        return Err(AutoMlError::NoEstimators);
    }
    let metric = settings
        .metric
        .unwrap_or_else(|| Metric::default_for(data.task()));
    let mut clock = BudgetClock::new(settings.time_source);
    let shuffled = data.shuffled(settings.seed);
    let n = shuffled.n_rows();
    let d = shuffled.n_features();

    let strategy = match settings.resample_choice {
        ResampleChoice::Auto => settings.resample_rule.choose(n, d, settings.time_budget),
        ResampleChoice::AlwaysCv => ResampleStrategy::Cv {
            folds: settings.resample_rule.cv_folds,
        },
        ResampleChoice::AlwaysHoldout => ResampleStrategy::Holdout {
            ratio: settings.resample_rule.holdout_ratio,
        },
    };

    let init_s = if settings.sampling {
        settings.sample_size_init.min(n)
    } else {
        n
    };

    let mut states: Vec<LearnerState> = roster
        .iter()
        .enumerate()
        .map(|(idx, kind)| {
            let space = kind.space(n);
            let mut flow2 =
                Flow2::new(space.clone(), settings.seed ^ (0x1111 * (idx as u64 + 1)));
            flow2.set_adaptation(init_s >= n);
            LearnerState {
                kind: kind.clone(),
                space,
                flow2,
                // Pre-calibration placeholder; replaced after the first
                // trial measures the base cost.
                eci: EciState::new(kind.cost_constant()),
                sample_size: init_s,
            }
        })
        .collect();

    let fastest = states
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.kind
                .cost_constant()
                .partial_cmp(&b.1.kind.cost_constant())
                .expect("cost constants are finite")
        })
        .map(|(i, _)| i)
        .expect("non-empty estimators");

    let mut rng = StdRng::seed_from_u64(settings.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut trials: Vec<TrialRecord> = Vec::new();
    let mut best: Option<(usize, Config, f64, Option<flaml_learners::FittedModel>, usize)> = None;
    let mut iter = 0usize;

    loop {
        if let Some(cap) = settings.max_trials {
            if iter >= cap {
                break;
            }
        }
        if iter > 0 && clock.elapsed() >= settings.time_budget {
            break;
        }

        // Step 1: learner choice.
        let li = if iter == 0 {
            // The paper first runs the fastest learner to calibrate the
            // base trial cost.
            fastest
        } else {
            match settings.learner_selection {
                LearnerSelection::RoundRobin => iter % states.len(),
                LearnerSelection::Eci => {
                    let global_best = best
                        .as_ref()
                        .map(|(_, _, e, _, _)| *e)
                        .unwrap_or(f64::INFINITY);
                    let ecis: Vec<f64> = states
                        .iter()
                        .map(|s| s.eci.eci(global_best, settings.sample_growth))
                        .collect();
                    sample_by_inverse_eci(&ecis, rng.gen::<f64>())
                }
            }
        };

        // Step 2: hyperparameters and sample size.
        let (mode, trial_s, point) = {
            let st = &mut states[li];
            let grow_sample = st.eci.tried()
                && st.sample_size < n
                && st.eci.eci1() >= st.eci.eci2(settings.sample_growth);
            if grow_sample {
                let s_new = ((st.sample_size as f64 * settings.sample_growth) as usize).min(n);
                (TrialMode::SampleUp, s_new, st.flow2.best_point())
            } else {
                (TrialMode::Search, st.sample_size, st.flow2.ask())
            }
        };
        let config = states[li].space.decode(&point);

        // Step 3: run the trial and observe error and cost.
        let deadline = if clock.is_wall() {
            let remaining = settings.time_budget - clock.elapsed();
            Some(Duration::from_secs_f64(remaining.max(0.05)))
        } else {
            None
        };
        let t0 = Instant::now();
        let outcome = run_trial(
            &shuffled,
            &states[li].kind,
            &config,
            &states[li].space,
            trial_s,
            strategy,
            metric,
            settings.seed.wrapping_add(iter as u64),
            deadline,
        );
        let measured = t0.elapsed().as_secs_f64();
        let info = TrialInfo {
            learner_cost_constant: states[li].kind.cost_constant(),
            sample_size: trial_s,
            n_features: d,
            cost_factor: outcome.cost_factor,
            n_fits: outcome.n_fits.max(1),
        };
        let cost = clock.charge(&info, measured);

        // Feedback into the proposers.
        {
            let st = &mut states[li];
            match mode {
                TrialMode::Search => {
                    st.flow2.tell(outcome.error);
                    st.eci.on_trial(cost, outcome.error);
                }
                TrialMode::SampleUp => {
                    st.sample_size = trial_s;
                    st.flow2.set_best_err(outcome.error);
                    let improved = st.eci.on_trial(cost, outcome.error);
                    if !improved && outcome.error.is_finite() {
                        // Errors are only comparable at the same sample
                        // size: rebase the learner's incumbent error. A
                        // failed (infinite) trial must not poison it, or
                        // the learner would never be selected again
                        // (Property 3, FairChance).
                        st.eci.rebase_err(outcome.error);
                    }
                    if st.sample_size >= n {
                        st.flow2.set_adaptation(true);
                    }
                }
            }
            // Restart a converged thread (full sample size only).
            if st.sample_size >= n && st.flow2.converged() {
                st.flow2.restart();
                if settings.sampling {
                    st.sample_size = settings.sample_size_init.min(n);
                    st.flow2.set_adaptation(st.sample_size >= n);
                }
            }
        }

        // Calibrate untried learners' ECI after the very first trial.
        if iter == 0 {
            for (i, st) in states.iter_mut().enumerate() {
                if i != li {
                    st.eci
                        .set_untried_estimate(cost * st.kind.cost_constant());
                }
            }
        }

        // Global best bookkeeping.
        let improved_global = outcome.error.is_finite()
            && best
                .as_ref()
                .map(|(_, _, e, _, _)| outcome.error < *e)
                .unwrap_or(true);
        if improved_global {
            best = Some((li, config.clone(), outcome.error, outcome.model, trial_s));
        }

        iter += 1;
        let eci_snapshot = if settings.learner_selection == LearnerSelection::Eci {
            let global_best = best
                .as_ref()
                .map(|(_, _, e, _, _)| *e)
                .unwrap_or(f64::INFINITY);
            states
                .iter()
                .map(|s| {
                    (
                        s.kind.name(),
                        s.eci.eci(global_best, settings.sample_growth),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        trials.push(TrialRecord {
            iter,
            learner: states[li].kind.name(),
            config: config.render(&states[li].space),
            sample_size: trial_s,
            error: outcome.error,
            cost,
            total_time: clock.elapsed(),
            mode,
            improved_global,
            best_error_so_far: best
                .as_ref()
                .map(|(_, _, e, _, _)| *e)
                .unwrap_or(f64::INFINITY),
            eci_snapshot,
        });
    }

    let Some((best_li, best_config, best_error, trial_model, _best_s)) = best else {
        return Err(AutoMlError::NoViableModel);
    };
    let best_kind = states[best_li].kind.clone();
    let best_space = &states[best_li].space;

    // Final model: retrain the best configuration on the full training
    // data (CV trials defer training; holdout trials trained on 90% of a
    // sample). Fall back to the trial's model if the refit fails.
    let refit_budget = if clock.is_wall() {
        let remaining = settings.time_budget - clock.elapsed();
        Some(Duration::from_secs_f64(remaining.max(0.1).min(settings.time_budget)))
    } else {
        None
    };
    let model = match best_kind.fit(
        &shuffled,
        &best_config,
        best_space,
        settings.seed,
        refit_budget,
    ) {
        Ok(m) => m,
        Err(e) => match trial_model {
            Some(m) => m,
            None => return Err(AutoMlError::RefitFailed(e)),
        },
    };

    // Optional stacked-ensemble post-processing (paper appendix).
    let model = if settings.ensemble {
        let specs: Vec<MemberSpec> = states
            .iter()
            .filter(|st| st.eci.tried() && st.eci.best_err().is_finite())
            .map(|st| MemberSpec {
                kind: st.kind.clone(),
                config: st.space.decode(&st.flow2.best_point()),
                space: st.space.clone(),
                error: st.eci.best_err(),
            })
            .collect();
        build_stacked(&shuffled, specs, 4, 5, settings.seed, refit_budget).unwrap_or(model)
    } else {
        model
    };

    Ok(AutoMlResult {
        best_learner: best_kind.name(),
        best_config_rendered: best_config.render(best_space),
        best_config,
        best_error,
        model,
        trials,
        strategy,
        metric,
    })
}

